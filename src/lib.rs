//! # OISA — Optical In-Sensor Accelerator (reproduction)
//!
//! Facade crate for the device-to-architecture simulation stack reproducing
//! *OISA: Architecting an Optical In-Sensor Accelerator for Efficient Visual
//! Computing* (DATE 2024). Each subsystem lives in its own crate; this crate
//! re-exports them under one roof so examples and downstream users can write
//! `use oisa::...`.
//!
//! # Quickstart
//!
//! ```
//! use oisa::core::{OisaAccelerator, OisaConfig};
//! use oisa::sensor::Frame;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut accel = OisaAccelerator::new(OisaConfig::default())?; // 16×16 test imager
//! let frame = Frame::constant(16, 16, 0.5)?;
//! let weights = vec![vec![0.5f32; 9]; 4]; // four 3x3 kernels
//! let report = accel.convolve_frame(&frame, &weights, 3)?;
//! assert_eq!(report.output.len(), 4);
//! # Ok(())
//! # }
//! ```

/// Physical-quantity newtypes (volts, watts, seconds, …).
pub use oisa_units as units;

/// Mini MNA transient circuit simulator used for analog verification.
pub use oisa_spice as spice;

/// Photonic and analog device models (MR, VCSEL, BPD, SA, AWC).
pub use oisa_device as device;

/// ADC-less imager and VCSEL activation modulator.
pub use oisa_sensor as sensor;

/// Optical Processing Core: arms, banks, WDM, VOM.
pub use oisa_optics as optics;

/// CACTI-like SRAM/eDRAM and NVSim-like NVM models.
pub use oisa_memory as memory;

/// Tensor/CNN framework with backprop and quantizers.
pub use oisa_nn as nn;

/// Seeded procedural datasets for accuracy studies.
pub use oisa_datasets as datasets;

/// The paper's contribution: mapping, timing, energy and the end-to-end
/// accelerator.
pub use oisa_core as core;

/// Comparison platforms (Crosslight-like, AppCiP-like, ASIC).
pub use oisa_baselines as baselines;
