//! MLP (fully connected) first-layer execution via the VOM.
//!
//! Paper §III-A: "In the case of the MLP, the number of dot products is
//! enormous. To reduce the complexity of the calculations, the VOM unit
//! … enables OISA to break the intensive MAC operations into smaller
//! parts." A dense row of `n` weights becomes `⌈n / 9⌉` arm-sized
//! chunks; each chunk computes optically and the VOM accumulates and
//! re-modulates the partial sums.
//!
//! Like the convolution pipeline, the dense path draws its noise from
//! counter-based streams — keyed by `(epoch, row, chunk)` — and reuses
//! its staging buffers across chunks, so evaluation order never changes
//! the physics and the inner loop allocates nothing per chunk.

use oisa_device::noise::NoiseSource;
use oisa_optics::opc::Opc;
use oisa_optics::vom::Vom;
use oisa_optics::weights::WeightMapper;
use oisa_units::{Joule, Second};
use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// Elements of a dense row executed per arm (the paper's 3×3-sized
/// chunks: nine weights plus the spare slot).
pub const CHUNK: usize = 9;

/// Result of one dense matrix–vector product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatVecReport {
    /// The output vector, one value per matrix row.
    pub output: Vec<f32>,
    /// Chunks evaluated in total.
    pub chunks: usize,
    /// Total energy (optical + VOM accumulation/re-modulation).
    pub energy: Joule,
    /// Serialized latency over all chunk evaluations.
    pub latency: Second,
}

/// Executes `matrix · input` (row-major `rows × cols` matrix) on the
/// optical fabric, chunking every row across arms and aggregating
/// through the VOM.
///
/// Weights are normalised per call by the joint maximum magnitude;
/// `input` must already be in the VAM's normalised optical domain
/// (`[0, 1]`).
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for shape mismatches or
///   out-of-range inputs.
/// * Substrate errors from the optical fabric.
#[allow(clippy::too_many_arguments)]
pub fn matvec(
    opc: &mut Opc,
    vom: &Vom,
    mapper: &WeightMapper,
    matrix: &[f32],
    rows: usize,
    cols: usize,
    input: &[f64],
    noise: &mut NoiseSource,
) -> Result<MatVecReport> {
    if matrix.len() != rows * cols || rows == 0 || cols == 0 {
        return Err(CoreError::InvalidParameter(format!(
            "matrix {rows}x{cols} does not match {} elements",
            matrix.len()
        )));
    }
    if input.len() != cols {
        return Err(CoreError::InvalidParameter(format!(
            "input length {} != cols {cols}",
            input.len()
        )));
    }
    // Validate the shared input vector up front so range errors report
    // the offending index before any fabric state changes. (The generic
    // Arm::mac each chunk routes through still performs its own cheap
    // per-chunk check; only the conv path's mac_indexed skips it.)
    if let Some(i) = input.iter().position(|a| !(0.0..=1.0).contains(a)) {
        return Err(CoreError::InvalidParameter(format!(
            "input activation {} at index {i} outside [0, 1]",
            input[i]
        )));
    }
    let scale = matrix
        .iter()
        .fold(0.0f32, |m, w| m.max(w.abs()))
        .max(f32::MIN_POSITIVE);
    let arms_per_bank = oisa_optics::bank::ARMS_PER_BANK;
    let epoch = noise.begin_epoch();
    let mut output = Vec::with_capacity(rows);
    let mut total_chunks = 0usize;
    let mut energy = Joule::ZERO;
    let mut latency = Second::ZERO;
    // Staging buffers reused across every chunk of every row.
    let mut normalised: Vec<f64> = Vec::with_capacity(CHUNK);
    let mut partials = Vec::with_capacity(cols.div_ceil(CHUNK));
    for r in 0..rows {
        let row = &matrix[r * cols..(r + 1) * cols];
        let row_stream = noise.slot_stream(epoch, r as u64);
        partials.clear();
        for (ci, (w_chunk, a_chunk)) in row.chunks(CHUNK).zip(input.chunks(CHUNK)).enumerate() {
            // Round-robin chunks over the fabric; each chunk occupies one
            // arm for its evaluation.
            let slot = (total_chunks + ci) % (opc.bank_count() * arms_per_bank);
            let bank = slot / arms_per_bank;
            let arm = slot % arms_per_bank;
            normalised.clear();
            normalised.extend(w_chunk.iter().map(|&w| f64::from(w / scale)));
            opc.bank_mut(bank)?.load_arm(arm, &normalised, mapper)?;
            // Counter-based stream per (row, chunk): draws are addressed,
            // not consumed, so chunk evaluation order is immaterial.
            let stream = row_stream.at(ci as u64);
            let result = opc.compute_arm(bank, arm, a_chunk, &mut stream.cursor())?;
            energy += result.optical_energy;
            partials.push(result);
        }
        total_chunks += partials.len();
        let agg = vom.accumulate_and_transmit(&partials)?;
        energy += agg.energy;
        latency += agg.latency;
        output.push((agg.value * f64::from(scale)) as f32);
    }
    Ok(MatVecReport {
        output,
        chunks: total_chunks,
        energy,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};
    use oisa_optics::arm::ArmConfig;
    use oisa_optics::opc::OpcConfig;
    use oisa_optics::vom::VomConfig;

    fn fabric() -> (Opc, Vom, WeightMapper) {
        let cfg = OpcConfig {
            banks: 2,
            columns: 1,
            awc_units: 10,
            arm: ArmConfig::no_crosstalk(),
        };
        (
            Opc::new(cfg).unwrap(),
            Vom::new(VomConfig::paper_default()).unwrap(),
            WeightMapper::ideal(4).unwrap(),
        )
    }

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    #[test]
    fn matvec_matches_reference() {
        let (mut opc, vom, mapper) = fabric();
        // 3×12 matrix → each row spans 2 chunks.
        let rows = 3;
        let cols = 12;
        let matrix: Vec<f32> = (0..rows * cols)
            .map(|i| (i as f32 * 0.37).sin())
            .collect();
        let input: Vec<f64> = (0..cols).map(|i| (i as f64) / cols as f64).collect();
        let report = matvec(
            &mut opc, &vom, &mapper, &matrix, rows, cols, &input, &mut quiet(),
        )
        .unwrap();
        assert_eq!(report.output.len(), rows);
        assert_eq!(report.chunks, rows * 2);
        for r in 0..rows {
            let exact: f64 = (0..cols)
                .map(|c| f64::from(matrix[r * cols + c]) * input[c])
                .sum();
            let got = f64::from(report.output[r]);
            assert!(
                (got - exact).abs() < 0.25,
                "row {r}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn large_row_chunk_count() {
        let (mut opc, vom, mapper) = fabric();
        // One 784-wide row (an MNIST-sized MLP input) → 88 chunks.
        let cols = 784;
        let matrix = vec![0.01f32; cols];
        let input = vec![0.5f64; cols];
        let report = matvec(&mut opc, &vom, &mapper, &matrix, 1, cols, &input, &mut quiet())
            .unwrap();
        assert_eq!(report.chunks, 88);
        let exact = 0.01 * 0.5 * cols as f64;
        assert!(
            (f64::from(report.output[0]) - exact).abs() < 0.4,
            "got {} exact {exact}",
            report.output[0]
        );
    }

    #[test]
    fn energy_and_latency_scale_with_rows() {
        let (mut opc, vom, mapper) = fabric();
        let cols = 18;
        let run = |opc: &mut Opc, rows: usize| {
            let matrix = vec![0.1f32; rows * cols];
            let input = vec![0.5f64; cols];
            matvec(opc, &vom, &mapper, &matrix, rows, cols, &input, &mut quiet()).unwrap()
        };
        let one = run(&mut opc, 1);
        let four = run(&mut opc, 4);
        assert!(four.energy.get() > 3.0 * one.energy.get());
        assert!(four.latency.get() > 3.0 * one.latency.get());
    }

    #[test]
    fn out_of_range_input_reports_index() {
        let (mut opc, vom, mapper) = fabric();
        let mut input = vec![0.5f64; 12];
        input[7] = 1.7;
        let err = matvec(
            &mut opc, &vom, &mapper, &[0.1; 12], 1, 12, &input, &mut quiet(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("index 7"), "must name the index: {msg}");
    }

    #[test]
    fn shape_validation() {
        let (mut opc, vom, mapper) = fabric();
        let err = matvec(&mut opc, &vom, &mapper, &[0.1; 6], 2, 4, &[0.5; 4], &mut quiet());
        assert!(err.is_err());
        let err = matvec(&mut opc, &vom, &mapper, &[0.1; 8], 2, 4, &[0.5; 3], &mut quiet());
        assert!(err.is_err());
        let err = matvec(&mut opc, &vom, &mapper, &[], 0, 0, &[], &mut quiet());
        assert!(err.is_err());
    }
}
