// Fixture: unique tags, every one of them version-gated.
pub const TAG_JOB: u8 = 1;
pub const TAG_RESULT: u8 = 2;
pub const TAG_CONFIGURE: u8 = 3;

pub const TAG_MIN_VERSION: &[(u8, u16)] =
    &[(TAG_JOB, 2), (TAG_RESULT, 2), (TAG_CONFIGURE, 3)];
