//! The layer abstraction plus the parameter-free layers.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;
use crate::{NnError, Result};

/// Update rule applied per parameter group: `(params, grads, momentum)`.
pub type UpdateRule<'a> = dyn FnMut(&mut [f32], &[f32], &mut Vec<f32>) + 'a;

/// A differentiable layer.
///
/// Layers own their parameters and cache whatever the backward pass needs
/// during [`Layer::forward`]. [`Layer::backward`] consumes the cache and
/// accumulates parameter gradients internally; [`Layer::apply_gradients`]
/// performs the SGD update (with the optimizer supplying scaling).
pub trait Layer {
    /// Computes the layer output. `training` toggles batch statistics and
    /// cache retention.
    ///
    /// # Errors
    ///
    /// Implementations return [`NnError::ShapeMismatch`] for incompatible
    /// inputs.
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor>;

    /// Propagates `grad_output` to the input, accumulating parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidState`] when called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Applies the accumulated gradients with the provided update rule and
    /// clears them. `update(param, grad, slot)` receives a per-parameter
    /// momentum slot.
    fn apply_gradients(&mut self, update: &mut UpdateRule);

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize {
        0
    }

    /// Layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Downcast hook for containers that need concrete-type access (e.g.
    /// swapping the first convolution for its quantised wrapper). Layers
    /// that opt in return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }

    /// Appends this layer's trainable parameters to `out`, in a fixed
    /// per-layer order. Parameter-free layers append nothing.
    fn export_parameters(&self, out: &mut Vec<f32>) {
        let _ = out;
    }

    /// Restores parameters previously produced by
    /// [`Layer::export_parameters`], consuming them from the front of
    /// `input` and returning the remainder.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `input` holds fewer values
    /// than this layer needs.
    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        Ok(input)
    }
}

/// Splits `count` values off the front of `input` for a layer restore.
pub(crate) fn take(input: &[f32], count: usize) -> Result<(&[f32], &[f32])> {
    if input.len() < count {
        return Err(NnError::ShapeMismatch {
            expected: format!("at least {count} parameters"),
            got: vec![input.len()],
        });
    }
    Ok(input.split_at(count))
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        if training {
            self.mask = Some(input.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("relu backward before forward".into()))?;
        if mask.len() != grad_output.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("volume {}", mask.len()),
                got: grad_output.shape().to_vec(),
            });
        }
        let mut g = grad_output.clone();
        for (v, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(g)
    }

    fn apply_gradients(&mut self, _update: &mut UpdateRule) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// 2×2 max pooling with stride 2 (NCHW).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MaxPool2 {
    /// Cached argmax indices into the input, one per output element.
    argmax: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pool layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.len() != 4 || s[2] < 2 || s[3] < 2 {
            return Err(NnError::ShapeMismatch {
                expected: "NCHW with H, W >= 2".into(),
                got: s.to_vec(),
            });
        }
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(vec![n, c, oh, ow]);
        let mut argmax = Vec::with_capacity(n * c * oh * ow);
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (y, x) = (oy * 2 + dy, ox * 2 + dx);
                                let v = input.at4(ni, ci, y, x);
                                if v > best {
                                    best = v;
                                    best_idx = ((ni * c + ci) * h + y) * w + x;
                                }
                            }
                        }
                        *out.at4_mut(ni, ci, oy, ox) = best;
                        argmax.push(best_idx);
                    }
                }
            }
        }
        if training {
            self.argmax = Some((argmax, s.to_vec()));
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (argmax, in_shape) = self
            .argmax
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("maxpool backward before forward".into()))?;
        if argmax.len() != grad_output.len() {
            return Err(NnError::ShapeMismatch {
                expected: format!("volume {}", argmax.len()),
                got: grad_output.shape().to_vec(),
            });
        }
        let mut grad_in = Tensor::zeros(in_shape.clone());
        let gi = grad_in.as_mut_slice();
        for (&idx, &g) in argmax.iter().zip(grad_output.as_slice()) {
            gi[idx] += g;
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, _update: &mut UpdateRule) {}

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

/// Global average pooling: NCHW → NC.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.len() != 4 {
            return Err(NnError::ShapeMismatch {
                expected: "NCHW".into(),
                got: s.to_vec(),
            });
        }
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let mut out = Tensor::zeros(vec![n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let mut acc = 0.0f32;
                for y in 0..h {
                    for x in 0..w {
                        acc += input.at4(ni, ci, y, x);
                    }
                }
                out.as_mut_slice()[ni * c + ci] = acc / (h * w) as f32;
            }
        }
        if training {
            self.in_shape = Some(s.to_vec());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let in_shape = self
            .in_shape
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("gap backward before forward".into()))?;
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        if grad_output.shape() != [n, c] {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{n}, {c}]"),
                got: grad_output.shape().to_vec(),
            });
        }
        let scale = 1.0 / (h * w) as f32;
        let mut grad_in = Tensor::zeros(in_shape.clone());
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_output.as_slice()[ni * c + ci] * scale;
                for y in 0..h {
                    for x in 0..w {
                        *grad_in.at4_mut(ni, ci, y, x) = g;
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, _update: &mut UpdateRule) {}

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }
}

/// Flattens NCHW to `[N, C·H·W]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: "at least 1-D".into(),
                got: s.to_vec(),
            });
        }
        let n = s[0];
        let rest: usize = s[1..].iter().product();
        if training {
            self.in_shape = Some(s.to_vec());
        }
        input.reshape(vec![n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let in_shape = self
            .in_shape
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("flatten backward before forward".into()))?;
        grad_output.reshape(in_shape.clone())
    }

    fn apply_gradients(&mut self, _update: &mut UpdateRule) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let y = relu.forward(&x, true).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu
            .backward(&Tensor::from_vec(vec![4], vec![1.0; 4]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(vec![2])).is_err());
    }

    #[test]
    fn maxpool_selects_max_and_routes_gradient() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![1, 1, 2, 2],
            vec![1.0, 3.0, 2.0, 0.0], // max is 3.0 at (0,1)
        )
        .unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice(), &[3.0]);
        let g = pool
            .backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_shape_validation() {
        let mut pool = MaxPool2::new();
        assert!(pool
            .forward(&Tensor::zeros(vec![1, 1, 1, 4]), true)
            .is_err());
        assert!(pool.forward(&Tensor::zeros(vec![4, 4]), true).is_err());
    }

    #[test]
    fn gap_averages_and_distributes() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = gap.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1]);
        assert!((y.as_slice()[0] - 2.5).abs() < 1e-6);
        let g = gap
            .backward(&Tensor::from_vec(vec![1, 1], vec![4.0]).unwrap())
            .unwrap();
        assert!(g.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4, 5]);
        let y = fl.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let g = fl.backward(&Tensor::zeros(vec![2, 60])).unwrap();
        assert_eq!(g.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn parameter_free_layers_report_zero() {
        assert_eq!(Relu::new().parameter_count(), 0);
        assert_eq!(MaxPool2::new().parameter_count(), 0);
        assert_eq!(Flatten::new().parameter_count(), 0);
    }
}
