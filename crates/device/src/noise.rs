//! Shared noise utilities for the optical and analog models.
//!
//! Simulation crates inject noise through two complementary interfaces,
//! both deterministic under a seed so the accuracy experiments of
//! Table II stay reproducible run-to-run:
//!
//! * [`NoiseSource`] — the original *stateful* stream. Draws depend on
//!   call order, so it suits inherently serial paths (fault injection,
//!   behavioural quantisation sweeps) and keeps backwards compatibility.
//! * [`NoiseStream`] — a *counter-based* source keyed by
//!   `(seed, epoch, slot, position)`. Every draw is addressed by an
//!   explicit counter instead of consuming shared state, so evaluations
//!   can run in any order — including across threads — and still produce
//!   bit-identical results. This is what lets the accelerator parallelise
//!   `convolve_frame` without breaking `deterministic_under_seed`.
//!
//! Both implement [`NoiseModel`], the trait the optical fabric samples
//! through. The stream path draws its Gaussians with a 128-layer
//! ziggurat (one 64-bit mix and one compare on the fast path), which is
//! several times cheaper than the Box–Muller evaluation the stateful
//! path inherits from [`crate::sense_amp`] — the per-MAC noise draw is
//! the single hottest operation in frame-rate simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

use crate::sense_amp::gaussian;
use crate::simd::{mix64, mix64_key_pairs_scalar, mix64_lanes, COUNTER_MUL, LANES};
use crate::{DeviceError, Result};

/// Relative noise intensities applied along the optical MAC path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative intensity noise of the VCSEL output (σ as a fraction of
    /// the signal).
    pub vcsel_rin: f64,
    /// Relative σ of each ring's transmission (thermal drift of the
    /// resonance between calibrations).
    pub mr_drift: f64,
    /// Additive σ at the BPD output as a fraction of the arm full scale
    /// (shot + thermal, lumped).
    pub detector: f64,
}

impl NoiseConfig {
    /// Calibrated so the optical first layer degrades CIFAR-like accuracy
    /// by a few points, matching Table II's gap to the float baseline.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vcsel_rin: 0.01,
            mr_drift: 0.01,
            detector: 0.005,
        }
    }

    /// Noise-free configuration for ablations and functional tests.
    #[must_use]
    pub fn noiseless() -> Self {
        Self {
            vcsel_rin: 0.0,
            mr_drift: 0.0,
            detector: 0.0,
        }
    }
}

/// The sampling interface the optical fabric perturbs signals through.
///
/// Implemented by the stateful [`NoiseSource`], by [`StreamCursor`]
/// (sequential draws over a counter-based stream) and by test doubles.
pub trait NoiseModel {
    /// Applies VCSEL relative-intensity noise to an emitted power.
    fn vcsel(&mut self, power: f64) -> f64;

    /// Applies microring transmission drift, clamped to the physical
    /// `[0, 1]` range.
    fn mr_transmission(&mut self, t: f64) -> f64;

    /// Adds detector noise: `value + σ·full_scale·N(0,1)`.
    fn detector(&mut self, value: f64, full_scale: f64) -> f64;
}

/// A seeded Gaussian noise source.
///
/// # Examples
///
/// ```
/// use oisa_device::noise::{NoiseConfig, NoiseSource};
///
/// let mut a = NoiseSource::seeded(1, NoiseConfig::paper_default());
/// let mut b = NoiseSource::seeded(1, NoiseConfig::paper_default());
/// assert_eq!(a.perturb_signal(1.0, 0.01), b.perturb_signal(1.0, 0.01));
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: StdRng,
    config: NoiseConfig,
    seed: u64,
    epoch: u64,
}

impl NoiseSource {
    /// Creates a source with a fixed seed.
    #[must_use]
    pub fn seeded(seed: u64, config: NoiseConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            config,
            seed,
            epoch: 0,
        }
    }

    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Multiplies `signal` by `(1 + σ·N(0,1))`.
    pub fn perturb_signal(&mut self, signal: f64, sigma: f64) -> f64 {
        if sigma == 0.0 {
            return signal;
        }
        signal * (1.0 + sigma * gaussian(&mut self.rng))
    }

    /// Applies VCSEL relative-intensity noise to an emitted power.
    pub fn vcsel(&mut self, power: f64) -> f64 {
        let sigma = self.config.vcsel_rin;
        self.perturb_signal(power, sigma).max(0.0)
    }

    /// Applies microring transmission drift, clamped to the physical
    /// `[0, 1]` range.
    pub fn mr_transmission(&mut self, t: f64) -> f64 {
        let sigma = self.config.mr_drift;
        self.perturb_signal(t, sigma).clamp(0.0, 1.0)
    }

    /// Adds detector noise: `value + σ·full_scale·N(0,1)`.
    pub fn detector(&mut self, value: f64, full_scale: f64) -> f64 {
        if self.config.detector == 0.0 {
            return value;
        }
        value + self.config.detector * full_scale * gaussian(&mut self.rng)
    }

    /// Raw standard-normal sample (for callers composing their own
    /// models).
    pub fn standard_normal(&mut self) -> f64 {
        gaussian(&mut self.rng)
    }

    /// Raw uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Advances to (and returns) the next noise epoch.
    ///
    /// Counter-based streams mix the epoch into their keys, so repeated
    /// evaluations of the same workload (e.g. per-channel passes of a
    /// multi-channel convolution) see fresh noise while staying
    /// deterministic under the seed.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfRange`] when the epoch counter would wrap —
    /// see [`NoiseSource::reserve_epochs`].
    pub fn begin_epoch(&mut self) -> Result<u64> {
        self.reserve_epochs(1)
    }

    /// Reserves `count` consecutive epochs in one step, returning the
    /// first — equivalent to `count` calls of
    /// [`NoiseSource::begin_epoch`].
    ///
    /// The batched convolution engine keys frame `f` of a batch to
    /// epoch `first + f`, so a batch draws exactly the noise a
    /// per-frame sequential loop would, while the reservation happens
    /// atomically once the whole batch has validated.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfRange`] when the reservation would wrap the
    /// `u64` epoch counter. A wrapped counter would silently re-key new
    /// frames onto noise streams already used by earlier ones — fatal
    /// for a long-lived serving process that relies on per-frame stream
    /// independence — so exhaustion is a checked error, never a wrap.
    /// The counter stays unchanged on error.
    pub fn reserve_epochs(&mut self, count: u64) -> Result<u64> {
        let first = self.epoch;
        self.epoch = self.epoch.checked_add(count).ok_or_else(|| {
            DeviceError::OutOfRange(format!(
                "noise epoch counter would wrap: {first} + {count} epochs exceeds u64::MAX; \
                 re-seed the source to start a fresh stream family"
            ))
        })?;
        Ok(first)
    }

    /// The epoch the next [`NoiseSource::begin_epoch`] /
    /// [`NoiseSource::reserve_epochs`] call will hand out.
    ///
    /// Together with [`NoiseSource::advance_to_epoch`] this is the
    /// hook distributed executors use to keep several sources — one
    /// per worker process — keyed into the *same* stream family as a
    /// single sequential source.
    #[must_use]
    pub fn next_epoch(&self) -> u64 {
        self.epoch
    }

    /// Fast-forwards the epoch counter to `target`, so the next
    /// reservation starts there.
    ///
    /// A shard worker that owns frames `[a, b)` of a job advances its
    /// freshly-seeded source to `base + a` before reserving; the frames
    /// then draw from exactly the streams a single host running the
    /// whole job would have used.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfRange`] when `target` lies *behind* the
    /// counter — rewinding would re-key new frames onto streams already
    /// consumed, the same silent collision the overflow check in
    /// [`NoiseSource::reserve_epochs`] exists to prevent. The counter
    /// stays unchanged on error.
    pub fn advance_to_epoch(&mut self, target: u64) -> Result<()> {
        if target < self.epoch {
            return Err(DeviceError::OutOfRange(format!(
                "cannot rewind noise epoch counter from {} to {target}: earlier epochs may \
                 already key consumed streams; re-seed the source instead",
                self.epoch
            )));
        }
        self.epoch = target;
        Ok(())
    }

    /// A counter-based stream for `(slot, position)` under `epoch`.
    ///
    /// Streams derived from the same key always replay the same draws,
    /// independent of evaluation order — see [`NoiseStream`].
    #[must_use]
    pub fn stream(&self, epoch: u64, slot: u64, position: u64) -> NoiseStream {
        self.slot_stream(epoch, slot).at(position)
    }

    /// The per-slot half of [`NoiseSource::stream`], hoistable out of
    /// position loops: the `(seed, epoch, slot)` mixing happens once and
    /// each output position costs a single extra mix.
    #[must_use]
    pub fn slot_stream(&self, epoch: u64, slot: u64) -> SlotStream {
        SlotStream {
            partial_key: mix64(self.seed ^ mix64(epoch ^ mix64(slot ^ 0x6A09_E667_F3BC_C909))),
            config: self.config,
            tables: zig_tables(),
        }
    }
}

/// The `(seed, epoch, slot)`-mixed prefix of a stream key. Call
/// [`SlotStream::at`] per output position to get the full
/// [`NoiseStream`].
#[derive(Debug, Clone, Copy)]
pub struct SlotStream {
    partial_key: u64,
    config: NoiseConfig,
    tables: &'static ZigTables,
}

impl SlotStream {
    /// The stream for one output position under this slot.
    #[inline]
    #[must_use]
    pub fn at(&self, position: u64) -> NoiseStream {
        NoiseStream {
            key: mix64(self.partial_key ^ position.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            config: self.config,
            tables: self.tables,
        }
    }

    /// The streams for [`LANES`] consecutive output positions
    /// (`position .. position + LANES`), held together so draws at a
    /// shared counter can run across all of them in lockstep.
    ///
    /// Each lane's key is exactly the key [`SlotStream::at`] derives
    /// for that position, so a [`StreamQuad`] draw is bit-equal to the
    /// corresponding per-position draws — by construction, not by
    /// tolerance.
    #[inline]
    #[must_use]
    pub fn quad_at(&self, position: u64) -> StreamQuad {
        let mut keys = [0u64; LANES];
        for (l, key) in keys.iter_mut().enumerate() {
            *key =
                mix64(self.partial_key ^ (position + l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        StreamQuad {
            keys,
            config: self.config,
            tables: self.tables,
        }
    }
}

/// [`LANES`] positionally-consecutive [`NoiseStream`]s evaluated in
/// lockstep — the noise side of the across-window MAC.
///
/// Adjacent convolution output positions consume the *same* counters
/// (the weight/ring index layout does not depend on the position) and
/// differ only in stream key, which makes the batched mixing shape
/// "per-lane keys, broadcast counter": one scalar counter spread
/// shared by every lane, then a vectorised finaliser over the four
/// states. Draws through this type are bit-equal to the same draws
/// through [`SlotStream::at`] on each position individually.
#[derive(Debug, Clone, Copy)]
pub struct StreamQuad {
    keys: [u64; LANES],
    config: NoiseConfig,
    tables: &'static ZigTables,
}

impl StreamQuad {
    /// The configured intensities (shared by every lane).
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// The single-position stream for lane `l` (`l < LANES`) — the
    /// remainder/reference path of the across-window MAC.
    #[inline]
    #[must_use]
    pub fn lane(&self, l: usize) -> NoiseStream {
        NoiseStream {
            key: self.keys[l],
            config: self.config,
            tables: self.tables,
        }
    }

    /// The draw pair (`c`, `c + 1`) on every lane: the first array
    /// holds each lane's counter-`c` draw, the second its counter-
    /// `c + 1` draw. Bit-equal to `self.lane(l).gaussian_at(c)` /
    /// `gaussian_at(c + 1)` per lane.
    ///
    /// This is the shape the across-window MAC consumes: channel `i`
    /// draws the (VCSEL, drift) counter pair `(2·i, 2·i + 1)` under
    /// all [`LANES`] window keys at once.
    #[inline]
    #[must_use]
    pub fn gaussian_pair_at(&self, c: u64) -> ([f64; LANES], [f64; LANES]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            use crate::simd::Tier;
            match crate::simd::tier() {
                // SAFETY: the tier is only reported after the matching
                // target features were runtime-detected on this CPU.
                Tier::Avx512 => return unsafe { self.gaussian_pair_at_avx512(c) },
                Tier::Avx2 => return unsafe { self.gaussian_pair_at_avx2(c) },
                Tier::Scalar => {}
            }
        }
        self.gaussian_pair_at_scalar(c)
    }

    /// Per-lane ziggurat finish over a mixed pair batch (counter-`c`
    /// words first, counter-`c + 1` words after).
    #[inline(always)]
    fn pair_from_mixed(&self, mixed: [u64; 2 * LANES]) -> ([f64; LANES], [f64; LANES]) {
        let mut first = [0.0f64; LANES];
        let mut second = [0.0f64; LANES];
        for l in 0..LANES {
            first[l] = ziggurat_from_bits(self.tables, mixed[l]);
            second[l] = ziggurat_from_bits(self.tables, mixed[LANES + l]);
        }
        (first, second)
    }

    /// Portable pair draw: scalar mixing, same finish. Doc-hidden: the
    /// optics hot path calls the per-tier draws directly from its own
    /// `#[target_feature]`-specialised loop bodies, where they inline,
    /// instead of dispatching per channel.
    #[doc(hidden)]
    #[inline(always)]
    #[must_use]
    pub fn gaussian_pair_at_scalar(&self, c: u64) -> ([f64; LANES], [f64; LANES]) {
        self.pair_from_mixed(mix64_key_pairs_scalar(self.keys, c))
    }

    /// Pair draw on the AVX2 mixing tier (doc-hidden; see
    /// [`StreamQuad::gaussian_pair_at_scalar`]). Safe
    /// `#[target_feature]` fn: callers that have not proven AVX2
    /// support must still wrap the call in `unsafe`.
    #[doc(hidden)]
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    #[target_feature(enable = "avx2")]
    #[must_use]
    pub fn gaussian_pair_at_avx2(&self, c: u64) -> ([f64; LANES], [f64; LANES]) {
        self.pair_from_mixed(crate::simd::x86::mix64_key_pairs_avx2(self.keys, c))
    }

    /// Pair draw on the AVX-512 mixing tier (doc-hidden; see
    /// [`StreamQuad::gaussian_pair_at_scalar`]). Safe
    /// `#[target_feature]` fn: callers that have not proven
    /// AVX-512DQ/VL support must still wrap the call in `unsafe`.
    #[doc(hidden)]
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    #[target_feature(enable = "avx512dq,avx512vl")]
    #[must_use]
    pub fn gaussian_pair_at_avx512(&self, c: u64) -> ([f64; LANES], [f64; LANES]) {
        self.pair_from_mixed(crate::simd::x86::mix64_key_pairs_avx512(self.keys, c))
    }

    /// One standard-normal draw at `counter` on every lane — bit-equal
    /// to `self.lane(l).gaussian_at(counter)` per lane. Used once per
    /// window for the detector draw, so the mixing stays scalar.
    #[inline]
    #[must_use]
    pub fn gaussian_at(&self, counter: u64) -> [f64; LANES] {
        let spread = counter.wrapping_mul(COUNTER_MUL);
        self.keys
            .map(|key| ziggurat_from_bits(self.tables, mix64(key ^ spread)))
    }

    /// Detector noise on each lane's `value`, addressed by `counter` —
    /// bit-equal to `self.lane(l).detector_at(counter, values[l],
    /// full_scale)` per lane, including the draw-free `σ = 0` path.
    #[inline]
    #[must_use]
    pub fn detector_at(&self, counter: u64, values: [f64; LANES], full_scale: f64) -> [f64; LANES] {
        if self.config.detector == 0.0 {
            return values;
        }
        let g = self.gaussian_at(counter);
        let mut out = values;
        for l in 0..LANES {
            out[l] += self.config.detector * full_scale * g[l];
        }
        out
    }
}

impl NoiseModel for NoiseSource {
    fn vcsel(&mut self, power: f64) -> f64 {
        Self::vcsel(self, power)
    }

    fn mr_transmission(&mut self, t: f64) -> f64 {
        Self::mr_transmission(self, t)
    }

    fn detector(&mut self, value: f64, full_scale: f64) -> f64 {
        Self::detector(self, value, full_scale)
    }
}

/// Minimal per-counter substream: a SplitMix64 walk seeded from the
/// mixed `(key, counter)` pair. Only the rare ziggurat fallback draws
/// more than one value from it.
struct SubRng(u64);

impl SubRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1]` — never zero, so logarithms stay finite.
    #[inline]
    fn uniform_open(&mut self) -> f64 {
        (((self.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 128;
/// Ziggurat tail cut-off (Doornik's constants for 128 layers).
const ZIG_R: f64 = 3.442_619_855_899;
/// Area of each ziggurat slice.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

/// Precomputed ziggurat geometry: layer edges `x[i]` and the rectangle
/// acceptance ratios `x[i+1]/x[i]`.
#[derive(Debug)]
pub struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    ratio: [f64; ZIG_LAYERS],
}

/// The tables, built on first use. Streams cache the reference so the
/// hot path never touches the `OnceLock` per draw.
fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; ZIG_LAYERS + 1];
        let f = (-0.5 * ZIG_R * ZIG_R).exp();
        x[0] = ZIG_V / f;
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            let prev = x[i - 1];
            x[i] = (-2.0 * (ZIG_V / prev + (-0.5 * prev * prev).exp()).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut ratio = [0.0f64; ZIG_LAYERS];
        for i in 0..ZIG_LAYERS {
            ratio[i] = x[i + 1] / x[i];
        }
        ZigTables { x, ratio }
    })
}

/// The ziggurat finish shared by every draw path: layer index and
/// uniform from one mixed word, rectangle acceptance, cold
/// continuation on rejection.
#[inline(always)]
fn ziggurat_from_bits(tables: &ZigTables, bits: u64) -> f64 {
    let i = (bits & 0x7F) as usize;
    let u = 2.0 * ((bits >> 12) as f64 * (1.0 / (1u64 << 52) as f64)) - 1.0;
    if u.abs() < tables.ratio[i] {
        u * tables.x[i]
    } else {
        ziggurat_slow(tables, u, i, bits)
    }
}

/// Cold continuation of the ziggurat: wedge and tail corrections, fed by
/// a substream derived from the rejected draw (≈ 1.2 % of samples).
#[cold]
fn ziggurat_slow(tables: &ZigTables, mut first_u: f64, mut first_i: usize, state: u64) -> f64 {
    let x = &tables.x;
    let ratio = &tables.ratio;
    let mut sub = SubRng(state);
    loop {
        if first_i == 0 {
            // Marsaglia tail beyond ZIG_R.
            loop {
                let tx = -sub.uniform_open().ln() / ZIG_R;
                let ty = -sub.uniform_open().ln();
                if 2.0 * ty > tx * tx {
                    return if first_u < 0.0 {
                        -(ZIG_R + tx)
                    } else {
                        ZIG_R + tx
                    };
                }
            }
        }
        let xi = first_u * x[first_i];
        let f0 = (-0.5 * (x[first_i] * x[first_i] - xi * xi)).exp();
        let f1 = (-0.5 * (x[first_i + 1] * x[first_i + 1] - xi * xi)).exp();
        if f1 + sub.uniform_open() * (f0 - f1) < 1.0 {
            return xi;
        }
        // Fresh rectangle attempt from the substream.
        let bits = sub.next_u64();
        let i = (bits & 0x7F) as usize;
        let u = 2.0 * ((bits >> 12) as f64 * (1.0 / (1u64 << 52) as f64)) - 1.0;
        if u.abs() < ratio[i] {
            return u * x[i];
        }
        first_u = u;
        first_i = i;
    }
}

/// A counter-based Gaussian noise stream.
///
/// Each draw is addressed by an explicit `counter`; the result depends
/// only on `(key, counter)`, never on how many draws happened before.
/// Two streams with the same key replay identical noise in any
/// evaluation order, which is what makes the parallel convolution
/// pipeline bit-identical to its sequential reference.
///
/// # Examples
///
/// ```
/// use oisa_device::noise::{NoiseConfig, NoiseSource};
///
/// let src = NoiseSource::seeded(7, NoiseConfig::paper_default());
/// let s = src.stream(0, 3, 41);
/// // Order does not matter: counter 5 always yields the same draw.
/// let a = s.gaussian_at(5);
/// let _ = s.gaussian_at(0);
/// assert_eq!(a, s.gaussian_at(5));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NoiseStream {
    key: u64,
    config: NoiseConfig,
    tables: &'static ZigTables,
}

impl NoiseStream {
    /// The configured intensities.
    #[must_use]
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Standard-normal draw at `counter`.
    ///
    /// Fast path: one SplitMix64 finalisation feeds both the ziggurat
    /// layer index (low 7 bits) and the 52-bit uniform; the rare
    /// rejected draw continues in `ziggurat_slow`.
    #[inline]
    #[must_use]
    pub fn gaussian_at(&self, counter: u64) -> f64 {
        self.ziggurat_from_bits(mix64(self.key ^ counter.wrapping_mul(COUNTER_MUL)))
    }

    /// [`LANES`] standard-normal draws at explicit counters — bit-equal
    /// to [`LANES`] scalar [`NoiseStream::gaussian_at`] calls on the
    /// same counters, by construction rather than by tolerance.
    ///
    /// The SplitMix64 counter mixing is batched through
    /// [`crate::simd::mix64_lanes`], which dispatches to a vector
    /// kernel when the `simd` feature is on and the CPU supports one;
    /// integer mixing is exact on every tier. The ziggurat layer
    /// lookup, acceptance compare and `u · x[i]` finish then run per
    /// lane with the identical IEEE operations the scalar path
    /// performs, and the rare rejected lane (≈ 1.2 % of draws) falls
    /// back to the same cold `ziggurat_slow` continuation seeded from
    /// that lane's mixed bits.
    #[inline(always)]
    #[must_use]
    pub fn gaussian_at_lanes(&self, counters: [u64; LANES]) -> [f64; LANES] {
        let mixed = mix64_lanes(self.key, counters);
        let mut out = [0.0f64; LANES];
        for l in 0..LANES {
            out[l] = self.ziggurat_from_bits(mixed[l]);
        }
        out
    }

    /// The ziggurat finish shared by every draw path (see the free
    /// [`ziggurat_from_bits`]).
    #[inline(always)]
    fn ziggurat_from_bits(&self, bits: u64) -> f64 {
        ziggurat_from_bits(self.tables, bits)
    }

    /// VCSEL relative-intensity noise on `power`, addressed by
    /// `counter`.
    #[inline]
    #[must_use]
    pub fn vcsel_at(&self, counter: u64, power: f64) -> f64 {
        let sigma = self.config.vcsel_rin;
        if sigma == 0.0 {
            return power.max(0.0);
        }
        (power * (1.0 + sigma * self.gaussian_at(counter))).max(0.0)
    }

    /// Microring transmission drift on `t`, addressed by `counter`.
    #[inline]
    #[must_use]
    pub fn mr_transmission_at(&self, counter: u64, t: f64) -> f64 {
        let sigma = self.config.mr_drift;
        if sigma == 0.0 {
            return t.clamp(0.0, 1.0);
        }
        (t * (1.0 + sigma * self.gaussian_at(counter))).clamp(0.0, 1.0)
    }

    /// Detector noise on `value`, addressed by `counter`.
    #[inline]
    #[must_use]
    pub fn detector_at(&self, counter: u64, value: f64, full_scale: f64) -> f64 {
        if self.config.detector == 0.0 {
            return value;
        }
        value + self.config.detector * full_scale * self.gaussian_at(counter)
    }

    /// A sequential [`NoiseModel`] cursor over this stream, starting at
    /// counter 0.
    #[must_use]
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            stream: *self,
            counter: 0,
        }
    }
}

/// Sequential adapter: draws counters 0, 1, 2, … from a
/// [`NoiseStream`], one per [`NoiseModel`] call.
///
/// A MAC evaluated through a cursor consumes exactly the counters
/// `2·i` (VCSEL) and `2·i + 1` (ring drift) per channel `i` and `2·m`
/// (detector) for an `m`-channel window — the same addressing the fused
/// fast path uses explicitly, so the two produce bit-identical physics.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    stream: NoiseStream,
    counter: u64,
}

impl StreamCursor {
    #[inline]
    fn next_counter(&mut self) -> u64 {
        let c = self.counter;
        self.counter += 1;
        c
    }
}

impl NoiseModel for StreamCursor {
    fn vcsel(&mut self, power: f64) -> f64 {
        let c = self.next_counter();
        self.stream.vcsel_at(c, power)
    }

    fn mr_transmission(&mut self, t: f64) -> f64 {
        let c = self.next_counter();
        self.stream.mr_transmission_at(c, t)
    }

    fn detector(&mut self, value: f64, full_scale: f64) -> f64 {
        let c = self.next_counter();
        self.stream.detector_at(c, value, full_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = NoiseConfig::paper_default();
        let mut a = NoiseSource::seeded(99, cfg);
        let mut b = NoiseSource::seeded(99, cfg);
        for _ in 0..50 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = NoiseConfig::paper_default();
        let mut a = NoiseSource::seeded(1, cfg);
        let mut b = NoiseSource::seeded(2, cfg);
        let same = (0..20)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 3);
    }

    #[test]
    fn noiseless_config_is_identity() {
        let mut src = NoiseSource::seeded(5, NoiseConfig::noiseless());
        assert_eq!(src.vcsel(0.7), 0.7);
        assert_eq!(src.mr_transmission(0.3), 0.3);
        assert_eq!(src.detector(1.5, 10.0), 1.5);
    }

    #[test]
    fn mr_transmission_stays_physical() {
        let mut src = NoiseSource::seeded(
            5,
            NoiseConfig {
                mr_drift: 0.5, // exaggerated
                ..NoiseConfig::paper_default()
            },
        );
        for _ in 0..500 {
            let t = src.mr_transmission(0.95);
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    fn vcsel_power_never_negative() {
        let mut src = NoiseSource::seeded(
            5,
            NoiseConfig {
                vcsel_rin: 1.0, // exaggerated
                ..NoiseConfig::paper_default()
            },
        );
        for _ in 0..500 {
            assert!(src.vcsel(0.01) >= 0.0);
        }
    }

    #[test]
    fn perturbation_statistics() {
        let mut src = NoiseSource::seeded(17, NoiseConfig::paper_default());
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| src.perturb_signal(2.0, 0.05)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean {mean}");
        let sd = (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!((sd - 0.1).abs() < 0.01, "sd {sd}");
    }

    #[test]
    fn stream_draws_are_order_independent() {
        let src = NoiseSource::seeded(11, NoiseConfig::paper_default());
        let s = src.stream(0, 4, 1000);
        let forward: Vec<f64> = (0..16).map(|c| s.gaussian_at(c)).collect();
        let backward: Vec<f64> = (0..16).rev().map(|c| s.gaussian_at(c)).collect();
        let reversed: Vec<f64> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed);
    }

    #[test]
    fn stream_keys_separate_slots_positions_epochs() {
        let src = NoiseSource::seeded(11, NoiseConfig::paper_default());
        let base = src.stream(0, 1, 1).gaussian_at(0);
        assert_ne!(base, src.stream(0, 1, 2).gaussian_at(0));
        assert_ne!(base, src.stream(0, 2, 1).gaussian_at(0));
        assert_ne!(base, src.stream(1, 1, 1).gaussian_at(0));
        // And the same key replays exactly.
        assert_eq!(base, src.stream(0, 1, 1).gaussian_at(0));
    }

    #[test]
    fn gaussian_lanes_match_four_scalar_draws() {
        let src = NoiseSource::seeded(31, NoiseConfig::paper_default());
        let s = src.stream(2, 5, 77);
        // 4096 draws cover dozens of slow-path rejections statistically;
        // the dedicated tests below force them deterministically.
        for base in (0..4096u64).step_by(4) {
            let cs = [base, base + 1, base + 2, base + 3];
            let lanes = s.gaussian_at_lanes(cs);
            for (l, &c) in cs.iter().enumerate() {
                assert_eq!(lanes[l], s.gaussian_at(c), "lane {l} counter {c}");
            }
        }
        // Lane order is positional, not sorted: scrambled counters too.
        let cs = [901u64, 3, 44_000, 17];
        let lanes = s.gaussian_at_lanes(cs);
        for (l, &c) in cs.iter().enumerate() {
            assert_eq!(lanes[l], s.gaussian_at(c));
        }
    }

    /// Finds the first counter at or after `from` whose fast-path
    /// rectangle draw is rejected (optionally also requiring the tail
    /// layer `i == 0`), forcing [`ziggurat_slow`].
    fn rejected_counter(s: &NoiseStream, from: u64, tail_only: bool) -> u64 {
        let tables = zig_tables();
        (from..from + 10_000_000)
            .find(|c| {
                let bits = mix64(s.key ^ c.wrapping_mul(COUNTER_MUL));
                let i = (bits & 0x7F) as usize;
                let u = 2.0 * ((bits >> 12) as f64 * (1.0 / (1u64 << 52) as f64)) - 1.0;
                u.abs() >= tables.ratio[i] && (!tail_only || i == 0)
            })
            .expect("no rejected rectangle draw found")
    }

    #[test]
    fn gaussian_lanes_cover_the_ziggurat_slow_path() {
        let src = NoiseSource::seeded(8, NoiseConfig::paper_default());
        let s = src.stream(0, 0, 0);
        // A wedge/tail rejection in every lane position.
        for lane in 0..4u64 {
            let c = rejected_counter(&s, 1000 * lane, false);
            let mut cs = [c + 1, c + 2, c + 3, c + 4];
            cs[lane as usize] = c;
            let lanes = s.gaussian_at_lanes(cs);
            for (l, &cc) in cs.iter().enumerate() {
                assert_eq!(lanes[l], s.gaussian_at(cc), "lane {l} counter {cc}");
            }
        }
        // And the Marsaglia tail (layer 0) specifically.
        let t = rejected_counter(&s, 0, true);
        let lanes = s.gaussian_at_lanes([t, t + 1, t + 2, t + 3]);
        assert_eq!(lanes[0], s.gaussian_at(t));
        assert!(
            lanes[0].abs() > 3.0,
            "tail draw should be extreme: {}",
            lanes[0]
        );
    }

    #[test]
    fn cursor_matches_explicit_counters() {
        let src = NoiseSource::seeded(3, NoiseConfig::paper_default());
        let s = src.stream(0, 0, 7);
        let mut cursor = s.cursor();
        let via_cursor = (
            cursor.vcsel(1.0e-4),
            cursor.mr_transmission(0.8),
            cursor.detector(2.0e-6, 1.0e-3),
        );
        let via_counters = (
            s.vcsel_at(0, 1.0e-4),
            s.mr_transmission_at(1, 0.8),
            s.detector_at(2, 2.0e-6, 1.0e-3),
        );
        assert_eq!(via_cursor, via_counters);
    }

    #[test]
    fn ziggurat_moments_match_standard_normal() {
        let src = NoiseSource::seeded(23, NoiseConfig::paper_default());
        let s = src.stream(0, 0, 0);
        let n = 40_000u64;
        let samples: Vec<f64> = (0..n).map(|c| s.gaussian_at(c)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Symmetric-ish and with realistic tails.
        let above = samples.iter().filter(|&&x| x > 0.0).count() as f64 / n as f64;
        assert!((above - 0.5).abs() < 0.02, "P(x>0) {above}");
        let tail = samples.iter().filter(|&&x| x.abs() > 2.0).count() as f64 / n as f64;
        assert!((tail - 0.0455).abs() < 0.01, "P(|x|>2) {tail}");
    }

    #[test]
    fn epochs_advance_deterministically() {
        let mut a = NoiseSource::seeded(1, NoiseConfig::paper_default());
        let mut b = NoiseSource::seeded(1, NoiseConfig::paper_default());
        assert_eq!(a.begin_epoch().unwrap(), 0);
        assert_eq!(a.begin_epoch().unwrap(), 1);
        assert_eq!(b.begin_epoch().unwrap(), 0);
        assert_eq!(b.begin_epoch().unwrap(), 1);
    }

    #[test]
    fn reserved_epochs_match_sequential_begins() {
        let cfg = NoiseConfig::paper_default();
        let mut batch = NoiseSource::seeded(9, cfg);
        let mut serial = NoiseSource::seeded(9, cfg);
        batch.begin_epoch().unwrap();
        serial.begin_epoch().unwrap();
        let first = batch.reserve_epochs(3).unwrap();
        let singles: Vec<u64> = (0..3).map(|_| serial.begin_epoch().unwrap()).collect();
        assert_eq!(vec![first, first + 1, first + 2], singles);
        // Both sources continue from the same epoch afterwards.
        assert_eq!(batch.begin_epoch().unwrap(), serial.begin_epoch().unwrap());
        // And the reserved epochs key the same streams a sequential
        // loop would have seen.
        assert_eq!(
            batch.stream(first + 1, 0, 0).gaussian_at(0),
            serial.stream(singles[1], 0, 0).gaussian_at(0)
        );
    }

    #[test]
    fn advance_aligns_with_a_sequential_source() {
        let cfg = NoiseConfig::paper_default();
        let mut sequential = NoiseSource::seeded(6, cfg);
        sequential.reserve_epochs(5).unwrap();
        // A worker handling frames [3, 5) of the same 5-frame job.
        let mut worker = NoiseSource::seeded(6, cfg);
        assert_eq!(worker.next_epoch(), 0);
        worker.advance_to_epoch(3).unwrap();
        assert_eq!(worker.next_epoch(), 3);
        let first = worker.reserve_epochs(2).unwrap();
        assert_eq!(first, 3);
        assert_eq!(
            worker.stream(4, 1, 2).gaussian_at(9),
            sequential.stream(4, 1, 2).gaussian_at(9)
        );
        // Advancing to the current position is a no-op, not an error.
        worker.advance_to_epoch(5).unwrap();
        assert_eq!(worker.next_epoch(), 5);
    }

    #[test]
    fn advance_refuses_to_rewind() {
        let mut src = NoiseSource::seeded(6, NoiseConfig::paper_default());
        src.reserve_epochs(10).unwrap();
        let err = src.advance_to_epoch(4).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfRange(_)), "got {err:?}");
        assert!(err.to_string().contains("rewind"), "message: {err}");
        // The failed call left the counter untouched.
        assert_eq!(src.next_epoch(), 10);
    }

    #[test]
    fn epoch_exhaustion_is_a_checked_error_not_a_wrap() {
        let mut src = NoiseSource::seeded(4, NoiseConfig::paper_default());
        // Walk the counter to the exact boundary: the reservation that
        // fills the space succeeds...
        let first = src.reserve_epochs(u64::MAX - 1).unwrap();
        assert_eq!(first, 0);
        assert_eq!(src.begin_epoch().unwrap(), u64::MAX - 1);
        // ...and the first reservation past it fails instead of
        // wrapping back onto epoch 0's streams.
        let err = src.begin_epoch().unwrap_err();
        assert!(matches!(err, DeviceError::OutOfRange(_)), "got {err:?}");
        assert!(err.to_string().contains("epoch"), "message: {err}");
        // The failed call left the counter untouched: a zero-count
        // reservation (a no-op) still reports the same next epoch.
        assert_eq!(src.reserve_epochs(0).unwrap(), u64::MAX);
        // Multi-epoch reservations are checked the same way.
        let mut batch = NoiseSource::seeded(4, NoiseConfig::paper_default());
        batch.reserve_epochs(u64::MAX - 2).unwrap();
        assert!(batch.reserve_epochs(3).is_err());
        assert_eq!(batch.reserve_epochs(2).unwrap(), u64::MAX - 2);
    }
}
