//! Comparison platforms for the OISA evaluation (paper §IV).
//!
//! The paper compares OISA against three accelerator families, all
//! re-implemented here as calibrated analytical models evaluated at the
//! same normalised workload (the first layer of ResNet18 on a 128×128
//! sensor, processed at OISA's MAC rate):
//!
//! * [`platforms::CrosslightLike`] — an optical PIS in the style of
//!   Crosslight \[18\]: the same ring/BPD fabric, but **half the rings hold
//!   activations** (halving effective ops) and every activation update
//!   passes through a **DAC** while every arm output needs an **ADC**.
//! * [`platforms::AppCipLike`] — an electronic processing-in-pixel
//!   design in the style of AppCiP \[13\]: analog in-pixel MACs, a folded
//!   ADC, and non-volatile weight storage.
//! * [`platforms::AsicBaseline`] — a DaDianNao-like digital ASIC \[29\]:
//!   eDRAM-fed 8-bit MAC tiles behind a conventional (full-ADC) image
//!   sensor.
//!
//! [`published`] carries the Table I rows of the ten cited PIS/PNS
//! designs verbatim, so the comparison table can be regenerated.

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod platforms;
pub mod published;

use std::fmt;

use oisa_units::Watt;
use serde::{Deserialize, Serialize};

/// Errors from baseline models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// A parameter was out of range.
    InvalidParameter(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// A platform's power broken into the Fig. 9 component legend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformPower {
    /// Platform display name.
    pub platform: String,
    /// `(component, power)` pairs.
    pub components: Vec<(String, Watt)>,
}

impl PlatformPower {
    /// Total power.
    #[must_use]
    pub fn total(&self) -> Watt {
        self.components.iter().map(|(_, w)| *w).sum()
    }

    /// Power of one named component (0 if absent).
    #[must_use]
    pub fn component(&self, name: &str) -> Watt {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .map_or(Watt::ZERO, |(_, w)| *w)
    }
}

/// The normalised comparison workload rate: OISA's elementwise MAC rate
/// at 7×7 kernels (3920 MACs per 55.8 ps cycle ≈ 7.0 × 10¹³ MAC/s). All
/// platforms are evaluated delivering this rate, which is how the paper's
/// "processing the 1st layer of ResNet18" comparison is normalised.
#[must_use]
pub fn reference_mac_rate() -> f64 {
    3920.0 / 55.8e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_rate_magnitude() {
        let r = reference_mac_rate();
        assert!((r - 7.025e13).abs() / r < 1e-3);
    }

    #[test]
    fn platform_power_total_and_lookup() {
        let p = PlatformPower {
            platform: "test".into(),
            components: vec![
                ("ADC".into(), Watt::new(1.0)),
                ("DAC".into(), Watt::new(0.5)),
            ],
        };
        assert!((p.total().get() - 1.5).abs() < 1e-12);
        assert!((p.component("ADC").get() - 1.0).abs() < 1e-12);
        assert_eq!(p.component("nope"), Watt::ZERO);
    }
}
