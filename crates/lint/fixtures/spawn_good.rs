// Fixture: the same spawn is fine once it lives under backend/ — and
// process spawns are never thread spawns.
use std::thread;

pub fn worker_thread() {
    thread::spawn(|| {});
}

pub fn launch_daemon() {
    let _ = std::process::Command::new("oisa-worker").spawn();
}
