//! Offline shim for the `rand` crate.
//!
//! The workspace builds without network access, so the real `rand` is
//! unavailable. This shim reproduces the small API surface the simulation
//! crates use — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` sampling methods (`gen`, `gen_range`, `gen_bool`) — on top of a
//! SplitMix64 generator. SplitMix64 passes the statistical checks the
//! test-suite applies (moment tests over 10⁴–2·10⁴ samples) and is
//! deterministic per seed, which is all the simulators require.
//!
//! The generator is *not* the real `StdRng` (ChaCha12): streams produced
//! under a given seed differ from upstream `rand`. Every in-tree consumer
//! only relies on run-to-run determinism, never on specific draws.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (mirrors the used subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for
    /// integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so consecutive small seeds diverge at once.
            let mut rng = Self { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_unit_interval_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(samples.iter().all(|&u| (0.0..1.0).contains(&u)));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&w));
            let u = rng.gen_range(0u8..=255);
            let _ = u;
        }
    }
}
