//! Robustness study: how gracefully does the optical first layer degrade
//! under fabrication faults (stuck rings) and sensor defects (dead/hot
//! pixels)?
//!
//! ```sh
//! cargo run --release --example robustness
//! ```

use oisa::device::noise::{NoiseConfig, NoiseSource};
use oisa::optics::arm::ArmConfig;
use oisa::optics::fault::FaultMap;
use oisa::optics::opc::{Opc, OpcConfig};
use oisa::optics::weights::WeightMapper;
use oisa::sensor::fault::DefectMap;
use oisa::sensor::imager::{Imager, ImagerConfig};
use oisa::sensor::vam::{Vam, VamConfig};
use oisa::sensor::Frame;
use oisa::units::Volt;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("OISA robustness study");
    println!("=====================\n");

    // -- Part 1: stuck rings in the OPC ----------------------------------
    let opc_cfg = OpcConfig {
        banks: 8,
        columns: 2,
        awc_units: 20,
        arm: ArmConfig::paper_default(),
    };
    let mapper = WeightMapper::paper(4)?;
    let kernel = [0.9, -0.6, 0.3, 0.0, 0.8, -0.9, 0.5, -0.2, 0.7];
    let activations = [1.0, 0.5, 0.0, 1.0, 1.0, 0.5, 0.0, 1.0, 0.5];
    let exact: f64 = kernel.iter().zip(&activations).map(|(w, a)| w * a).sum();

    println!("-- stuck microrings (kernel replicated on 8 banks x 5 arms) --");
    println!(
        "{:>12} {:>16} {:>16}",
        "ring faults", "mean |error|", "worst |error|"
    );
    for &fault_count in &[0usize, 4, 16, 64] {
        let mut opc = Opc::new(opc_cfg)?;
        for bank in 0..opc_cfg.banks {
            for arm in 0..oisa::optics::bank::ARMS_PER_BANK {
                opc.load_kernel(bank, arm, &kernel, &mapper)?;
            }
        }
        let mut rng = StdRng::seed_from_u64(fault_count as u64);
        let faults = FaultMap::random_ring_faults(fault_count, opc_cfg.banks, &mut rng);
        let mut noise = NoiseSource::seeded(7, NoiseConfig::noiseless());
        let mut errors = Vec::new();
        for bank in 0..opc_cfg.banks {
            for arm in 0..oisa::optics::bank::ARMS_PER_BANK {
                let out = faults.compute_arm(&opc, bank, arm, &activations, &mut noise)?;
                errors.push((out.value - exact).abs());
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        let worst = errors.iter().cloned().fold(0.0f64, f64::max);
        println!("{fault_count:>12} {mean:>16.4} {worst:>16.4}");
    }

    // -- Part 2: pixel defects --------------------------------------------
    println!("\n-- pixel defects (128x128 imager, ternary histogram drift) --");
    let imager = Imager::new(ImagerConfig::paper_default(128, 128))?;
    let vam = Vam::new(VamConfig::paper_default())?;
    let frame = Frame::new(
        128,
        128,
        (0..128 * 128)
            .map(|i| f64::from((i % 97) as u32) / 96.0)
            .collect(),
    )?;
    let clean = vam.encode_capture(&imager.expose(&frame)?)?;
    let clean_hist = clean.ternary.histogram();
    println!(
        "{:>12} {:>22} {:>14}",
        "defect rate", "ternary histogram", "flipped px"
    );
    println!("{:>12} {:>22?} {:>14}", "0.0%", clean_hist, 0);
    for &rate in &[0.001f64, 0.01, 0.05] {
        let mut rng = StdRng::seed_from_u64((rate * 1e4) as u64);
        let defects = DefectMap::random(128, 128, rate, &mut rng);
        let corrupted = defects.apply(&imager.expose(&frame)?, Volt::new(0.5))?;
        let encoded = vam.encode_capture(&corrupted)?;
        let flipped = encoded
            .ternary
            .as_slice()
            .iter()
            .zip(clean.ternary.as_slice())
            .filter(|(a, b)| a != b)
            .count();
        println!(
            "{:>11.1}% {:>22?} {:>14}",
            rate * 100.0,
            encoded.ternary.histogram(),
            flipped
        );
    }
    println!("\nTernary encoding absorbs most sub-threshold defects; only pixels whose");
    println!("defect crosses a 0.16/0.32 V boundary flip their activation level.");
    Ok(())
}
