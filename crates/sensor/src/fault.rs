//! Pixel-level fault injection: dead, hot and stuck pixels.
//!
//! Image sensors accumulate defective pixels over their lifetime; an
//! in-sensor accelerator ingests those defects straight into the first
//! CNN layer with no ISP to mask them. This module applies a defect map
//! to captures so experiments can measure the accuracy impact.

use oisa_units::Volt;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::imager::Capture;
use crate::{Result, SensorError};

/// A pixel defect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PixelFault {
    /// Reads zero regardless of illumination.
    Dead {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
    /// Reads full swing regardless of illumination.
    Hot {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
    /// Stuck at a fixed voltage.
    Stuck {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
        /// The stuck level.
        level: Volt,
    },
}

impl PixelFault {
    fn position(&self) -> (usize, usize) {
        match *self {
            Self::Dead { row, col } | Self::Hot { row, col } | Self::Stuck { row, col, .. } => {
                (row, col)
            }
        }
    }
}

/// A defect map applied to captures.
///
/// # Examples
///
/// ```
/// use oisa_sensor::fault::{DefectMap, PixelFault};
///
/// let mut defects = DefectMap::new();
/// defects.add(PixelFault::Dead { row: 3, col: 7 });
/// assert_eq!(defects.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DefectMap {
    faults: Vec<PixelFault>,
}

impl DefectMap {
    /// An empty (healthy) map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a defect (later defects at the same position win).
    pub fn add(&mut self, fault: PixelFault) {
        self.faults.push(fault);
    }

    /// Number of defects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the sensor is healthy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Draws a random defect map with the given per-pixel defect
    /// probability (half dead, half hot).
    pub fn random<R: Rng + ?Sized>(
        width: usize,
        height: usize,
        defect_rate: f64,
        rng: &mut R,
    ) -> Self {
        let mut map = Self::new();
        for row in 0..height {
            for col in 0..width {
                if rng.gen::<f64>() < defect_rate {
                    if rng.gen_bool(0.5) {
                        map.add(PixelFault::Dead { row, col });
                    } else {
                        map.add(PixelFault::Hot { row, col });
                    }
                }
            }
        }
        map
    }

    /// Applies the defects to a capture, returning the corrupted
    /// capture. `swing` is the pixel's full-scale voltage (hot pixels
    /// read it).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] when a defect lies
    /// outside the capture.
    pub fn apply(&self, capture: &Capture, swing: Volt) -> Result<Capture> {
        let mut out = capture.clone();
        for fault in &self.faults {
            let (row, col) = fault.position();
            if row >= capture.height || col >= capture.width {
                return Err(SensorError::InvalidParameter(format!(
                    "defect at ({row}, {col}) outside {}x{} capture",
                    capture.width, capture.height
                )));
            }
            let v = match *fault {
                PixelFault::Dead { .. } => Volt::ZERO,
                PixelFault::Hot { .. } => swing,
                PixelFault::Stuck { level, .. } => level,
            };
            out.voltages[row * capture.width + col] = v;
        }
        Ok(out)
    }
}

impl FromIterator<PixelFault> for DefectMap {
    fn from_iter<I: IntoIterator<Item = PixelFault>>(iter: I) -> Self {
        let mut map = Self::new();
        for f in iter {
            map.add(f);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::imager::{Imager, ImagerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn capture() -> Capture {
        let imager = Imager::new(ImagerConfig::paper_default(8, 8)).unwrap();
        imager.expose(&Frame::constant(8, 8, 0.5).unwrap()).unwrap()
    }

    #[test]
    fn dead_and_hot_pixels_override_readings() {
        let cap = capture();
        let swing = Volt::new(0.5);
        let defects: DefectMap = [
            PixelFault::Dead { row: 0, col: 0 },
            PixelFault::Hot { row: 1, col: 1 },
            PixelFault::Stuck {
                row: 2,
                col: 2,
                level: Volt::new(0.123),
            },
        ]
        .into_iter()
        .collect();
        let corrupted = defects.apply(&cap, swing).unwrap();
        assert_eq!(corrupted.voltage(0, 0), Volt::ZERO);
        assert_eq!(corrupted.voltage(1, 1), swing);
        assert_eq!(corrupted.voltage(2, 2), Volt::new(0.123));
        // Healthy pixels untouched.
        assert_eq!(corrupted.voltage(4, 4), cap.voltage(4, 4));
    }

    #[test]
    fn out_of_range_defect_rejected() {
        let cap = capture();
        let defects: DefectMap = [PixelFault::Dead { row: 8, col: 0 }].into_iter().collect();
        assert!(defects.apply(&cap, Volt::new(0.5)).is_err());
    }

    #[test]
    fn random_map_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let map = DefectMap::random(64, 64, 0.01, &mut rng);
        // 4096 pixels at 1%: expect ≈ 41 defects.
        assert!((20..80).contains(&map.len()), "got {}", map.len());
    }

    #[test]
    fn empty_map_is_identity() {
        let cap = capture();
        let map = DefectMap::new();
        assert!(map.is_empty());
        let out = map.apply(&cap, Volt::new(0.5)).unwrap();
        assert_eq!(out, cap);
    }
}
