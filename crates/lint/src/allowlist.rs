//! The `lint-allow.toml` allowlist: a TOML-subset parser (no
//! dependencies) plus the logic that subtracts allowlisted findings
//! from a run.
//!
//! Grammar — an array-of-tables, nothing else:
//!
//! ```toml
//! [[allow]]
//! rule = "panic-reachability"
//! path = "crates/core/src/serving.rs"
//! max = 21                 # or: line = 118
//! justification = "lock-poison expects; a poisoned lock is a crashed worker"
//! ```
//!
//! Every entry names a `rule`, a workspace-relative `path`, exactly one
//! of `line` (pin one finding to an exact line) or `max` (a budget: up
//! to N findings for this rule+path pair — counts can only go down),
//! and a non-empty `justification`. Anything else is a parse error —
//! the allowlist is load-bearing, so it fails closed.

use crate::rules::{Finding, ALL_RULES};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Pin to one exact line…
    pub line: Option<u32>,
    /// …or grant a per-(rule, path) budget.
    pub max: Option<u32>,
    /// Why this violation is acceptable. Mandatory.
    pub justification: String,
    /// 1-based line of the `[[allow]]` header in `lint-allow.toml`.
    pub src_line: u32,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

/// Outcome of subtracting an allowlist from a finding set.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by any entry — these fail the run.
    pub active: Vec<Finding>,
    /// Findings silenced by an entry.
    pub suppressed: Vec<Finding>,
    /// Entries that matched nothing (or budgets larger than the current
    /// count). Non-fatal: reported as warnings so budgets get ratcheted
    /// down.
    pub stale: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint-allow.toml` text. Errors are human-readable strings
    /// with 1-based line numbers.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    finish_entry(e, &mut entries)?;
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    line: None,
                    max: None,
                    justification: String::new(),
                    src_line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint-allow.toml:{lineno}: only `[[allow]]` tables are supported, got `{line}`"
                ));
            }
            let Some(eq) = line.find('=') else {
                return Err(format!(
                    "lint-allow.toml:{lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let key = line[..eq].trim();
            let value = line[eq + 1..].trim();
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "lint-allow.toml:{lineno}: `{key}` outside any `[[allow]]` table"
                ));
            };
            match key {
                "rule" => entry.rule = parse_string(value, lineno)?,
                "path" => entry.path = parse_string(value, lineno)?,
                "justification" => entry.justification = parse_string(value, lineno)?,
                "line" => entry.line = Some(parse_int(value, lineno)?),
                "max" => entry.max = Some(parse_int(value, lineno)?),
                other => {
                    return Err(format!(
                        "lint-allow.toml:{lineno}: unknown key `{other}` \
                         (expected rule/path/line/max/justification)"
                    ));
                }
            }
        }
        if let Some(e) = current.take() {
            finish_entry(e, &mut entries)?;
        }
        Ok(Self { entries })
    }

    /// Splits `findings` into active / suppressed, and reports stale
    /// entries.
    #[must_use]
    pub fn apply(&self, findings: Vec<Finding>) -> Applied {
        let mut out = Applied::default();
        // Track how many findings each entry consumed.
        let mut used = vec![0u32; self.entries.len()];
        for f in findings {
            let slot = self.entries.iter().enumerate().find(|(i, e)| {
                if e.rule != f.rule || e.path != f.path {
                    return false;
                }
                match (e.line, e.max) {
                    (Some(l), _) => l == f.line && used[*i] == 0,
                    (None, Some(m)) => used[*i] < m,
                    (None, None) => false, // unreachable post-validation
                }
            });
            match slot {
                Some((i, _)) => {
                    used[i] += 1;
                    out.suppressed.push(f);
                }
                None => out.active.push(f),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            let expected = match (e.line, e.max) {
                (Some(_), _) => 1,
                (None, Some(m)) => m,
                (None, None) => 0,
            };
            if used[i] < expected {
                out.stale.push(e.clone());
            }
        }
        out
    }
}

fn finish_entry(e: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    let at = |msg: &str| format!("lint-allow.toml:{}: {msg}", e.src_line);
    if e.rule.is_empty() {
        return Err(at("entry is missing `rule`"));
    }
    if !ALL_RULES.contains(&e.rule.as_str()) {
        return Err(at(&format!("unknown rule `{}`", e.rule)));
    }
    if e.path.is_empty() {
        return Err(at("entry is missing `path`"));
    }
    match (e.line, e.max) {
        (Some(_), Some(_)) => return Err(at("give `line` or `max`, not both")),
        (None, None) => return Err(at("entry needs `line = N` or `max = N`")),
        (None, Some(0)) => return Err(at("`max = 0` allows nothing — delete the entry")),
        _ => {}
    }
    if e.justification.trim().len() < 10 {
        return Err(at(
            "every allowlist entry needs a real `justification` (>= 10 chars)",
        ));
    }
    entries.push(e);
    Ok(())
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn parse_string(value: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        let inner = &v[1..v.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => {
                        return Err(format!(
                            "lint-allow.toml:{lineno}: unsupported escape `\\{}`",
                            other.map(String::from).unwrap_or_default()
                        ));
                    }
                }
            } else {
                out.push(c);
            }
        }
        Ok(out)
    } else {
        Err(format!(
            "lint-allow.toml:{lineno}: expected a double-quoted string, got `{v}`"
        ))
    }
}

fn parse_int(value: &str, lineno: u32) -> Result<u32, String> {
    value.trim().parse::<u32>().map_err(|_| {
        format!("lint-allow.toml:{lineno}: expected an unsigned integer, got `{value}`")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RULE_PANIC, RULE_WALLCLOCK};

    fn finding(rule: &'static str, path: &str, line: u32) -> Finding {
        Finding {
            col: 1,
            rule,
            path: path.to_string(),
            line,
            message: String::new(),
        }
    }

    const GOOD: &str = r#"
# serving needs its lock-poison policy
[[allow]]
rule = "panic-reachability"
path = "crates/core/src/serving.rs"
max = 2
justification = "lock-poison expects: a poisoned lock means a worker crashed"

[[allow]]
rule = "deterministic-no-wallclock"
path = "crates/core/src/wire.rs"
line = 7
justification = "doc example string, not executed code"
"#;

    #[test]
    fn parses_and_applies_budgets_and_pins() {
        let list = Allowlist::parse(GOOD).unwrap();
        assert_eq!(list.entries.len(), 2);
        let findings = vec![
            finding(RULE_PANIC, "crates/core/src/serving.rs", 10),
            finding(RULE_PANIC, "crates/core/src/serving.rs", 20),
            finding(RULE_PANIC, "crates/core/src/serving.rs", 30), // over budget
            finding(RULE_WALLCLOCK, "crates/core/src/wire.rs", 7),
            finding(RULE_WALLCLOCK, "crates/core/src/wire.rs", 8), // wrong line
        ];
        let applied = list.apply(findings);
        assert_eq!(applied.suppressed.len(), 3);
        assert_eq!(applied.active.len(), 2);
        assert!(applied.stale.is_empty());
    }

    #[test]
    fn unused_entries_are_stale_not_fatal() {
        let list = Allowlist::parse(GOOD).unwrap();
        let applied = list.apply(vec![finding(RULE_PANIC, "crates/core/src/serving.rs", 10)]);
        assert_eq!(applied.suppressed.len(), 1);
        // Budget of 2 only half-used + the pinned entry unmatched.
        assert_eq!(applied.stale.len(), 2);
    }

    #[test]
    fn rejects_entry_without_justification() {
        let bad = "[[allow]]\nrule = \"panic-reachability\"\npath = \"x.rs\"\nmax = 1\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn rejects_unknown_rule_and_bad_shapes() {
        let unknown =
            "[[allow]]\nrule = \"nope\"\npath = \"x.rs\"\nmax = 1\njustification = \"0123456789\"\n";
        assert!(Allowlist::parse(unknown)
            .unwrap_err()
            .contains("unknown rule"));
        let both = "[[allow]]\nrule = \"panic-reachability\"\npath = \"x.rs\"\nline = 1\nmax = 1\njustification = \"0123456789\"\n";
        assert!(Allowlist::parse(both).unwrap_err().contains("not both"));
        let neither = "[[allow]]\nrule = \"panic-reachability\"\npath = \"x.rs\"\njustification = \"0123456789\"\n";
        assert!(Allowlist::parse(neither).unwrap_err().contains("needs"));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let src = "[[allow]]\nrule = \"panic-reachability\"\npath = \"x.rs\"\nmax = 1\njustification = \"the # is part of the text\" # trailing\n";
        let list = Allowlist::parse(src).unwrap();
        assert_eq!(list.entries[0].justification, "the # is part of the text");
    }
}
