//! Bad: a serving entry point (`serve_worker_*` prefix) reaches an
//! `.unwrap()` through a helper. The panic is two call-graph edges
//! from the entry, so a per-file unwrap scan tied to the entry's body
//! would miss it — reachability must not.

pub fn serve_worker_fixture(job: Option<u8>) -> u8 {
    dispatch(job)
}

fn dispatch(job: Option<u8>) -> u8 {
    decode(job)
}

fn decode(job: Option<u8>) -> u8 {
    job.unwrap()
}
