//! Table I: the PIS/PNS/PIP comparison, with OISA's row computed from
//! the perf model next to the paper's published values.

use oisa_baselines::published::{oisa_row, table1_rows, OisaTableRow, PublishedDesign};
use oisa_core::perf::OisaPerfModel;

/// OISA's measured row from the bottom-up model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredOisaRow {
    /// Front-end power range over 1–4-bit weights, mW.
    pub power_mw: (f64, f64),
    /// Efficiency at 4-bit weights, TOp/s/W.
    pub efficiency: f64,
    /// Frame rate supported by the timing model, frames/s.
    pub frame_rate: f64,
    /// Throughput, TOp/s.
    pub throughput_tops: f64,
    /// Area, mm².
    pub area_mm2: f64,
}

/// The complete table: published rows, the paper's OISA row, and the
/// measured OISA row.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The ten cited designs.
    pub published: Vec<PublishedDesign>,
    /// OISA as the paper reports it.
    pub paper_oisa: OisaTableRow,
    /// OISA as this repository measures it.
    pub measured_oisa: MeasuredOisaRow,
}

/// Builds the table from the perf model.
///
/// # Errors
///
/// Propagates perf-model failures as a boxed error for the harness.
pub fn build_table() -> Result<Table1, Box<dyn std::error::Error>> {
    let perf = OisaPerfModel::paper_default()?;
    let p1 = perf.frontend_power(1)?.as_milli();
    let p4 = perf.frontend_power(4)?.as_milli();
    let measured = MeasuredOisaRow {
        power_mw: (p1, p4),
        efficiency: perf.efficiency_tops_per_watt(4)?,
        frame_rate: 1000.0,
        throughput_tops: perf.throughput_tops(),
        area_mm2: perf.area().get() * 1e6,
    };
    Ok(Table1 {
        published: table1_rows(),
        paper_oisa: oisa_row(),
        measured_oisa: measured,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_row_within_paper_bands() {
        let t = build_table().unwrap();
        let m = &t.measured_oisa;
        let p = &t.paper_oisa;
        assert!(
            (m.power_mw.0 - p.power_mw.0).abs() / p.power_mw.0 < 0.25,
            "power low end {} vs {}",
            m.power_mw.0,
            p.power_mw.0
        );
        assert!(
            (m.power_mw.1 - p.power_mw.1).abs() / p.power_mw.1 < 0.25,
            "power high end {} vs {}",
            m.power_mw.1,
            p.power_mw.1
        );
        assert!((m.efficiency - p.efficiency).abs() < 0.7);
        assert!((m.throughput_tops - 7.1).abs() < 0.2);
        assert!((m.area_mm2 - 1.92).abs() < 0.15);
    }

    #[test]
    fn table_has_all_rows() {
        let t = build_table().unwrap();
        assert_eq!(t.published.len(), 10);
    }

    #[test]
    fn oisa_pixel_smallest_among_entire_array_designs() {
        // Table I's structural claim: OISA achieves entire-array
        // computation with the smallest pixel (4.5 µm, no in-pixel
        // compute).
        let t = build_table().unwrap();
        for row in t
            .published
            .iter()
            .filter(|r| r.scheme == oisa_baselines::published::ComputeScheme::EntireArray)
        {
            assert!(
                t.paper_oisa.pixel_um < row.pixel_um,
                "{} pixel {} µm should exceed OISA's 4.5 µm",
                row.reference,
                row.pixel_um
            );
        }
    }
}
