//! The Optical Processing Core (OPC) of OISA.
//!
//! Physical compute fabric of the accelerator (paper §III-A and Fig. 6):
//!
//! * an [`arm::Arm`] holds **10 microrings** on a pair of waveguides (one
//!   for positive, one for negative weights) terminated by a balanced
//!   photodetector — one arm evaluates one ≤10-element signed dot product
//!   per optical symbol;
//! * a [`bank::Bank`] groups **5 arms** (50 MRs);
//! * the [`opc::Opc`] is the full hierarchy — **80 banks in 4 columns**
//!   (4000 MRs), fed by **40 AWC units** that program one 40-MR row per
//!   tuning iteration;
//! * the [`vom::Vom`] re-aggregates per-arm partial sums when a kernel is
//!   larger than one arm (5×5, 7×7, MLP layers).
//!
//! Weight values enter through the [`weights::WeightMapper`], which chains
//! the AWC ladder's (approximate) current levels into ring detunings —
//! this is where the paper's 1–4-bit weight quantisation, including the
//! 4-bit mismatch dip, physically happens.
//!
//! # Examples
//!
//! One 3×3 kernel stride on one arm (paper Fig. 5(c)):
//!
//! ```
//! use oisa_optics::arm::{Arm, ArmConfig};
//! use oisa_optics::weights::WeightMapper;
//! use oisa_device::noise::{NoiseConfig, NoiseSource};
//!
//! # fn main() -> Result<(), oisa_optics::OpticsError> {
//! let mapper = WeightMapper::ideal(3)?;
//! let mut arm = Arm::new(ArmConfig::paper_default())?;
//! let kernel = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
//! arm.load_weights(&kernel, &mapper)?;
//! let activations = [1.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.0, 1.0];
//! let mut noise = NoiseSource::seeded(1, NoiseConfig::noiseless());
//! let out = arm.mac(&activations, &mut noise)?;
//! let exact: f64 = kernel.iter().zip(&activations).map(|(w, a)| w * a).sum();
//! assert!((out.value - exact).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

// The only sanctioned unsafe in the tree lives here, and every unsafe
// operation inside an `unsafe fn` must be its own block with its own
// `// SAFETY:` comment (enforced mechanically by `oisa-lint`).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arm;
pub mod bank;
pub mod fault;
pub mod opc;
pub mod resolution;
pub mod thermal;
pub mod vom;
pub mod weights;

use std::fmt;

/// Errors from the optical fabric.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OpticsError {
    /// A configuration parameter was invalid.
    InvalidParameter(String),
    /// More elements were supplied than the structure can hold.
    CapacityExceeded {
        /// Maximum the structure supports.
        capacity: usize,
        /// What was requested.
        requested: usize,
    },
    /// An index referenced a non-existent bank/arm/ring.
    IndexOutOfRange(String),
    /// A device sub-model failed.
    Device(String),
}

impl fmt::Display for OpticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::CapacityExceeded {
                capacity,
                requested,
            } => write!(
                f,
                "capacity exceeded: requested {requested}, capacity {capacity}"
            ),
            Self::IndexOutOfRange(what) => write!(f, "index out of range: {what}"),
            Self::Device(what) => write!(f, "device model error: {what}"),
        }
    }
}

impl std::error::Error for OpticsError {}

impl From<oisa_device::DeviceError> for OpticsError {
    fn from(e: oisa_device::DeviceError) -> Self {
        Self::Device(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OpticsError>;
