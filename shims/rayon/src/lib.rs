//! Offline shim for `rayon`, backed by `std::thread::scope`.
//!
//! The workspace builds without network access, so the real `rayon` is
//! unavailable. This shim provides the subset the accelerator's hot path
//! uses — `par_chunks_mut(..).enumerate().for_each(..)`, an
//! order-preserving [`iter::parallel_map`], [`join`] and
//! [`current_num_threads`] — implemented with scoped OS threads and an
//! atomic work index instead of a work-stealing pool.
//!
//! Design constraints it shares with real rayon:
//!
//! * closures must be `Sync` and items `Send`,
//! * no ordering guarantees between tasks — callers must key any
//!   randomness by item index, never by execution order,
//! * degenerates to a plain sequential loop on single-CPU hosts (or when
//!   `RAYON_NUM_THREADS=1`), so single-core containers pay no thread
//!   overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread-count override set by [`set_num_threads`]
/// (0 = unset).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for all subsequent parallel
/// operations in this process.
///
/// Prefer this to mutating `RAYON_NUM_THREADS` at runtime: `setenv`
/// racing a concurrent `getenv` is undefined behavior on glibc, and
/// tests run multi-threaded. (Real rayon spells this
/// `ThreadPoolBuilder::num_threads(n).build_global()`.)
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// Number of worker threads parallel operations use: the
/// [`set_num_threads`] override if set, else `RAYON_NUM_THREADS`
/// (read once per process), else the host parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    static FROM_ENV: OnceLock<Option<usize>> = OnceLock::new();
    FROM_ENV
        .get_or_init(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|n| n.max(1))
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs two closures, in parallel when more than one thread is
/// available.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join worker panicked"))
    })
}

/// Order-preserving parallel primitives.
pub mod iter {
    use super::{AtomicUsize, Mutex, Ordering};

    /// Applies `f` to every item, returning results in input order.
    ///
    /// Work is distributed over [`super::current_num_threads`] scoped
    /// threads via an atomic index; with one thread (or one item) it is
    /// a plain sequential loop, so the sequential and parallel paths
    /// produce identical results whenever `f` is a pure function of the
    /// item and its index.
    pub fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Sync,
    {
        let threads = super::current_num_threads().min(items.len().max(1));
        if threads <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, it)| f(i, it))
                .collect();
        }
        let slots: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|it| Mutex::new(Some(it))).collect();
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, R)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= slots.len() {
                                break;
                            }
                            let item = slots[i]
                                .lock()
                                .expect("rayon shim: poisoned work slot")
                                .take()
                                .expect("rayon shim: work item taken twice");
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rayon shim: worker panicked"))
                .collect()
        });
        collected.sort_by_key(|(i, _)| *i);
        collected.into_iter().map(|(_, r)| r).collect()
    }
}

/// Slice extensions mirroring `rayon::slice`.
pub mod slice {
    /// Mutable parallel chunk iterator (eagerly materialised).
    pub struct ParChunksMut<'a, T: Send> {
        chunks: Vec<&'a mut [T]>,
    }

    /// Enumerated variant of [`ParChunksMut`].
    pub struct EnumeratedChunksMut<'a, T: Send> {
        chunks: Vec<&'a mut [T]>,
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        /// Pairs every chunk with its index.
        #[must_use]
        pub fn enumerate(self) -> EnumeratedChunksMut<'a, T> {
            EnumeratedChunksMut {
                chunks: self.chunks,
            }
        }

        /// Applies `f` to every chunk in parallel.
        pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
            super::iter::parallel_map(self.chunks, |_, c| f(c));
        }
    }

    impl<'a, T: Send> EnumeratedChunksMut<'a, T> {
        /// Applies `f` to every `(index, chunk)` pair in parallel.
        pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
            super::iter::parallel_map(self.chunks, |i, c| f((i, c)));
        }
    }

    /// `par_chunks_mut` provider for slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Splits the slice into chunks of `size` processable in
        /// parallel.
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
            ParChunksMut {
                chunks: self.chunks_mut(size).collect(),
            }
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = iter::parallel_map(items, |i, v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..257).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk() {
        let mut data = vec![0u32; 64];
        data.par_chunks_mut(8)
            .enumerate()
            .for_each(|(i, chunk)| chunk.fill(i as u32));
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 8) as u32);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
