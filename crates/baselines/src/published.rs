//! Published Table I rows: the PIS/PNS/PIP designs the paper compares
//! against, with their reported numbers (paper Table I, verbatim).

use serde::{Deserialize, Serialize};

/// Computation locality of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeScheme {
    /// One row of pixels computes at a time.
    RowWise,
    /// The whole array computes simultaneously.
    EntireArray,
}

impl ComputeScheme {
    /// Table-cell label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::RowWise => "row-wise",
            Self::EntireArray => "entire-array",
        }
    }
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedDesign {
    /// Citation tag as printed in the paper.
    pub reference: &'static str,
    /// Technology node in nm (display string, some are dual-node).
    pub technology: &'static str,
    /// Purpose / workload.
    pub purpose: &'static str,
    /// Computation scheme.
    pub scheme: ComputeScheme,
    /// Has in-sensor memory.
    pub memory: bool,
    /// Uses non-volatile memory.
    pub nvm: bool,
    /// Pixel pitch, µm (square).
    pub pixel_um: f64,
    /// Array dimensions.
    pub array: (u32, u32),
    /// Frame rate, frames/s (representative value).
    pub frame_rate: f64,
    /// Reported power range in mW.
    pub power_mw: (f64, f64),
    /// Reported efficiency range, TOp/s/W.
    pub efficiency: (f64, f64),
}

/// All ten comparison rows of Table I (excluding OISA itself, which the
/// perf model computes).
#[must_use]
pub fn table1_rows() -> Vec<PublishedDesign> {
    vec![
        PublishedDesign {
            reference: "[31]",
            technology: "180",
            purpose: "2D optic flow est.",
            scheme: ComputeScheme::RowWise,
            memory: true,
            nvm: false,
            pixel_um: 28.8,
            array: (64, 64),
            frame_rate: 30.0,
            power_mw: (0.029, 0.029),
            efficiency: (0.0041, 0.0041),
        },
        PublishedDesign {
            reference: "[8]",
            technology: "180",
            purpose: "edge/blur/sharpen/1st-layer CNN",
            scheme: ComputeScheme::RowWise,
            memory: false,
            nvm: false,
            pixel_um: 7.6,
            array: (128, 128),
            frame_rate: 480.0,
            power_mw: (77.0, 168.0), // sensing 77 + processing 91
            efficiency: (0.777, 0.777),
        },
        PublishedDesign {
            reference: "[9]",
            technology: "60/90",
            purpose: "spatio-temporal processing",
            scheme: ComputeScheme::RowWise,
            memory: true,
            nvm: false,
            pixel_um: 3.5,
            array: (1296, 976),
            frame_rate: 1000.0,
            power_mw: (230.0, 593.0), // sensing 230 + processing 363
            efficiency: (0.386, 0.386),
        },
        PublishedDesign {
            reference: "[2]",
            technology: "180",
            purpose: "1st-layer BNN (MACSEN)",
            scheme: ComputeScheme::EntireArray,
            memory: true,
            nvm: false,
            pixel_um: 110.0,
            array: (32, 32),
            frame_rate: 1000.0,
            power_mw: (0.0121, 0.0121),
            efficiency: (1.32, 1.32),
        },
        PublishedDesign {
            reference: "[32]",
            technology: "180",
            purpose: "edge/median filter",
            scheme: ComputeScheme::RowWise,
            memory: true,
            nvm: false,
            pixel_um: 32.6,
            array: (256, 256),
            frame_rate: 100_000.0,
            power_mw: (1230.0, 1230.0),
            efficiency: (0.535, 0.535),
        },
        PublishedDesign {
            reference: "[3]",
            technology: "65",
            purpose: "1st-layer BNN (PISA)",
            scheme: ComputeScheme::EntireArray,
            memory: true,
            nvm: true,
            pixel_um: 55.0,
            array: (128, 128),
            frame_rate: 1000.0,
            power_mw: (0.0088, 0.025), // processing / sensing
            efficiency: (1.745, 1.745),
        },
        PublishedDesign {
            reference: "[12]",
            technology: "180",
            purpose: "1st-layer BNN (Senputing)",
            scheme: ComputeScheme::EntireArray,
            memory: true,
            nvm: false,
            pixel_um: 35.0,
            array: (32, 32),
            frame_rate: 156.0,
            power_mw: (0.000_14, 0.000_53),
            efficiency: (9.4, 34.6),
        },
        PublishedDesign {
            reference: "[21]",
            technology: "65",
            purpose: "conv/ROI detection",
            scheme: ComputeScheme::RowWise,
            memory: false,
            nvm: false,
            pixel_um: 9.0,
            array: (160, 128),
            frame_rate: 1072.0,
            power_mw: (0.042, 0.206),
            efficiency: (0.15, 3.64),
        },
        PublishedDesign {
            reference: "[1]",
            technology: "180",
            purpose: "1st-layer CNN",
            scheme: ComputeScheme::EntireArray,
            memory: false,
            nvm: false,
            pixel_um: 10.0,
            array: (128, 128),
            frame_rate: 3840.0,
            power_mw: (0.45, 1.83),
            efficiency: (1.41, 3.37),
        },
        PublishedDesign {
            reference: "[13]",
            technology: "45",
            purpose: "1st-layer CNN (AppCiP)",
            scheme: ComputeScheme::EntireArray,
            memory: true,
            nvm: true,
            pixel_um: 38.0,
            array: (32, 32),
            frame_rate: 3000.0,
            power_mw: (0.000_96, 0.0028),
            efficiency: (1.37, 4.12),
        },
    ]
}

/// OISA's own Table I row constants (the values the perf model must
/// reproduce; kept here so the table harness can print paper-vs-measured
/// side by side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OisaTableRow {
    /// Technology node, nm.
    pub technology_nm: u32,
    /// Pixel pitch, µm.
    pub pixel_um: f64,
    /// Array side.
    pub array: u32,
    /// Frame rate, frames/s.
    pub frame_rate: f64,
    /// Power range, mW.
    pub power_mw: (f64, f64),
    /// Efficiency, TOp/s/W.
    pub efficiency: f64,
}

/// The paper's OISA row.
#[must_use]
pub fn oisa_row() -> OisaTableRow {
    OisaTableRow {
        technology_nm: 65,
        pixel_um: 4.5,
        array: 128,
        frame_rate: 1000.0,
        power_mw: (0.000_12, 0.000_34),
        efficiency: 6.68,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_comparison_rows() {
        assert_eq!(table1_rows().len(), 10);
    }

    #[test]
    fn rows_match_key_paper_values() {
        let rows = table1_rows();
        let macsen = rows.iter().find(|r| r.reference == "[2]").unwrap();
        assert_eq!(macsen.frame_rate, 1000.0);
        assert!((macsen.efficiency.0 - 1.32).abs() < 1e-9);
        let appcip = rows.iter().find(|r| r.reference == "[13]").unwrap();
        assert_eq!(appcip.technology, "45");
        assert!((appcip.efficiency.1 - 4.12).abs() < 1e-9);
    }

    #[test]
    fn oisa_row_constants() {
        let row = oisa_row();
        assert_eq!(row.array, 128);
        assert!((row.efficiency - 6.68).abs() < 1e-9);
        assert!((row.pixel_um - 4.5).abs() < 1e-9);
        assert!(row.power_mw.0 < row.power_mw.1);
    }

    #[test]
    fn oisa_efficiency_beats_every_fixed_entry() {
        // Among designs with a single reported efficiency, OISA leads
        // (Senputing's [12] range peaks higher but at 32×32/156 fps
        // scale; the paper's Table I note).
        let oisa = oisa_row().efficiency;
        for row in table1_rows() {
            if row.reference != "[12]" {
                assert!(
                    oisa > row.efficiency.0,
                    "{} should trail OISA's efficiency",
                    row.reference
                );
            }
        }
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(ComputeScheme::RowWise.label(), "row-wise");
        assert_eq!(ComputeScheme::EntireArray.label(), "entire-array");
    }
}
