//! DC operating-point analysis and source sweeps.
//!
//! The operating point solves the static network with capacitors open
//! (their companion conductance is zero at DC) using the same Newton
//! iteration as the transient engine. [`dc_sweep`] repeats the solve for
//! a list of values on one named source — the classic `.dc` analysis,
//! used here to characterise the AWC transfer curve and the pixel
//! source-follower without paying for a transient.

use oisa_units::Volt;

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::linalg::DenseMatrix;
use crate::waveform::Waveform;
use crate::{Result, SpiceError};

const GMIN: f64 = 1e-12;
const V_TOL: f64 = 1e-9;
const MAX_NEWTON: usize = 300;

/// Solution of one DC operating point: node voltages plus voltage-source
/// branch currents, indexed like the transient solution vector.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    node_names: Vec<String>,
    solution: Vec<f64>,
    node_count: usize,
}

impl OperatingPoint {
    /// Voltage of a named node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for an unknown name.
    pub fn voltage(&self, node: &str) -> Result<Volt> {
        let idx = self
            .node_names
            .iter()
            .position(|n| n == node)
            .ok_or_else(|| SpiceError::UnknownNode(node.to_owned()))?;
        Ok(Volt::new(self.solution[idx]))
    }

    /// Branch current of the `k`-th declared voltage source (MNA
    /// convention: positive into the + terminal).
    #[must_use]
    pub fn branch_current(&self, k: usize) -> Option<f64> {
        self.solution.get(self.node_count + k).copied()
    }
}

/// Solves the DC operating point with sources evaluated at `t = 0`.
///
/// # Errors
///
/// * [`SpiceError::SingularMatrix`] for ill-formed topologies.
/// * [`SpiceError::NonConvergent`] if Newton iteration stalls.
pub fn dc_operating_point(circuit: &Circuit) -> Result<OperatingPoint> {
    let n_nodes = circuit.node_count();
    let n = circuit.unknown_count();
    let mut solution = vec![0.0f64; n];
    let mut matrix = DenseMatrix::zeros(n);
    let mut rhs = vec![0.0f64; n];
    let mut converged = false;
    for _ in 0..MAX_NEWTON {
        matrix.clear();
        rhs.fill(0.0);
        stamp_dc(circuit, &solution[..n_nodes], &mut matrix, &mut rhs);
        let mut next = rhs.clone();
        matrix.solve_in_place(&mut next)?;
        let max_delta = solution[..n_nodes]
            .iter()
            .zip(&next[..n_nodes])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        solution.copy_from_slice(&next);
        if max_delta < V_TOL {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(SpiceError::NonConvergent { time: 0.0 });
    }
    Ok(OperatingPoint {
        node_names: circuit.node_names().to_vec(),
        solution,
        node_count: n_nodes,
    })
}

/// Sweeps the named source over `values`, returning one operating point
/// per value.
///
/// # Errors
///
/// Propagates [`Circuit::set_source`] and operating-point failures.
pub fn dc_sweep(circuit: &Circuit, source: &str, values: &[f64]) -> Result<Vec<OperatingPoint>> {
    let mut work = circuit.clone();
    values
        .iter()
        .map(|&v| {
            work.set_source(source, Waveform::dc(v))?;
            dc_operating_point(&work)
        })
        .collect()
}

fn stamp_dc(circuit: &Circuit, iterate: &[f64], matrix: &mut DenseMatrix, rhs: &mut [f64]) {
    let n_nodes = circuit.node_count();
    for i in 0..n_nodes {
        matrix.add(i, i, GMIN);
    }
    let volt = |node: NodeId| -> f64 {
        if node == Circuit::GND {
            0.0
        } else {
            iterate[node.0]
        }
    };
    for element in &circuit.elements {
        match element {
            Element::Resistor { a, b, conductance } => {
                stamp_g(matrix, *a, *b, *conductance);
            }
            // Capacitors are open at DC; a GMIN leak keeps their nodes
            // referenced.
            Element::Capacitor { a, b, .. } => {
                stamp_g(matrix, *a, *b, GMIN);
            }
            Element::VSource {
                pos,
                neg,
                wave,
                branch,
            } => {
                let row = n_nodes + branch;
                if *pos != Circuit::GND {
                    matrix.add(pos.0, row, 1.0);
                    matrix.add(row, pos.0, 1.0);
                }
                if *neg != Circuit::GND {
                    matrix.add(neg.0, row, -1.0);
                    matrix.add(row, neg.0, -1.0);
                }
                rhs[row] += wave.value_at(0.0);
            }
            Element::ISource { from, to, wave } => {
                let i = wave.value_at(0.0);
                if *to != Circuit::GND {
                    rhs[to.0] += i;
                }
                if *from != Circuit::GND {
                    rhs[from.0] -= i;
                }
            }
            Element::Switch {
                a,
                b,
                control,
                params,
            } => {
                let g = if volt(*control) > params.threshold {
                    1.0 / params.r_on
                } else {
                    1.0 / params.r_off
                };
                stamp_g(matrix, *a, *b, g);
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                params,
            } => {
                let op = params.evaluate(volt(*gate), volt(*drain), volt(*source));
                let i_eq = op.id
                    - op.did_dvg * volt(*gate)
                    - op.did_dvd * volt(*drain)
                    - op.did_dvs * volt(*source);
                for (node, sign) in [(*drain, 1.0), (*source, -1.0)] {
                    if node == Circuit::GND {
                        continue;
                    }
                    let row = node.0;
                    if *gate != Circuit::GND {
                        matrix.add(row, gate.0, sign * op.did_dvg);
                    }
                    if *drain != Circuit::GND {
                        matrix.add(row, drain.0, sign * op.did_dvd);
                    }
                    if *source != Circuit::GND {
                        matrix.add(row, source.0, sign * op.did_dvs);
                    }
                    rhs[row] -= sign * i_eq;
                }
            }
        }
    }
}

fn stamp_g(matrix: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
    if a != Circuit::GND {
        matrix.add(a.0, a.0, g);
    }
    if b != Circuit::GND {
        matrix.add(b.0, b.0, g);
    }
    if a != Circuit::GND && b != Circuit::GND {
        matrix.add(a.0, b.0, -g);
        matrix.add(b.0, a.0, -g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::MosParams;
    use oisa_units::{Farad, Ohm};

    #[test]
    fn divider_operating_point() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(3.0))
            .unwrap();
        ckt.resistor("R1", vin, mid, Ohm::from_kilo(2.0)).unwrap();
        ckt.resistor("R2", mid, Circuit::GND, Ohm::from_kilo(1.0))
            .unwrap();
        let op = dc_operating_point(&ckt).unwrap();
        assert!((op.voltage("mid").unwrap().get() - 1.0).abs() < 1e-6);
        // Source delivers 1 mA (reads negative by MNA convention).
        assert!((op.branch_current(0).unwrap() + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn capacitor_open_at_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", vin, out, Ohm::from_kilo(1.0)).unwrap();
        ckt.capacitor("C1", out, Circuit::GND, Farad::from_pico(1.0))
            .unwrap();
        let op = dc_operating_point(&ckt).unwrap();
        // No DC path to ground through the cap → out floats to vin.
        assert!((op.voltage("out").unwrap().get() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nmos_diode_connected_operating_point() {
        // Diode-connected NMOS below a resistor: V_gs settles just above
        // threshold.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("RB", vdd, d, Ohm::from_kilo(20.0)).unwrap();
        ckt.mosfet("M1", d, d, Circuit::GND, MosParams::nmos(4.0))
            .unwrap();
        let op = dc_operating_point(&ckt).unwrap();
        let v = op.voltage("d").unwrap().get();
        assert!(v > 0.4 && v < 0.8, "diode voltage {v}");
    }

    #[test]
    fn sweep_traces_transfer_curve() {
        // NMOS common-source amp: sweep the gate, watch the output fall.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("o");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.vsource("VG", gate, Circuit::GND, Waveform::dc(0.0))
            .unwrap();
        ckt.resistor("RL", vdd, out, Ohm::from_kilo(50.0)).unwrap();
        ckt.mosfet("M1", out, gate, Circuit::GND, MosParams::nmos(10.0))
            .unwrap();
        let points = dc_sweep(&ckt, "VG", &[0.0, 0.3, 0.5, 0.7, 1.0]).unwrap();
        let outs: Vec<f64> = points
            .iter()
            .map(|p| p.voltage("o").unwrap().get())
            .collect();
        assert!(outs[0] > 0.99, "cutoff: {outs:?}");
        for w in outs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "monotone falling VTC: {outs:?}");
        }
        assert!(outs[4] < 0.2, "strong inversion: {outs:?}");
    }

    #[test]
    fn set_source_validation() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", a, Circuit::GND, Ohm::new(100.0))
            .unwrap();
        assert!(ckt.set_source("V1", Waveform::dc(2.0)).is_ok());
        assert!(ckt.set_source("R1", Waveform::dc(2.0)).is_err());
        assert!(ckt.set_source("nope", Waveform::dc(2.0)).is_err());
    }

    #[test]
    fn operating_point_unknown_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", a, Circuit::GND, Ohm::new(100.0))
            .unwrap();
        let op = dc_operating_point(&ckt).unwrap();
        assert!(op.voltage("zzz").is_err());
        assert!(op.branch_current(5).is_none());
    }
}
