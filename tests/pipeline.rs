//! Cross-crate integration tests: the physical optical path, the
//! behavioural deployment path, and their agreement.

use oisa::core::deploy::{quantizer_for_bits, ternary_from_devices};
use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::device::awc::AwcModel;
use oisa::nn::conv::Conv2d;
use oisa::nn::layer::Layer;
use oisa::nn::quantize::QuantizedConv2d;
use oisa::nn::Tensor;
use oisa::sensor::Frame;

/// The physical optical convolution and the behavioural `QuantizedConv2d`
/// must agree: both quantise through the same AWC ladder and ternary
/// encoder.
#[test]
fn physical_and_behavioural_paths_agree() {
    let img = 12usize;
    // A structured frame exercising all three ternary bins.
    let pixels: Vec<f64> = (0..img * img)
        .map(|i| ((i % 10) as f64 / 10.0).clamp(0.0, 1.0))
        .collect();
    let frame = Frame::new(img, img, pixels).unwrap();

    let conv = Conv2d::with_seed(1, 3, 3, 1, 1, 77).unwrap();
    let kernels: Vec<Vec<f32>> = (0..3)
        .map(|oc| {
            (0..9)
                .map(|i| conv.weights().as_slice()[oc * 9 + i])
                .collect()
        })
        .collect();

    // Physical path (noiseless, mismatch ladder).
    let mut cfg = OisaConfig::small_test();
    cfg.imager.width = img;
    cfg.imager.height = img;
    cfg.weight_bits = 4;
    cfg.awc_model = AwcModel::paper_mismatch();
    let mut accel = OisaAccelerator::new(cfg).unwrap();
    let physical = accel.convolve_frame(&frame, &kernels, 3).unwrap();

    // Behavioural path with identical quantisers, no noise.
    let quantizer = quantizer_for_bits(4, AwcModel::paper_mismatch()).unwrap();
    let activation = ternary_from_devices().unwrap();
    let mut wrapper =
        QuantizedConv2d::new_per_channel(conv, &quantizer, activation, 0.0, 0).unwrap();
    let x = Tensor::from_vec(
        vec![1, 1, img, img],
        frame.as_slice().iter().map(|&v| v as f32).collect(),
    )
    .unwrap();
    let y = wrapper.forward(&x, false).unwrap();

    // Both paths scale per kernel/output-channel; outputs must agree on
    // the interior (wrapper output is padded, physical is valid-only).
    let mut worst = 0.0f32;
    for oy in 0..physical.out_h {
        for ox in 0..physical.out_w {
            for ch in 0..3 {
                let phys = physical.output[ch][oy * physical.out_w + ox];
                let behav = y.at4(0, ch, oy + 1, ox + 1);
                worst = worst.max((phys - behav).abs());
            }
        }
    }
    // The residual is the physical path's inter-channel crosstalk (a few
    // per cent of values up to ≈ ±4), which the behavioural wrapper does
    // not model.
    assert!(worst < 0.2, "physical vs behavioural max deviation {worst}");
}

/// The spice-simulated AWC staircase and the WeightMapper level table
/// must describe the same converter.
#[test]
fn spice_staircase_matches_weight_mapper_levels() {
    let steps = oisa_bench_reuse::awc_staircase();
    let mapper = oisa::optics::weights::WeightMapper::ideal(4).unwrap();
    let full = steps[15].1;
    for (code, sim_ua) in &steps[1..] {
        let expected = mapper.levels()[*code as usize] * full;
        let rel = (sim_ua - expected).abs() / expected.max(1.0);
        assert!(
            rel < 0.4,
            "code {code}: spice {sim_ua} µA vs mapper-derived {expected} µA"
        );
    }
}

/// Local reimplementation of the bench staircase driver (the bench crate
/// is not a dependency of the facade).
mod oisa_bench_reuse {
    use oisa::device::awc::{AwcLadder, AwcParams};
    use oisa::spice::{TransientAnalysis, Waveform};
    use oisa::units::{Ohm, Second};

    pub fn awc_staircase() -> Vec<(u16, f64)> {
        let ladder = AwcLadder::ideal(AwcParams::ideal(4)).unwrap();
        let step = 1e-9;
        let waves: Vec<Waveform> = (0..4)
            .map(|bit| {
                let period = step * f64::from(1u32 << (bit + 1));
                Waveform::pulse(0.0, 1.0, period / 2.0, 1e-11, 1e-11, period / 2.0, period)
            })
            .collect();
        let r = Ohm::new(5.0);
        let ckt = ladder.build_netlist(&waves, r).unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(16.0), Second::from_pico(20.0))
            .run(&ckt)
            .unwrap();
        (0..16u16)
            .map(|code| {
                let t = (f64::from(code) + 0.75) * step;
                (
                    code,
                    trace.voltage_at("ituning", t).unwrap() / r.get() * 1e6,
                )
            })
            .collect()
    }
}

/// End-to-end determinism across the full stack under a fixed seed.
#[test]
fn full_stack_deterministic() {
    let frame = Frame::constant(16, 16, 0.63).unwrap();
    let kernels = vec![vec![0.21f32; 9], vec![-0.4f32; 9]];
    let run = || {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = oisa::device::noise::NoiseConfig::paper_default();
        cfg.seed = 1234;
        let mut accel = OisaAccelerator::new(cfg).unwrap();
        accel.convolve_frame(&frame, &kernels, 3).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.output, b.output);
    assert_eq!(a.energy, b.energy);
}

/// The ternary path through sensor hardware matches the NN-side encoder:
/// same frame, same codes.
#[test]
fn sensor_ternary_matches_nn_ternary() {
    use oisa::sensor::imager::{Imager, ImagerConfig};
    use oisa::sensor::vam::{Vam, VamConfig};

    let img = 8usize;
    let pixels: Vec<f64> = (0..img * img)
        .map(|i| (i as f64) / (img * img) as f64)
        .collect();
    let frame = Frame::new(img, img, pixels.clone()).unwrap();
    let imager = Imager::new(ImagerConfig::paper_default(img, img)).unwrap();
    let vam = Vam::new(VamConfig::paper_default()).unwrap();
    let encoded = vam.encode_capture(&imager.expose(&frame).unwrap()).unwrap();

    let activation = ternary_from_devices().unwrap();
    for (i, &lux) in pixels.iter().enumerate() {
        let nn_value = activation.encode(lux as f32);
        let hw_value = encoded.optical[i] as f32;
        assert!(
            (nn_value - hw_value).abs() < 0.01,
            "pixel {i} (lux {lux}): nn {nn_value} vs hw {hw_value}"
        );
    }
}

/// Imager + VAM energy for one frame stays in the Table I power budget
/// when amortised at 1000 fps.
#[test]
fn frame_encoding_energy_within_frontend_budget() {
    use oisa::sensor::imager::{Imager, ImagerConfig};
    use oisa::sensor::vam::{Vam, VamConfig};

    let imager = Imager::new(ImagerConfig::paper_default(128, 128)).unwrap();
    let vam = Vam::new(VamConfig::paper_default()).unwrap();
    let frame = Frame::constant(128, 128, 0.5).unwrap();
    let capture = imager.expose(&frame).unwrap();
    let encoded = vam.encode_capture(&capture).unwrap();
    // Sensing + SA decisions at 1000 fps (the Table I accounting; VCSEL
    // symbol energy belongs to the compute-phase budget).
    let frontend = (capture.energy + encoded.sa_energy).get() * 1000.0;
    assert!(
        frontend > 0.05e-6 && frontend < 0.5e-6,
        "front-end power {frontend} W outside the Table I order of magnitude"
    );
}
