//! Workspace model: module + approximate call graph.
//!
//! [`Workspace::build`] parses every [`SourceFile`] into an item tree
//! ([`crate::parser`]), flattens all functions with their enclosing
//! context (crate, module path, impl self type), and resolves call
//! sites to workspace functions with receiver-type heuristics:
//!
//! * **free calls** `name(…)` — same-file functions first, then
//!   same-crate free functions, then any workspace free function;
//! * **path calls** `a::b::name(…)` — the last qualifier is matched
//!   against impl self types, module tails and crate names
//!   (`wire::encode` resolves into `mod wire`, `Engine::new` into
//!   `impl Engine`, `oisa_device::step` into that crate);
//! * **method calls** `.name(…)` — every impl method with that name,
//!   restricted to same-crate candidates when any exist.
//!
//! The result **over-approximates**: a method name shared by two types
//! yields edges to both. Flow rules accept the extra edges (they only
//! widen reachability) and document what the approximation can miss.

use std::collections::HashMap;

use crate::parser::{self, CallKind, CallSite, Item, ItemKind};
use crate::rules::SourceFile;

/// One workspace function with its resolution context.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Index into the file list passed to [`Workspace::build`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self type, when the fn is a method.
    pub self_type: Option<String>,
    /// `::`-joined module path inside the crate (empty at crate root).
    pub module: String,
    /// Owning crate name (`oisa_core`, `oisa`, …).
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Raw token range of the body braces, when the fn has a body.
    pub body: Option<(usize, usize)>,
    /// Call sites extracted from the body.
    pub sites: Vec<CallSite>,
    /// True when the fn sits inside a `#[cfg(test)]` / `#[test]`
    /// region.
    pub is_test: bool,
}

impl FnInfo {
    /// `Type::name` for methods, bare `name` for free functions.
    #[must_use]
    pub fn qual(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed workspace: items per file, flattened functions, and the
/// resolved call-graph adjacency.
pub struct Workspace<'a> {
    /// The files, in the order given to [`Workspace::build`].
    pub files: &'a [SourceFile],
    /// Parsed item tree per file (parallel to `files`).
    pub items: Vec<Vec<Item>>,
    /// Every function found, flattened.
    pub fns: Vec<FnInfo>,
    /// `calls[f]` = indices into `fns` that function `f` may call.
    pub calls: Vec<Vec<usize>>,
    /// `site_calls[f][s]` = callees resolved for `fns[f].sites[s]`
    /// (parallel to each fn's site list; `calls` is the flattened,
    /// deduplicated union).
    pub site_calls: Vec<Vec<Vec<usize>>>,
}

impl<'a> Workspace<'a> {
    /// Parses all files and resolves the call graph.
    #[must_use]
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut items = Vec::with_capacity(files.len());
        let mut fns: Vec<FnInfo> = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let tree = parser::parse_items(&file.tokens);
            let crate_name = crate_of(&file.path);
            let module = module_of(&file.path);
            collect_fns(file, fi, &crate_name, &module, &tree, None, &mut fns);
            items.push(tree);
        }
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let site_calls: Vec<Vec<Vec<usize>>> = fns
            .iter()
            .map(|f| {
                f.sites
                    .iter()
                    .map(|s| resolve(f, s, &fns, &by_name))
                    .collect()
            })
            .collect();
        let calls = site_calls
            .iter()
            .map(|per_site| {
                let mut out: Vec<usize> = per_site.iter().flatten().copied().collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        Self {
            files,
            items,
            fns,
            calls,
            site_calls,
        }
    }

    /// Indices of functions whose qualified name ends with `suffix`
    /// (`Engine::submit` matches suffix `Engine::submit`; a bare
    /// suffix `run_job` matches any fn of that name).
    #[must_use]
    pub fn fns_matching(&self, pred: impl Fn(&FnInfo) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i]))
            .collect()
    }
}

/// Walks an item tree collecting functions; `mods` tracks inline-mod
/// nesting appended to the file's module path.
fn collect_fns(
    file: &SourceFile,
    fi: usize,
    crate_name: &str,
    module: &str,
    tree: &[Item],
    self_type: Option<&str>,
    out: &mut Vec<FnInfo>,
) {
    for item in tree {
        match item.kind {
            ItemKind::Fn => {
                let sites = item
                    .body
                    .map(|(b0, b1)| parser::extract_calls(&file.tokens, b0, b1))
                    .unwrap_or_default();
                out.push(FnInfo {
                    file: fi,
                    name: item.name.clone(),
                    self_type: self_type.map(str::to_string),
                    module: module.to_string(),
                    crate_name: crate_name.to_string(),
                    line: item.line,
                    col: item.col,
                    body: item.body,
                    sites,
                    is_test: file.test_mask.get(item.start).copied().unwrap_or(false),
                });
            }
            ItemKind::Impl => collect_fns(
                file,
                fi,
                crate_name,
                module,
                &item.children,
                item.self_type.as_deref(),
                out,
            ),
            ItemKind::Mod => {
                let sub = if module.is_empty() {
                    item.name.clone()
                } else {
                    format!("{module}::{}", item.name)
                };
                collect_fns(file, fi, crate_name, &sub, &item.children, None, out);
            }
            _ => {}
        }
    }
}

/// Crate name from a workspace-relative path: `crates/<d>/src/…` →
/// `oisa_<d>`, the facade `src/…` → `oisa`, `examples/…` →
/// `examples`.
#[must_use]
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some(dir) = rest.split('/').next() {
            return format!("oisa_{dir}");
        }
    }
    if path.starts_with("src/") {
        return "oisa".to_string();
    }
    "examples".to_string()
}

/// In-crate module path from a file path: `…/src/backend/mod.rs` →
/// `backend`, `…/src/backend/tcp.rs` → `backend::tcp`, `…/src/lib.rs`
/// → empty.
#[must_use]
pub fn module_of(path: &str) -> String {
    let rel = path
        .split_once("/src/")
        .map_or(path, |(_, r)| r)
        .strip_prefix("src/")
        .unwrap_or_else(|| path.split_once("/src/").map_or(path, |(_, r)| r));
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut segs: Vec<&str> = rel.split('/').collect();
    if matches!(segs.last().copied(), Some("lib" | "main" | "mod")) {
        segs.pop();
    }
    segs.join("::")
}

/// Resolves one call site to candidate workspace functions.
fn resolve(
    caller: &FnInfo,
    site: &CallSite,
    fns: &[FnInfo],
    by_name: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let name = site.name();
    let Some(cands) = by_name.get(name) else {
        return Vec::new();
    };
    match site.kind {
        CallKind::Macro => Vec::new(),
        CallKind::Method => {
            let methods: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| fns[i].self_type.is_some())
                .collect();
            let same_crate: Vec<usize> = methods
                .iter()
                .copied()
                .filter(|&i| fns[i].crate_name == caller.crate_name)
                .collect();
            if same_crate.is_empty() {
                methods
            } else {
                same_crate
            }
        }
        CallKind::Free => {
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| fns[i].file == caller.file && fns[i].self_type.is_none())
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| fns[i].crate_name == caller.crate_name && fns[i].self_type.is_none())
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            cands
                .iter()
                .copied()
                .filter(|&i| fns[i].self_type.is_none())
                .collect()
        }
        CallKind::Path => {
            let qual = match site.path.len() {
                0 | 1 => return Vec::new(),
                n => site.path[n - 2].as_str(),
            };
            match qual {
                "self" | "crate" | "super" => cands
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].crate_name == caller.crate_name)
                    .collect(),
                "Self" => cands
                    .iter()
                    .copied()
                    .filter(|&i| fns[i].self_type.is_some() && fns[i].self_type == caller.self_type)
                    .collect(),
                q => cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        let f = &fns[i];
                        f.self_type.as_deref() == Some(q)
                            || f.module.rsplit("::").next() == Some(q)
                            || f.crate_name == q
                            || f.crate_name == format!("oisa_{q}")
                    })
                    .collect(),
            }
        }
    }
}

/// Finds one cycle in a directed graph given its adjacency lists,
/// returned as a node sequence whose first node equals its last;
/// `None` when acyclic. Iterative DFS — safe on deep graphs.
#[must_use]
pub fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = adj.len();
    let mut color = vec![WHITE; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        if color[root] != WHITE {
            continue;
        }
        // Stack of (node, next-edge-index).
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = GRAY;
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                match color.get(v).copied() {
                    Some(WHITE) => {
                        color[v] = GRAY;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    Some(GRAY) => {
                        // Back edge u → v: unwind parents from u to v.
                        let mut cycle = vec![v];
                        let mut w = u;
                        while w != v && w != usize::MAX {
                            cycle.push(w);
                            w = parent[w];
                        }
                        let mid = cycle.len();
                        cycle.push(v);
                        cycle[1..mid].reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// BFS over `adj` from `starts`; returns per-node `Some(parent)` when
/// reachable (start nodes parent themselves). `skip` prunes nodes
/// (both as targets and as expansion frontier).
#[must_use]
pub fn bfs_parents(
    adj: &[Vec<usize>],
    starts: &[usize],
    skip: impl Fn(usize) -> bool,
) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &s in starts {
        if s < adj.len() && !skip(s) && parent[s].is_none() {
            parent[s] = Some(s);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if v < adj.len() && parent[v].is_none() && !skip(v) {
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws_files(specs: &[(&str, &str)]) -> Vec<SourceFile> {
        specs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect()
    }

    fn fn_idx(ws: &Workspace<'_>, qual: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn crate_and_module_mapping() {
        assert_eq!(crate_of("crates/core/src/backend/mod.rs"), "oisa_core");
        assert_eq!(crate_of("src/lib.rs"), "oisa");
        assert_eq!(crate_of("examples/quickstart.rs"), "examples");
        assert_eq!(module_of("crates/core/src/backend/mod.rs"), "backend");
        assert_eq!(module_of("crates/core/src/backend/tcp.rs"), "backend::tcp");
        assert_eq!(module_of("crates/core/src/lib.rs"), "");
        assert_eq!(module_of("src/lib.rs"), "");
    }

    #[test]
    fn free_calls_prefer_same_file_then_same_crate() {
        let files = ws_files(&[
            (
                "crates/core/src/a.rs",
                "pub fn caller() { helper(); }\nfn helper() {}",
            ),
            ("crates/core/src/b.rs", "pub fn helper() {}"),
            ("crates/nn/src/lib.rs", "pub fn helper() {}"),
        ]);
        let ws = Workspace::build(&files);
        let caller = fn_idx(&ws, "caller");
        let local = ws
            .fns
            .iter()
            .position(|f| f.file == 0 && f.name == "helper");
        assert_eq!(ws.calls[caller], vec![local.unwrap()]);
    }

    #[test]
    fn path_calls_resolve_across_crates_by_crate_name() {
        let files = ws_files(&[
            (
                "crates/core/src/a.rs",
                "pub fn go() { oisa_device::step(); device::step(); }",
            ),
            ("crates/device/src/lib.rs", "pub fn step() {}"),
        ]);
        let ws = Workspace::build(&files);
        let go = fn_idx(&ws, "go");
        let step = fn_idx(&ws, "step");
        assert_eq!(ws.calls[go], vec![step]);
    }

    #[test]
    fn path_calls_resolve_by_module_and_self_type() {
        let files = ws_files(&[
            (
                "crates/core/src/lib.rs",
                "pub fn go() { wire::encode(); Engine::new(); }",
            ),
            ("crates/core/src/wire.rs", "pub fn encode() {}"),
            (
                "crates/core/src/serving.rs",
                "impl Engine { pub fn new() {} }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let go = fn_idx(&ws, "go");
        let encode = fn_idx(&ws, "encode");
        let new = fn_idx(&ws, "Engine::new");
        let mut want = vec![encode, new];
        want.sort_unstable();
        assert_eq!(ws.calls[go], want);
    }

    #[test]
    fn method_calls_prefer_same_crate_impls() {
        let files = ws_files(&[
            (
                "crates/core/src/a.rs",
                "pub fn go(e: Engine) { e.submit(); }",
            ),
            (
                "crates/core/src/b.rs",
                "impl Engine { pub fn submit(&self) {} }",
            ),
            (
                "crates/nn/src/lib.rs",
                "impl Other { pub fn submit(&self) {} }",
            ),
        ]);
        let ws = Workspace::build(&files);
        let go = fn_idx(&ws, "go");
        let same = fn_idx(&ws, "Engine::submit");
        assert_eq!(ws.calls[go], vec![same]);
    }

    #[test]
    fn test_fns_are_marked() {
        let files = ws_files(&[(
            "crates/core/src/a.rs",
            "pub fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}",
        )]);
        let ws = Workspace::build(&files);
        assert!(!ws.fns[fn_idx(&ws, "lib_fn")].is_test);
        assert!(ws.fns[fn_idx(&ws, "t")].is_test);
    }

    #[test]
    fn find_cycle_detects_and_reports_a_loop() {
        // 0 → 1 → 2 → 1 (cycle 1,2), 3 isolated.
        let adj = vec![vec![1], vec![2], vec![1], vec![]];
        let cycle = find_cycle(&adj).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() >= 3);
        assert!(cycle.contains(&1) && cycle.contains(&2));
        let dag = vec![vec![1, 2], vec![2], vec![], vec![0]];
        assert!(find_cycle(&dag).is_none());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let adj = vec![vec![0]];
        let cycle = find_cycle(&adj).expect("self loop");
        assert_eq!(cycle, vec![0, 0]);
    }

    #[test]
    fn bfs_parents_reaches_and_skips() {
        let adj = vec![vec![1], vec![2], vec![], vec![2]];
        let p = bfs_parents(&adj, &[0], |_| false);
        assert_eq!(p[0], Some(0));
        assert_eq!(p[1], Some(0));
        assert_eq!(p[2], Some(1));
        assert_eq!(p[3], None);
        let p = bfs_parents(&adj, &[0], |n| n == 1);
        assert_eq!(p[2], None, "skip prunes the path through 1");
    }
}
