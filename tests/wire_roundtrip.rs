//! Property tests of the wire schema: encode → decode is lossless
//! (bit-exact, including every float field of a `ConvolutionReport`),
//! and malformed inputs — wrong schema version, truncated payloads,
//! truncated length prefixes — fail with typed decode errors, never
//! panics.

use oisa::core::accelerator::EnergyReport;
use oisa::core::controller::Timeline;
use oisa::core::program::{ActivationKind, LayerProgram, QuantizeKind, Stage};
use oisa::core::wire::{
    self, FabricEntry, Handshake, InferenceJob, JobShard, ProgramJob, ProgramShard, RefusalCode,
    ShardRefusal, ShardReport, WireError, WireMessage, LEGACY_SCHEMA_VERSION, SCHEMA_VERSION,
};
use oisa::core::{ConvolutionReport, MappingPlan};
use oisa::sensor::Frame;
use oisa::units::{Joule, Second};
use proptest::prelude::*;

/// Builds a frame whose pixels are derived from sampled unit floats.
fn frame_from(width: usize, height: usize, samples: &[f64]) -> Frame {
    let data: Vec<f64> = (0..width * height)
        .map(|i| samples[i % samples.len()].clamp(0.0, 1.0))
        .collect();
    Frame::new(width, height, data).unwrap()
}

fn kernels_from(count: usize, k: usize, weights: &[f32]) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| weights[(i * k * k + j) % weights.len()])
                .collect()
        })
        .collect()
}

/// A synthetic report exercising every field with sampled values.
fn report_from(out_h: usize, out_w: usize, maps: usize, floats: &[f64]) -> ConvolutionReport {
    let f = |i: usize| floats[i % floats.len()];
    ConvolutionReport {
        output: (0..maps)
            .map(|m| (0..out_h * out_w).map(|i| f(m * 31 + i) as f32).collect())
            .collect(),
        out_h,
        out_w,
        plan: MappingPlan {
            kernel_size_class: 3,
            slots_per_pass: 20,
            passes: maps.div_ceil(20).max(1),
            planes_last_pass: maps.clamp(1, 20),
            parallel_positions: 1 + out_w % 7,
            cycles_per_pass: out_h * out_w,
            rings_per_pass: 9 * maps.clamp(1, 20),
            tuning_iterations_per_pass: 1 + maps % 5,
            macs_per_cycle: 9 * (1 + out_w % 7),
        },
        timeline: Timeline {
            capture: Second::new(f(0).abs()),
            mapping: Second::new(f(1).abs()),
            compute: Second::new(f(2).abs()),
            transmit: Second::new(f(3).abs()),
            control: Second::new(f(4).abs()),
        },
        energy: EnergyReport {
            sensing: Joule::new(f(5).abs()),
            encoding: Joule::new(f(6).abs()),
            tuning: Joule::new(f(7).abs()),
            compute: Joule::new(f(8).abs()),
            aggregation: Joule::new(f(9).abs()),
            memory: Joule::new(f(10).abs()),
        },
    }
}

proptest! {
    /// `InferenceJob` encode → decode is lossless for arbitrary
    /// shapes, kernel weights and pixel values.
    #[test]
    fn inference_job_roundtrip_is_lossless(
        job_id in 0u64..u64::MAX,
        // width 1–11 × height 1–11, packed into one sample so the shim
        // reporter's tuple stays within `Debug`'s 12-element cap.
        dims in 0usize..121,
        nframes in 1usize..5,
        nkernels in 1usize..6,
        pixels in prop::collection::vec(0.0f64..=1.0, 16),
        weights in prop::collection::vec(-4.0f32..4.0, 18),
    ) {
        let (width, height) = (dims % 11 + 1, dims / 11 + 1);
        let job = InferenceJob {
            job_id,
            k: 3,
            kernels: kernels_from(nkernels, 3, &weights),
            frames: (0..nframes)
                .map(|i| frame_from(width, height, &pixels[i % 8..]))
                .collect(),
        };
        let bytes = wire::encode(&WireMessage::Job(job.clone()));
        let decoded = wire::decode(&bytes);
        prop_assert_eq!(decoded, Ok(WireMessage::Job(job)));
    }

    /// `ShardReport` (with full `ConvolutionReport`s inside) and
    /// `JobShard` round-trip bit-exactly.
    #[test]
    fn shard_messages_roundtrip_is_lossless(
        job_id in 0u64..u64::MAX,
        // out_h 1–8 × out_w 1–8 × maps 1–3 × shard_index 0–63, packed
        // (see `inference_job_roundtrip_is_lossless`).
        shape in 0usize..(8 * 8 * 3 * 64),
        floats in prop::collection::vec(-1.0e-3f64..1.0e-3, 24),
        weights in prop::collection::vec(-2.0f32..2.0, 27),
        pixels in prop::collection::vec(0.0f64..=1.0, 16),
        warm in proptest::bool::ANY,
    ) {
        let out_h = shape % 8 + 1;
        let out_w = (shape / 8) % 8 + 1;
        let maps = (shape / 64) % 3 + 1;
        let shard_index = (shape / 192) as u32;
        let first_frame = job_id % 1_000_000;
        let report = ShardReport {
            job_id,
            shard_index,
            first_frame,
            reports: (0..2).map(|i| report_from(out_h, out_w, maps, &floats[i..])).collect(),
        };
        let bytes = wire::encode(&WireMessage::Report(report.clone()));
        prop_assert_eq!(wire::decode(&bytes), Ok(WireMessage::Report(report)));

        let shard = JobShard {
            job_id,
            shard_index,
            shard_count: shard_index + 1,
            first_frame,
            first_epoch: first_frame.wrapping_mul(3),
            config_fingerprint: job_id ^ 0xABCD,
            entry: if warm {
                FabricEntry::Warm { k: 5, kernels: kernels_from(2, 5, &weights) }
            } else {
                FabricEntry::Cold
            },
            k: 3,
            kernels: kernels_from(maps, 3, &weights),
            frames: vec![frame_from(4, 4, &pixels)],
        };
        let bytes = wire::encode(&WireMessage::Shard(shard.clone()));
        prop_assert_eq!(wire::decode(&bytes), Ok(WireMessage::Shard(shard)));
    }

    /// The v4 layer-program messages (`ProgramJob`, `ProgramShard`)
    /// round-trip bit-exactly, covering every stage kind the schema
    /// can carry (conv, both quantisers, dense, activation).
    #[test]
    fn program_messages_roundtrip_is_lossless(
        job_id in 0u64..u64::MAX,
        // shard_index 0–63 × bits 1–8 × nframes 1–3, packed (see
        // `inference_job_roundtrip_is_lossless`).
        packed in 0usize..(64 * 8 * 3),
        weights in prop::collection::vec(-2.0f32..2.0, 27),
        matrix in prop::collection::vec(-1.0f32..1.0, 12),
        pixels in prop::collection::vec(0.0f64..=1.0, 16),
    ) {
        let shard_index = (packed % 64) as u32;
        let bits = ((packed / 64) % 8 + 1) as u8;
        let nframes = packed / 512 + 1;
        let program = LayerProgram::new(vec![
            Stage::Conv { k: 3, kernels: kernels_from(2, 3, &weights) },
            Stage::Quantize(QuantizeKind::Levels { bits }),
            Stage::Activation(ActivationKind::Relu),
            Stage::Quantize(QuantizeKind::Ternary),
            Stage::Dense { rows: 3, matrix: matrix.clone() },
            Stage::Activation(ActivationKind::Relu),
        ]).unwrap();
        let frames: Vec<Frame> = (0..nframes)
            .map(|i| frame_from(5, 5, &pixels[i % 8..]))
            .collect();
        let job = ProgramJob { job_id, program: program.clone(), frames: frames.clone() };
        let bytes = wire::encode(&WireMessage::ProgramJob(job.clone()));
        prop_assert_eq!(wire::decode(&bytes), Ok(WireMessage::ProgramJob(job)));

        let shard = ProgramShard {
            job_id,
            shard_index,
            shard_count: shard_index + 1,
            first_frame: job_id % 1_000_000,
            first_epoch: job_id % 7_000,
            config_fingerprint: job_id ^ 0x5A5A,
            program,
            frames,
        };
        let bytes = wire::encode_program_shard(&shard);
        prop_assert_eq!(wire::decode(&bytes), Ok(WireMessage::ProgramShard(shard)));
    }

    /// The v2 control messages — handshake pings/pongs and coded
    /// refusals — round-trip losslessly for arbitrary field values,
    /// including the fingerprint pair a mismatch refusal carries.
    #[test]
    fn control_messages_roundtrip_is_lossless(
        nonce in 0u64..u64::MAX,
        fingerprint in 0u64..u64::MAX,
        worker_fp in 0u64..u64::MAX,
        job_id in 0u64..u64::MAX,
        // shard_index 0–999 × mismatch × reason length 0–63, packed so
        // the shim reporter's tuple stays within `Debug`'s 12-element
        // cap (see `inference_job_roundtrip_is_lossless`).
        packed in 0usize..(1000 * 2 * 64),
    ) {
        let shard_index = (packed % 1000) as u32;
        let mismatch = (packed / 1000) % 2 == 1;
        let reason_salt = packed / 2000;
        // The shim proptest has no string strategies; derive an ASCII
        // reason (length 0–63, varied content) from the sampled salt.
        let reason: String = (0..reason_salt)
            .map(|i| char::from(b' ' + ((i * 7 + reason_salt) % 95) as u8))
            .collect();
        let hs = Handshake { nonce, config_fingerprint: fingerprint };
        for message in [WireMessage::Ping(hs), WireMessage::Pong(hs)] {
            let bytes = wire::encode(&message);
            prop_assert_eq!(wire::decode(&bytes), Ok(message));
        }
        let refusal = ShardRefusal {
            job_id,
            shard_index,
            code: if mismatch {
                RefusalCode::FingerprintMismatch {
                    coordinator: fingerprint,
                    worker: worker_fp,
                }
            } else {
                RefusalCode::Other
            },
            reason,
        };
        let bytes = wire::encode(&WireMessage::Refusal(refusal.clone()));
        prop_assert_eq!(wire::decode(&bytes), Ok(WireMessage::Refusal(refusal)));
    }

    /// Any single-byte corruption of the 5-byte header, any truncation,
    /// and any trailing garbage produce a typed error — never a panic,
    /// never a silently different message.
    #[test]
    fn corrupted_envelopes_fail_with_typed_errors(
        job_id in 0u64..u64::MAX,
        version in 0u16..u16::MAX,
        cut_salt in 0usize..10_000,
        pixels in prop::collection::vec(0.0f64..=1.0, 16),
    ) {
        // v4 decoders accept every stamp in the legacy..=current
        // range, so only versions outside it are "unknown".
        prop_assume!(!(LEGACY_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version));
        let job = InferenceJob {
            job_id,
            k: 3,
            kernels: kernels_from(1, 3, &[0.5, -0.5]),
            frames: vec![frame_from(4, 4, &pixels)],
        };
        let bytes = wire::encode(&WireMessage::Job(job));

        // Unknown schema version.
        let mut versioned = bytes.clone();
        versioned[2..4].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            wire::decode(&versioned),
            Err(WireError::UnsupportedVersion { got: version })
        );

        // Truncation anywhere.
        let cut = cut_salt % bytes.len();
        prop_assert!(wire::decode(&bytes[..cut]).is_err());

        // Trailing bytes.
        let mut trailing = bytes.clone();
        trailing.push(0x00);
        prop_assert_eq!(wire::decode(&trailing), Err(WireError::TrailingBytes(1)));

        // A truncated length prefix on the framed stream is a decode
        // error, not a panic or a clean EOF.
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &bytes).unwrap();
        let cut = 1 + cut_salt % (framed.len() - 1);
        let mut partial = std::io::Cursor::new(framed[..cut].to_vec());
        prop_assert!(matches!(
            wire::read_frame(&mut partial),
            Err(WireError::Truncated { .. })
        ));
    }
}
