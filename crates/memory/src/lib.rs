//! CACTI-like memory macro models for OISA and its baselines.
//!
//! The paper estimates its **kernel banks** with CACTI \[27\], the ASIC
//! baseline's eDRAM with CACTI, and AppCiP's non-volatile arrays with
//! NVSim \[28\]. None of those tools exist in this offline Rust workspace,
//! so this crate provides analytical stand-ins calibrated to published
//! outputs of those tools at 45/65 nm (see `model::MemoryMacro` for the
//! scaling laws and calibration points).
//!
//! * [`model`] — [`model::MemoryMacro`]: per-access energy, latency,
//!   leakage and area for SRAM / eDRAM / NVM macros.
//! * [`bank`] — [`bank::KernelBank`]: the weight-code store feeding the
//!   AWC row, with access-energy accounting.
//!
//! # Examples
//!
//! ```
//! use oisa_memory::model::{MemoryKind, MemoryMacro};
//!
//! # fn main() -> Result<(), oisa_memory::MemoryError> {
//! let bank = MemoryMacro::new(MemoryKind::Sram, 45, 2048, 16)?;
//! assert!(bank.read_energy().as_femto() > 1.0);
//! assert!(bank.leakage_power().get() > 0.0);
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod bank;
pub mod model;

use std::fmt;

/// Errors from memory model construction or use.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemoryError {
    /// A design parameter was out of range.
    InvalidParameter(String),
    /// An address or slot index was out of range.
    OutOfBounds {
        /// The requested index.
        index: usize,
        /// Number of valid slots.
        len: usize,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for {len} slots")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MemoryError>;
