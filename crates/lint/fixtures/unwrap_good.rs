// Fixture: unwrap is fine inside #[cfg(test)] regions and the
// unwrap_or family never counts.
pub fn first_or_default(rows: &[Vec<f64>]) -> Vec<f64> {
    rows.first().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let rows = vec![vec![1.0]];
        assert_eq!(rows.first().unwrap().len(), 1);
    }
}
