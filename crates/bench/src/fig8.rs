//! Fig. 8: transient waveforms of the VAM's dual-threshold decision for
//! three pixels at different illuminations.

use oisa_sensor::pixel::PixelDesign;
use oisa_sensor::vam::{threshold_trace, Vam, VamConfig};
use oisa_spice::{TransientAnalysis, Waveform};
use oisa_units::{Ampere, Second};

/// The waveform bundle for one pixel.
#[derive(Debug, Clone)]
pub struct PixelWaveforms {
    /// Illumination applied.
    pub illumination: f64,
    /// Sample times, ns.
    pub times_ns: Vec<f64>,
    /// Accumulated photodiode voltage drop (the SA input), volts.
    pub out: Vec<f64>,
    /// Lower sense-amplifier decision (t1).
    pub t1: Vec<f64>,
    /// Upper sense-amplifier decision (t2).
    pub t2: Vec<f64>,
    /// Final ternary code after the decision window.
    pub code: u8,
}

/// Simulates the paper's three illumination cases (high / mid / low) on
/// the transistor-level pixel and thresholds the buffered photodiode
/// drop with the VAM's sense amplifiers, clocked at `clk_ns`.
///
/// The pixel uses a time-compressed exposure (125 nA full-scale
/// photocurrent over 20 ns instead of 50 pA over 50 µs) so the transient
/// stays tractable; the voltage trajectory is identical by construction
/// (`I·t/C` invariant). Discharge is gated off after the 20 ns exposure
/// window, so the decision window (24–40 ns) sees held voltages, like
/// the paper's 16–17 ns sampling interval.
///
/// # Errors
///
/// Propagates sensor/spice failures as a boxed error for the harness.
pub fn vam_waveforms(clk_ns: f64) -> Result<Vec<PixelWaveforms>, Box<dyn std::error::Error>> {
    // 125 nA × 20 ns / 5 fF = 0.5 V full-scale drop, matching the
    // behavioural pixel's swing.
    let design = PixelDesign {
        full_scale_current: Ampere::from_nano(125.0),
        exposure: Second::from_nano(20.0),
        ..PixelDesign::paper_default()
    };
    let vam = Vam::new(VamConfig::paper_default())?;
    let vdd = design.vdd.get();
    let mut result = Vec::new();
    for &illumination in &[0.95, 0.45, 0.12] {
        // Reset until 4 ns, then a bounded 20 ns discharge window.
        let rst = Waveform::pulse(1.0, 0.0, 4e-9, 1e-10, 1e-10, 1.0, 0.0);
        let dch = Waveform::pulse(0.0, 1.0, 4e-9, 1e-10, 1e-10, 20e-9, 0.0);
        let ckt = design.build_netlist(illumination, rst, dch)?;
        let trace =
            TransientAnalysis::new(Second::from_nano(40.0), Second::from_pico(50.0)).run(&ckt)?;
        let times = trace.times().to_vec();
        // The SA input is the buffered accumulated drop, vdd − v(pd).
        let out: Vec<f64> = trace.voltage("pd")?.iter().map(|v| vdd - v).collect();
        let (t1, t2) = threshold_trace(&times, &out, clk_ns * 1e-9, &vam);
        let code = match (
            t1.last().copied().unwrap_or(0.0) > 0.5,
            t2.last().copied().unwrap_or(0.0) > 0.5,
        ) {
            (true, true) => 2,
            (true, false) => 1,
            _ => 0,
        };
        result.push(PixelWaveforms {
            illumination,
            times_ns: times.iter().map(|t| t * 1e9).collect(),
            out,
            t1,
            t2,
            code,
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_pixels_resolve_three_codes() {
        let waves = vam_waveforms(8.0).unwrap();
        assert_eq!(waves.len(), 3);
        // Paper Fig. 8: Out1 → (1,1), Out2 → (1,0), Out3 → (0,0).
        assert_eq!(waves[0].code, 2, "bright pixel");
        assert_eq!(waves[1].code, 1, "mid pixel");
        assert_eq!(waves[2].code, 0, "dark pixel");
    }

    #[test]
    fn output_voltage_rises_with_illumination() {
        let waves = vam_waveforms(8.0).unwrap();
        let final_v = |w: &PixelWaveforms| w.out.last().copied().unwrap();
        assert!(final_v(&waves[0]) > final_v(&waves[1]));
        assert!(final_v(&waves[1]) > final_v(&waves[2]));
    }

    #[test]
    fn t2_never_leads_t1() {
        for w in vam_waveforms(8.0).unwrap() {
            for (a, b) in w.t1.iter().zip(&w.t2) {
                assert!(a >= b, "t2 high while t1 low");
            }
        }
    }
}
