//! A from-scratch CNN framework for OISA's accuracy studies.
//!
//! The paper trains quantised DNNs in PyTorch, runs the first layer
//! through the OISA behavioural model and the remaining layers in float
//! (paper Fig. 7). PyTorch is not available in this offline Rust
//! workspace, so this crate implements the minimum complete substrate:
//!
//! * [`tensor`] — an NCHW [`Tensor`] with the dense ops the models need;
//! * [`layer`] — the [`layer::Layer`] trait plus ReLU / pooling / flatten;
//! * [`conv`], [`linear`], [`norm`] — Conv2d, Linear and BatchNorm2d with
//!   full backward passes;
//! * [`loss`] — softmax cross-entropy;
//! * [`model`] — [`model::Sequential`] and the reduced-scale zoo
//!   (LeNet-style, ResNet-style with residual blocks, VGG-style);
//! * [`quantize`] — level-table weight quantisers and the ternary
//!   activation quantiser mirroring the VAM, the bridge to the optics
//!   crates;
//! * [`train`] — SGD with momentum and the evaluation loop.
//!
//! # Examples
//!
//! Train a tiny classifier on synthetic data:
//!
//! ```
//! use oisa_nn::model::Sequential;
//! use oisa_nn::linear::Linear;
//! use oisa_nn::layer::Relu;
//! use oisa_nn::tensor::Tensor;
//! use oisa_nn::train::{Sgd, TrainConfig, Trainer};
//!
//! # fn main() -> Result<(), oisa_nn::NnError> {
//! let mut model = Sequential::new();
//! model.push(Linear::with_seed(4, 8, 1)?);
//! model.push(Relu::new());
//! model.push(Linear::with_seed(8, 2, 2)?);
//! // Four separable points, two classes.
//! let x = Tensor::from_vec(vec![4, 4], vec![
//!     1.0, 0.0, 0.0, 0.0,
//!     0.9, 0.1, 0.0, 0.0,
//!     0.0, 0.0, 0.0, 1.0,
//!     0.0, 0.1, 0.0, 0.9,
//! ])?;
//! let y = vec![0, 0, 1, 1];
//! let mut trainer = Trainer::new(Sgd::new(0.5, 0.9), TrainConfig::default());
//! for _ in 0..50 {
//!     trainer.train_batch(&mut model, &x, &y)?;
//! }
//! let acc = trainer.evaluate(&mut model, &x, &y)?;
//! assert!(acc > 0.99);
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod conv;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod model;
pub mod norm;
pub mod quantize;
pub mod tensor;
pub mod train;

pub use tensor::Tensor;

use std::fmt;

/// Errors from tensor and model operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Shapes disagree for the attempted operation.
    ShapeMismatch {
        /// Description of the expectation.
        expected: String,
        /// The offending shape.
        got: Vec<usize>,
    },
    /// An argument was invalid (zero dimension, bad probability, …).
    InvalidParameter(String),
    /// Backward called before forward, or other ordering violations.
    InvalidState(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got:?}")
            }
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::InvalidState(what) => write!(f, "invalid state: {what}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
