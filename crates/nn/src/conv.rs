//! 2-D convolution with full backward pass.
//!
//! The forward pass lowers each image to a patch matrix (im2col) and
//! runs one cache-blocked matrix multiply per batch item
//! ([`crate::tensor::gemm_into`]); the original sliding-window loop is
//! kept as [`Conv2d::forward_naive`] and the two are asserted to agree
//! to 1e-5 in the tests. The backward pass is unchanged (naive loops).

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, UpdateRule};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// A 2-D convolution layer (NCHW, square kernels).
///
/// Weights have shape `[out_ch, in_ch, k, k]`; biases `[out_ch]`.
///
/// # Examples
///
/// ```
/// use oisa_nn::conv::Conv2d;
/// use oisa_nn::layer::Layer;
/// use oisa_nn::Tensor;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let mut conv = Conv2d::with_seed(1, 4, 3, 1, 1, 42)?; // 1→4 ch, 3×3, stride 1, pad 1
/// let x = Tensor::zeros(vec![2, 1, 8, 8]);
/// let y = conv.forward(&x, false)?;
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weights: Tensor,
    bias: Vec<f32>,
    grad_weights: Tensor,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
    momentum_w: Vec<f32>,
    momentum_b: Vec<f32>,
    /// im2col patch buffer reused across forward calls — transient
    /// scratch, rebuilt on the next forward, so never serialized.
    #[serde(skip)]
    patches: Vec<f32>,
}

impl Conv2d {
    /// Builds a convolution with He-initialised weights from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero dimensions or a
    /// stride of zero.
    pub fn with_seed(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidParameter(
                "conv dimensions and stride must be positive".into(),
            ));
        }
        let fan_in = in_channels * kernel * kernel;
        let weights = Tensor::he_normal(
            vec![out_channels, in_channels, kernel, kernel],
            fan_in,
            seed,
        );
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            grad_weights: Tensor::zeros(weights.shape().to_vec()),
            weights,
            bias: vec![0.0; out_channels],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
            momentum_w: Vec::new(),
            momentum_b: Vec::new(),
            patches: Vec::new(),
        })
    }

    /// Kernel side length.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Weight tensor (`[out_ch, in_ch, k, k]`).
    #[must_use]
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Mutable weight tensor — used by the quantised deployment path.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        &mut self.weights
    }

    /// Bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the kernel does not fit.
    pub fn output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let eff_h = h + 2 * self.padding;
        let eff_w = w + 2 * self.padding;
        if eff_h < self.kernel || eff_w < self.kernel {
            return Err(NnError::ShapeMismatch {
                expected: format!("spatial size >= kernel {}", self.kernel),
                got: vec![h, w],
            });
        }
        Ok((
            (eff_h - self.kernel) / self.stride + 1,
            (eff_w - self.kernel) / self.stride + 1,
        ))
    }

    #[inline]
    fn input_coord(&self, out: usize, k: usize) -> Option<usize> {
        (out * self.stride + k).checked_sub(self.padding)
    }

    /// Lowers one image (`[in_ch, h, w]`, row-major within `input`) to
    /// the `[in_ch·k², oh·ow]` patch matrix in `self.patches`.
    fn im2col(&mut self, input: &[f32], h: usize, w: usize, oh: usize, ow: usize) {
        let k = self.kernel;
        let cols = oh * ow;
        // Every element is overwritten below (body copies plus explicit
        // fringe fills), so only adjust the length — no full memset per
        // forward.
        let len = self.in_channels * k * k * cols;
        if self.patches.len() != len {
            self.patches.resize(len, 0.0);
        }
        for ic in 0..self.in_channels {
            let plane = &input[ic * h * w..(ic + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_index = (ic * k + ky) * k + kx;
                    let dst_row = &mut self.patches[row_index * cols..(row_index + 1) * cols];
                    for oy in 0..oh {
                        let dst = &mut dst_row[oy * ow..(oy + 1) * ow];
                        let Some(y) = (oy * self.stride + ky).checked_sub(self.padding) else {
                            dst.fill(0.0);
                            continue;
                        };
                        if y >= h {
                            dst.fill(0.0);
                            continue;
                        }
                        let src_row = &plane[y * w..(y + 1) * w];
                        if self.stride == 1 {
                            // Contiguous copy of the in-range span
                            // x = ox + kx − pad ∈ [0, w); the padded
                            // fringes stay zero.
                            let lo = self.padding.saturating_sub(kx);
                            let hi = (w + self.padding).saturating_sub(kx).min(ow);
                            dst[..lo.min(ow)].fill(0.0);
                            if lo < hi {
                                let x0 = lo + kx - self.padding;
                                dst[lo..hi].copy_from_slice(&src_row[x0..x0 + (hi - lo)]);
                            }
                            dst[hi.max(lo).min(ow)..].fill(0.0);
                        } else {
                            for (ox, d) in dst.iter_mut().enumerate() {
                                match (ox * self.stride + kx).checked_sub(self.padding) {
                                    Some(x) if x < w => *d = src_row[x],
                                    _ => *d = 0.0,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The original sliding-window forward pass, kept as the exactness
    /// oracle for the im2col path and as the perf baseline.
    ///
    /// # Errors
    ///
    /// Same contract as [`Layer::forward`].
    pub fn forward_naive(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.len() != 4 || s[1] != self.in_channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("NCHW with C = {}", self.in_channels),
                got: s.to_vec(),
            });
        }
        let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.output_size(h, w)?;
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        for ni in 0..n {
            for oc in 0..self.out_channels {
                let b = self.bias[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = b;
                        for ic in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let Some(y) = self.input_coord(oy, ky) else {
                                    continue;
                                };
                                if y >= h {
                                    continue;
                                }
                                for kx in 0..self.kernel {
                                    let Some(x) = self.input_coord(ox, kx) else {
                                        continue;
                                    };
                                    if x >= w {
                                        continue;
                                    }
                                    acc +=
                                        input.at4(ni, ic, y, x) * self.weights.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                        *out.at4_mut(ni, oc, oy, ox) = acc;
                    }
                }
            }
        }
        if training {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let s = input.shape();
        if s.len() != 4 || s[1] != self.in_channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("NCHW with C = {}", self.in_channels),
                got: s.to_vec(),
            });
        }
        let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = self.output_size(h, w)?;
        let cols = oh * ow;
        let kk = self.in_channels * self.kernel * self.kernel;
        let mut out = Tensor::zeros(vec![n, self.out_channels, oh, ow]);
        for ni in 0..n {
            let image = &input.as_slice()[ni * self.in_channels * h * w..];
            self.im2col(image, h, w, oh, ow);
            let dst = &mut out.as_mut_slice()
                [ni * self.out_channels * cols..(ni + 1) * self.out_channels * cols];
            // Weights are already the [out_ch, in_ch·k²] matrix in
            // row-major memory; one blocked GEMM per image.
            crate::tensor::gemm_into(
                self.out_channels,
                kk,
                cols,
                self.weights.as_slice(),
                &self.patches,
                dst,
            );
            for oc in 0..self.out_channels {
                let b = self.bias[oc];
                if b != 0.0 {
                    for v in &mut dst[oc * cols..(oc + 1) * cols] {
                        *v += b;
                    }
                }
            }
        }
        if training {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("conv backward before forward".into()))?;
        let s = input.shape();
        let (n, _, h, w) = (s[0], s[1], s[2], s[3]);
        let go = grad_output.shape();
        let (oh, ow) = (go[2], go[3]);
        if go[0] != n || go[1] != self.out_channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("[{n}, {}, ..]", self.out_channels),
                got: go.to_vec(),
            });
        }
        let mut grad_in = Tensor::zeros(s.to_vec());
        for ni in 0..n {
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_output.at4(ni, oc, oy, ox);
                        if g == 0.0 {
                            continue;
                        }
                        self.grad_bias[oc] += g;
                        for ic in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let Some(y) = self.input_coord(oy, ky) else {
                                    continue;
                                };
                                if y >= h {
                                    continue;
                                }
                                for kx in 0..self.kernel {
                                    let Some(x) = self.input_coord(ox, kx) else {
                                        continue;
                                    };
                                    if x >= w {
                                        continue;
                                    }
                                    *self.grad_weights.at4_mut(oc, ic, ky, kx) +=
                                        g * input.at4(ni, ic, y, x);
                                    *grad_in.at4_mut(ni, ic, y, x) +=
                                        g * self.weights.at4(oc, ic, ky, kx);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, update: &mut UpdateRule) {
        update(
            self.weights.as_mut_slice(),
            self.grad_weights.as_slice(),
            &mut self.momentum_w,
        );
        update(&mut self.bias, &self.grad_bias, &mut self.momentum_b);
        self.grad_weights = Tensor::zeros(self.weights.shape().to_vec());
        self.grad_bias.fill(0.0);
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn export_parameters(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(&self.bias);
    }

    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        let (w, rest) = crate::layer::take(input, self.weights.len())?;
        self.weights.as_mut_slice().copy_from_slice(w);
        let (b, rest) = crate::layer::take(rest, self.bias.len())?;
        self.bias.copy_from_slice(b);
        Ok(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A conv with hand-set weights for exact arithmetic checks.
    fn identity_conv() -> Conv2d {
        let mut c = Conv2d::with_seed(1, 1, 3, 1, 1, 0).unwrap();
        // Identity kernel: centre 1.
        let w = c.weights_mut().as_mut_slice();
        w.fill(0.0);
        w[4] = 1.0;
        c
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut c = identity_conv();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_convolution_value() {
        // 2×2 input, 2×2 kernel of ones, no padding: single output = sum.
        let mut c = Conv2d::with_seed(1, 1, 2, 1, 0, 0).unwrap();
        c.weights_mut().as_mut_slice().fill(1.0);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.as_slice()[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn stride_downsamples() {
        let mut c = Conv2d::with_seed(1, 2, 3, 2, 1, 3).unwrap();
        let x = Tensor::zeros(vec![1, 1, 8, 8]);
        let y = c.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let mut c = Conv2d::with_seed(3, 4, 3, 1, 1, 0).unwrap();
        assert!(c.forward(&Tensor::zeros(vec![1, 2, 8, 8]), false).is_err());
    }

    #[test]
    fn im2col_matches_naive_forward() {
        // Odd shapes, padding, stride and multi-channel all at once.
        for (ic, oc, k, stride, pad, h, w) in [
            (1usize, 1usize, 3usize, 1usize, 1usize, 8usize, 8usize),
            (3, 8, 3, 1, 1, 11, 7),
            (2, 4, 5, 2, 2, 13, 9),
            (3, 2, 3, 2, 0, 10, 10),
            (1, 2, 5, 1, 2, 3, 3), // kernel wider than the input, heavy padding
        ] {
            let mut conv = Conv2d::with_seed(ic, oc, k, stride, pad, 5).unwrap();
            let x = Tensor::he_normal(vec![2, ic, h, w], ic * k * k, 9);
            let fast = conv.forward(&x, false).unwrap();
            let naive = conv.forward_naive(&x, false).unwrap();
            assert_eq!(fast.shape(), naive.shape());
            let worst = fast
                .as_slice()
                .iter()
                .zip(naive.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                worst < 1e-5,
                "im2col deviates from naive by {worst} at ic={ic} oc={oc} k={k} s={stride} p={pad}"
            );
        }
    }

    #[test]
    fn gradient_check_weights() {
        // Numerical gradient check on a tiny conv.
        let mut c = Conv2d::with_seed(1, 1, 2, 1, 0, 9).unwrap();
        let x =
            Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32 / 9.0).collect()).unwrap();
        // Forward + backward with a simple loss: sum of outputs.
        let y = c.forward(&x, true).unwrap();
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let _ = c.backward(&ones).unwrap();
        let analytic = c.grad_weights.as_slice().to_vec();
        // Numerical: perturb each weight.
        let eps = 1e-3f32;
        for (idx, &expected) in analytic.iter().enumerate() {
            let orig = c.weights.as_slice()[idx];
            c.weights.as_mut_slice()[idx] = orig + eps;
            let y_plus: f32 = c.forward(&x, false).unwrap().as_slice().iter().sum();
            c.weights.as_mut_slice()[idx] = orig - eps;
            let y_minus: f32 = c.forward(&x, false).unwrap().as_slice().iter().sum();
            c.weights.as_mut_slice()[idx] = orig;
            let numeric = (y_plus - y_minus) / (2.0 * eps);
            assert!(
                (expected - numeric).abs() < 1e-2,
                "w[{idx}]: analytic {expected} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut c = Conv2d::with_seed(1, 2, 3, 1, 1, 11).unwrap();
        let x = Tensor::he_normal(vec![1, 1, 4, 4], 16, 5);
        let y = c.forward(&x, true).unwrap();
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let grad_in = c.backward(&ones).unwrap();
        let eps = 1e-3f32;
        for idx in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let y_plus: f32 = c.forward(&xp, false).unwrap().as_slice().iter().sum();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let y_minus: f32 = c.forward(&xm, false).unwrap().as_slice().iter().sum();
            let numeric = (y_plus - y_minus) / (2.0 * eps);
            assert!(
                (grad_in.as_slice()[idx] - numeric).abs() < 1e-2,
                "x[{idx}]: analytic {} vs numeric {numeric}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn apply_gradients_clears_accumulators() {
        let mut c = Conv2d::with_seed(1, 1, 2, 1, 0, 0).unwrap();
        let x = Tensor::full(vec![1, 1, 3, 3], 1.0);
        let y = c.forward(&x, true).unwrap();
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let _ = c.backward(&ones).unwrap();
        assert!(c.grad_weights.max_abs() > 0.0);
        c.apply_gradients(&mut |p, g, _m| {
            for (pi, gi) in p.iter_mut().zip(g) {
                *pi -= 0.1 * gi;
            }
        });
        assert_eq!(c.grad_weights.max_abs(), 0.0);
        assert!(c.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn parameter_count() {
        let c = Conv2d::with_seed(3, 8, 3, 1, 1, 0).unwrap();
        assert_eq!(c.parameter_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn invalid_construction() {
        assert!(Conv2d::with_seed(0, 1, 3, 1, 1, 0).is_err());
        assert!(Conv2d::with_seed(1, 1, 0, 1, 1, 0).is_err());
        assert!(Conv2d::with_seed(1, 1, 3, 0, 1, 0).is_err());
    }
}
