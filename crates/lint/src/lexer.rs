//! A small Rust lexer: just enough structure for invariant rules.
//!
//! The rules in [`crate::rules`] must never fire on the word `unsafe`
//! inside a string literal, miss a `thread::spawn` because a comment
//! sits between the tokens, or mistake a lifetime for a character
//! literal. This lexer produces a token stream where those cases are
//! already resolved, so every rule matches **tokens**, not raw text:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   are single [`TokenKind::Comment`] tokens,
//! * plain, byte, C and **raw** strings (any `#` depth) are single
//!   [`TokenKind::StrLit`] tokens — their contents are never tokenized,
//! * `'a` lifetimes and `'a'` / `'\n'` character literals are
//!   distinguished,
//! * numeric literals carry whether they are floats
//!   ([`TokenKind::Float`] vs [`TokenKind::Int`]), including exponent
//!   (`1e-5`) and suffix (`2f64`) forms, while hex literals like
//!   `0x1E` stay integers,
//! * the three punctuation pairs rules match on (`::`, `==`, `!=`) are
//!   fused into single tokens.
//!
//! [`test_mask`] layers item structure on top: it marks every token
//! under a `#[cfg(test)]` / `#[test]` attribute (through the matching
//! close brace or terminating semicolon) so rules can skip test code.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Any string literal: plain, byte, C or raw at any `#` depth.
    StrLit,
    /// An integer literal (any base, any suffix).
    Int,
    /// A floating-point literal (`1.5`, `1e-3`, `2f64`).
    Float,
    /// A line or block comment, text included.
    Comment,
    /// Punctuation; `::`, `==` and `!=` are single tokens, everything
    /// else is one character.
    Punct,
}

/// One lexed token with its 1-based starting line and column.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source text, comments and string quotes included.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based column (in characters) the token starts at.
    pub col: u32,
}

impl Token {
    /// 1-based line the token ends on (block comments and raw strings
    /// can span many lines).
    #[must_use]
    pub fn end_line(&self) -> u32 {
        self.line + self.text.matches('\n').count() as u32
    }

    /// Kind + text equality in one call.
    #[must_use]
    pub fn is(&self, kind: TokenKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
}

/// Lexes `source` into tokens. Never panics: malformed input (an
/// unterminated string, a lone backslash) degrades to best-effort
/// tokens rather than an error, because a linter must keep walking the
/// rest of the file.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char into `text`, tracking line/column numbers.
    fn bump(&mut self, text: &mut String) {
        if let Some(c) = self.chars.get(self.pos).copied() {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            text.push(c);
            self.pos += 1;
        }
    }

    fn emit(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c == '\n' || c.is_whitespace() {
                let mut sink = String::new();
                self.bump(&mut sink);
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == '"' {
                self.escaped_string(line, col, 0);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed(line, col);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            let _ = c;
            self.bump(&mut text);
        }
        self.emit(TokenKind::Comment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump(&mut text);
                self.bump(&mut text);
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                self.bump(&mut text);
                self.bump(&mut text);
                if depth == 0 {
                    break;
                }
            } else {
                self.bump(&mut text);
            }
        }
        self.emit(TokenKind::Comment, text, line, col);
    }

    /// A `"…"`-delimited string with escapes, after `prefix` marker
    /// chars (`b"…"` has prefix 1, `"…"` prefix 0).
    fn escaped_string(&mut self, line: u32, col: u32, prefix: usize) {
        let mut text = String::new();
        for _ in 0..prefix {
            self.bump(&mut text);
        }
        self.bump(&mut text); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump(&mut text);
                self.bump(&mut text);
            } else if c == '"' {
                self.bump(&mut text);
                break;
            } else {
                self.bump(&mut text);
            }
        }
        self.emit(TokenKind::StrLit, text, line, col);
    }

    /// A raw string after `prefix` marker chars (`r`, `br`, `cr`):
    /// `#`*n* `"` … `"` `#`*n*.
    fn raw_string(&mut self, line: u32, col: u32, prefix: usize) {
        let mut text = String::new();
        for _ in 0..prefix {
            self.bump(&mut text);
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump(&mut text);
        }
        self.bump(&mut text); // opening quote
        'scan: while let Some(c) = self.peek(0) {
            if c == '"' {
                // The closing quote must be followed by `hashes` '#'s.
                let mut all = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some('#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    self.bump(&mut text);
                    for _ in 0..hashes {
                        self.bump(&mut text);
                    }
                    break 'scan;
                }
            }
            self.bump(&mut text);
        }
        self.emit(TokenKind::StrLit, text, line, col);
    }

    /// `'` starts either a lifetime or a character literal.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        if next == Some('\\') {
            // Escaped char literal: consume until the closing quote.
            let mut text = String::new();
            self.bump(&mut text); // '
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    self.bump(&mut text);
                    self.bump(&mut text);
                } else if c == '\'' {
                    self.bump(&mut text);
                    break;
                } else {
                    self.bump(&mut text);
                }
            }
            self.emit(TokenKind::CharLit, text, line, col);
        } else if after == Some('\'') && next != Some('\'') {
            // 'x' — any single char closed by a quote.
            let mut text = String::new();
            self.bump(&mut text);
            self.bump(&mut text);
            self.bump(&mut text);
            self.emit(TokenKind::CharLit, text, line, col);
        } else if next.is_some_and(is_ident_start) {
            let mut text = String::new();
            self.bump(&mut text); // '
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump(&mut text);
            }
            self.emit(TokenKind::Lifetime, text, line, col);
        } else {
            // A stray quote; emit as punctuation and keep going.
            let mut text = String::new();
            self.bump(&mut text);
            self.emit(TokenKind::Punct, text, line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let radix_prefixed = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    self.bump(&mut text);
                    // `1e-5` / `1E+3`: pull the sign into the literal
                    // when it follows an exponent marker.
                    if !radix_prefixed
                        && (c == 'e' || c == 'E')
                        && matches!(self.peek(0), Some('+' | '-'))
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        self.bump(&mut text);
                    }
                }
                Some('.')
                    if !radix_prefixed
                        && !text.contains('.')
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    self.bump(&mut text);
                }
                _ => break,
            }
        }
        let float = !radix_prefixed
            && (text.contains('.')
                || text.ends_with("f32")
                || text.ends_with("f64")
                || has_exponent(&text));
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.emit(kind, text, line, col);
    }

    fn ident_or_prefixed(&mut self, line: u32, col: u32) {
        let c = self.peek(0);
        let next = self.peek(1);
        let after = self.peek(2);
        match (c, next) {
            // r"…" / r#"…"# raw strings vs r#ident raw identifiers.
            (Some('r'), Some('"')) => return self.raw_string(line, col, 1),
            (Some('r'), Some('#')) if raw_hashes_open_string(&self.chars, self.pos + 1) => {
                return self.raw_string(line, col, 1)
            }
            (Some('b'), Some('"')) | (Some('c'), Some('"')) => {
                return self.escaped_string(line, col, 1)
            }
            (Some('b'), Some('\'')) => {
                // Byte char literal: consume the `b` then reuse the
                // quote path.
                let mut marker = String::new();
                self.bump(&mut marker);
                let before = self.out.len();
                self.quote(line, col);
                if let Some(tok) = self.out.get_mut(before) {
                    tok.text.insert(0, 'b');
                }
                return;
            }
            (Some('b'), Some('r')) | (Some('c'), Some('r'))
                if after == Some('"')
                    || (after == Some('#')
                        && raw_hashes_open_string(&self.chars, self.pos + 2)) =>
            {
                return self.raw_string(line, col, 2)
            }
            _ => {}
        }
        let mut text = String::new();
        self.bump(&mut text);
        // Raw identifier marker r#foo.
        if text == "r" && self.peek(0) == Some('#') && self.peek(1).is_some_and(is_ident_start) {
            self.bump(&mut text);
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump(&mut text);
        }
        self.emit(TokenKind::Ident, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let c = self.peek(0);
        let next = self.peek(1);
        self.bump(&mut text);
        let fused = matches!(
            (c, next),
            (Some(':'), Some(':')) | (Some('='), Some('=')) | (Some('!'), Some('='))
        );
        if fused {
            self.bump(&mut text);
        }
        self.emit(TokenKind::Punct, text, line, col);
    }
}

/// True when `chars[start..]` is `#`*n* followed by `"` — i.e. the
/// hashes open a raw string rather than a raw identifier.
fn raw_hashes_open_string(chars: &[char], start: usize) -> bool {
    let mut i = start;
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    i > start && chars.get(i) == Some(&'"')
}

/// Detects a decimal exponent (`e`/`E` followed by a digit or sign) in
/// a numeric literal's text.
fn has_exponent(text: &str) -> bool {
    let bytes = text.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        (b == b'e' || b == b'E')
            && i > 0
            && bytes
                .get(i + 1)
                .is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-')
    })
}

// ---------------------------------------------------------------------
// Test-region marking
// ---------------------------------------------------------------------

/// Marks every token covered by a `#[cfg(test)]` / `#[test]` attribute
/// — the attribute itself, the item header and the full body through
/// the matching close brace (or terminating semicolon). Rules consult
/// this mask to skip test code.
///
/// `cfg` attributes that mention `not` (e.g. `#[cfg(not(test))]`) are
/// conservatively treated as **non**-test: the code they gate is
/// compiled into the library.
#[must_use]
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is(TokenKind::Punct, "#") {
            i += 1;
            continue;
        }
        // Inner attribute `#![…]`: skip, it never gates an item.
        if token_is(tokens, i + 1, "!") && token_is(tokens, i + 2, "[") {
            i = matching(tokens, i + 2, "[", "]") + 1;
            continue;
        }
        if !token_is(tokens, i + 1, "[") {
            i += 1;
            continue;
        }
        let close = matching(tokens, i + 1, "[", "]");
        if attr_is_test(&tokens[i + 2..close.min(tokens.len())]) {
            let end = item_end(tokens, close + 1).min(tokens.len() - 1);
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i = close + 1;
        }
    }
    mask
}

fn token_is(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Index of the punct matching `open` at `open_idx` (depth-aware);
/// the last index when unbalanced, so callers always stay in bounds.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < tokens.len() {
        if tokens[i].is(TokenKind::Punct, open) {
            depth += 1;
        } else if tokens[i].is(TokenKind::Punct, close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Decides whether an attribute's inner tokens gate test-only code:
/// `#[test]` itself, or a `cfg(…)` whose predicate mentions `test` and
/// never `not`.
fn attr_is_test(inner: &[Token]) -> bool {
    let mut idents = inner
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str());
    match idents.next() {
        Some("test") => true,
        Some("cfg") => {
            let rest: Vec<&str> = idents.collect();
            rest.contains(&"test") && !rest.contains(&"not")
        }
        _ => false,
    }
}

/// Finds the end of the item starting at `start` (just past an
/// attribute): the matching `}` of its first top-level brace, or the
/// first top-level `;` for brace-less items like `use` declarations.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut j = start;
    let mut depth = 0usize; // parens + brackets (fn args, generics)
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "#" if depth == 0 && token_is(tokens, j + 1, "[") => {
                    // A further attribute on the same item.
                    j = matching(tokens, j + 1, "[", "]");
                }
                ";" if depth == 0 => return j,
                "{" if depth == 0 => return matching(tokens, j, "{", "}"),
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_idents_are_separated() {
        let toks = kinds("let x = \"unsafe\"; // unsafe here\nunsafe {}");
        assert!(toks.contains(&(TokenKind::StrLit, "\"unsafe\"".into())));
        assert!(toks.contains(&(TokenKind::Comment, "// unsafe here".into())));
        let unsafe_idents = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "unsafe")
            .count();
        assert_eq!(unsafe_idents, 1, "only the real keyword is an ident");
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("/* outer /* inner */ still outer */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn columns_are_one_based_and_survive_newlines() {
        let toks = lex("let x = 1;\n  \"a\nb\" y");
        let at = |text: &str| {
            toks.iter()
                .find(|t| t.text == text)
                .map(|t| (t.line, t.col))
                .unwrap()
        };
        assert_eq!(at("let"), (1, 1));
        assert_eq!(at("x"), (1, 5));
        assert_eq!(at("="), (1, 7));
        assert_eq!(at("1"), (1, 9));
        // A multi-line string starts at its opening quote; the token
        // after it lands on the line/col past the closing quote.
        assert_eq!(at("\"a\nb\""), (2, 3));
        assert_eq!(at("y"), (3, 4));
    }

    #[test]
    fn raw_strings_swallow_their_contents() {
        let toks = kinds(r###"let s = r#"quote " and unsafe"# ;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::StrLit && t.contains("unsafe")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }

    #[test]
    fn lifetimes_and_char_literals_differ() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numeric_literals_classify_floats() {
        let toks = kinds("0x1E 1_000 1.5 2f64 1e-5 3E+2 7usize 0b101");
        let floats: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(floats, ["1.5", "2f64", "1e-5", "3E+2"]);
    }

    #[test]
    fn ranges_do_not_create_floats() {
        let toks = kinds("for i in 0..n { a[i] = t.0; }");
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn fused_puncts() {
        let toks = kinds("a == b != c::d");
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let unwrap_idx = tokens
            .iter()
            .position(|t| t.is(TokenKind::Ident, "unwrap"))
            .expect("unwrap token present");
        assert!(mask[unwrap_idx], "test-module token must be masked");
        let lib2 = tokens
            .iter()
            .position(|t| t.is(TokenKind::Ident, "lib2"))
            .expect("lib2 present");
        assert!(!mask[lib2], "code after the test module is live again");
    }

    #[test]
    fn test_mask_handles_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        assert!(mask.iter().all(|&m| !m), "not(test) code is library code");
    }

    #[test]
    fn test_mask_covers_test_fn_and_use() {
        let src = "#[cfg(test)]\nuse std::mem;\n#[test]\nfn t() { a.unwrap() }\nfn live() {}";
        let tokens = lex(src);
        let mask = test_mask(&tokens);
        let unwrap_idx = tokens
            .iter()
            .position(|t| t.is(TokenKind::Ident, "unwrap"))
            .expect("unwrap present");
        assert!(mask[unwrap_idx]);
        let live = tokens
            .iter()
            .position(|t| t.is(TokenKind::Ident, "live"))
            .expect("live present");
        assert!(!mask[live]);
    }

    #[test]
    fn byte_and_c_strings_lex_as_strings() {
        let toks = kinds(r#"b"bytes" c"cstr" br"raw" b'x'"#);
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::StrLit).count();
        assert_eq!(strs, 3);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::CharLit && t == "b'x'"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "/* open", "r#\"open", "'\\", "b'", "1e", "r#"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\n/* c\nc */\nb";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.is(TokenKind::Ident, "b"))
            .expect("b");
        assert_eq!(b.line, 6);
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::StrLit)
            .expect("s");
        assert_eq!((s.line, s.end_line()), (2, 3));
    }
}
