//! Quickstart: capture a frame and run a first-layer convolution on the
//! optical in-sensor accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::sensor::Frame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small OISA node: 16×16 ADC-less imager in front of a 4-bank OPC.
    let mut accel = OisaAccelerator::new(OisaConfig::small_test())?;

    // Synthesise a frame with a bright square on a dark background.
    let mut pixels = vec![0.08f64; 16 * 16];
    for y in 5..11 {
        for x in 5..11 {
            pixels[y * 16 + x] = 0.9;
        }
    }
    let frame = Frame::new(16, 16, pixels)?;

    // Two 3×3 kernels: an edge detector and a blur.
    let edge = vec![
        -1.0f32, -1.0, -1.0, //
        -1.0, 8.0, -1.0, //
        -1.0, -1.0, -1.0,
    ];
    let blur = vec![1.0f32 / 9.0; 9];

    let report = accel.convolve_frame(&frame, &[edge, blur], 3)?;

    println!("OISA quickstart");
    println!("===============");
    println!(
        "frame 16x16 -> {} feature maps of {}x{}",
        report.output.len(),
        report.out_h,
        report.out_w
    );
    println!(
        "mapping: {} pass(es), {} tuning iteration(s)/pass, {} MACs/cycle",
        report.plan.passes, report.plan.tuning_iterations_per_pass, report.plan.macs_per_cycle
    );
    println!("latency: {:.3}", report.timeline.total());
    println!("energy : {:.3}", report.energy.total());

    // The edge map peaks along the square's border.
    let edge_map = &report.output[0];
    let peak = edge_map.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let (peak_idx, _) = edge_map
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty map");
    println!(
        "edge response peak {:.2} at ({}, {})",
        peak,
        peak_idx / report.out_w,
        peak_idx % report.out_w
    );

    // Batched inference
    // -----------------
    // For sustained workloads, hand a whole batch to `convolve_frames`:
    // the engine stages each weight pass once for the batch (instead of
    // once per frame), snapshots the tuned arms, and spreads
    // (frame, pass, row-band) work items over a work-stealing scheduler
    // so no worker idles at a frame boundary. Every frame keys its own
    // noise epoch, which makes the reports bit-identical to calling
    // `convolve_frame_sequential` once per frame — batching buys wall
    // clock, never different physics.
    let batch: Vec<Frame> = (0..4)
        .map(|i| {
            let mut pixels = vec![0.08f64; 16 * 16];
            for y in 5..11 {
                for x in 5..11 {
                    // The square brightens frame by frame.
                    pixels[y * 16 + x] = 0.6 + 0.1 * f64::from(i);
                }
            }
            Frame::new(16, 16, pixels)
        })
        .collect::<Result<_, _>>()?;
    let sharpen = vec![0.0f32, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0];
    let reports = accel.convolve_frames(&batch, std::slice::from_ref(&sharpen), 3)?;
    println!("\nbatched inference ({} frames)", reports.len());
    for (i, r) in reports.iter().enumerate() {
        let peak = r.output[0]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        println!(
            "  frame {i}: sharpen peak {peak:.2}, energy {:.3}",
            r.energy.total()
        );
    }

    // Serving
    // -------
    // `convolve_frames` wants the whole batch up front. When frames
    // instead *arrive over time* (the paper's deployment: a sensor
    // streaming at frame rate), wrap the accelerator in a
    // `ServingEngine`: submissions queue up, batches form when either
    // `max_batch` frames are pending or the oldest has waited
    // `deadline` (so light traffic is not starved), and a full queue
    // (`queue_depth`) pushes back on the producer. Batching still never
    // changes the physics — each frame keys its own noise epoch, so a
    // served report is bit-identical to running the same frame through
    // `convolve_frame_sequential` in submission order, whatever batch
    // shapes the queue happened to form.
    use oisa::core::serving::{ServingConfig, ServingEngine};
    let engine = ServingEngine::new(
        OisaAccelerator::new(OisaConfig::small_test())?,
        vec![sharpen],
        3,
        ServingConfig {
            max_batch: 4,                                  // throughput knob
            deadline: std::time::Duration::from_millis(2), // tail-latency knob
            queue_depth: 16,                               // backpressure knob
        },
    )?;
    let handles: Vec<_> = batch
        .iter()
        .map(|f| engine.submit(f.clone()).expect("submit"))
        .collect();
    println!("\nserved inference ({} frames)", handles.len());
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait()?;
        let peak = r.output[0]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        println!("  frame {i}: sharpen peak {peak:.2}");
    }
    let (_backend, stats) = engine.shutdown();
    println!(
        "  {} batches, queue wait p50 {:.0} us / p99 {:.0} us, {:.0} frames/s",
        stats.batches_run, stats.queue_wait_p50_us, stats.queue_wait_p99_us, stats.frames_per_sec
    );

    // Sharded execution
    // -----------------
    // The serving engine talks to a `ComputeBackend`, and so can you:
    // `LocalBackend` runs jobs on this host, `ShardedBackend` splits
    // each job's frames into `(frame, epoch)` ranges, ships them to
    // workers as versioned wire messages and merges the reports
    // bit-identically to one sequential loop. Here the workers are
    // in-process; `examples/multi_node.rs` runs the same protocol over
    // real worker processes.
    use oisa::core::backend::{ComputeBackend, ShardedBackend};
    use oisa::core::wire::InferenceJob;
    let mut sharded = ShardedBackend::in_process(OisaConfig::small_test(), 2)?;
    let job = InferenceJob {
        job_id: 1,
        k: 3,
        kernels: vec![vec![1.0f32 / 9.0; 9]],
        frames: batch.clone(),
    };
    let merged = sharded.run_job(&job)?;
    println!(
        "\nsharded inference: {} frames over {} workers -> {} reports",
        job.frames.len(),
        sharded.worker_count(),
        merged.len()
    );

    // Multi-host over TCP
    // -------------------
    // The same coordinator goes multi-host by swapping the transport:
    // `TcpWorker` is the accept-loop daemon (one per host — the
    // `oisa_worker` binary wraps it), `TcpTransport` dials it with a
    // connect timeout, a handshake that rejects mismatched configs at
    // connect time, and reconnect-with-backoff on broken pipes. Here
    // both daemons run as background threads on loopback; in a real
    // fleet they are `oisa_worker` processes on other machines:
    //
    //   host-a$ oisa_worker --addr 0.0.0.0:7401 --seed 2024
    //   host-b$ oisa_worker --addr 0.0.0.0:7401 --seed 2024
    //
    // Workers are stateless per shard, so a daemon lost mid-job costs
    // nothing: `run_job` fails with a typed `OisaError::Transport`
    // having consumed no coordinator state, and retrying after
    // `replace_worker` re-executes bit-identically (see
    // `examples/multi_node.rs --tcp` for the full drill).
    use oisa::core::backend::{TcpTransport, TcpTransportConfig, TcpWorker};
    let config = OisaConfig::small_test();
    let endpoints: Vec<String> = (0..2)
        .map(|_| Ok(TcpWorker::bind(config, "127.0.0.1:0")?.spawn()?.endpoint()))
        .collect::<Result<_, oisa::core::OisaError>>()?;
    let workers = endpoints
        .iter()
        .map(|endpoint| {
            TcpTransport::connect(
                endpoint.clone(),
                config.fingerprint(),
                TcpTransportConfig::default(),
            )
            .map(|t| Box::new(t) as _)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut tcp_backend = ShardedBackend::new(config, workers)?;
    let tcp_merged = tcp_backend.run_job(&job)?;
    assert_eq!(
        tcp_merged, merged,
        "TCP and in-process fleets merge bit-identically"
    );
    println!(
        "tcp inference    : {} frames over {} daemons ({}) -> bit-identical reports",
        job.frames.len(),
        endpoints.len(),
        endpoints.join(", ")
    );
    Ok(())
}
