//! `OisaError` — the one error type backend and serving callers handle.
//!
//! The execution stack grew errors layer by layer: [`CoreError`] from
//! the architecture, [`DeviceError`](oisa_device::DeviceError) from the
//! substrate, [`SubmitError`](crate::serving::SubmitError) from the
//! serving queue and [`WireError`](crate::wire::WireError) from the
//! sharding protocol. A caller driving a [`ComputeBackend`] through all
//! of them previously needed four `match` arms per call site;
//! [`OisaError`] folds them into one `#[non_exhaustive]` enum with
//! `From` impls, so `?` composes across every layer.
//!
//! [`ComputeBackend`]: crate::backend::ComputeBackend

use std::fmt;

use oisa_device::DeviceError;

use crate::wire::WireError;
use crate::CoreError;

/// Why a submission was declined, without the returned frame.
///
/// [`SubmitError`](crate::serving::SubmitError) hands the undelivered
/// frame back by value so callers can retry without a copy; once an
/// error is folded into [`OisaError`] the frame has been consumed, so
/// only the *kind* survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitKind {
    /// The serving queue was at capacity.
    Backpressure,
    /// The engine was shutting down.
    ShutDown,
}

/// Unified error of the execution stack (backend, serving, wire,
/// device, architecture).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OisaError {
    /// Architecture-layer failure ([`CoreError`]).
    Core(CoreError),
    /// Substrate device failure ([`DeviceError`]), kept distinct from
    /// [`OisaError::Core`] so epoch-exhaustion and range faults stay
    /// matchable.
    Device(DeviceError),
    /// Wire-protocol failure ([`WireError`]): decode errors, framing
    /// truncation, schema-version mismatches.
    Wire(WireError),
    /// A serving submission was declined (frame already handed back).
    Submit(SubmitKind),
    /// A configuration field failed validation
    /// ([`OisaConfigBuilder`](crate::accelerator::OisaConfigBuilder)).
    Config {
        /// The offending builder field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A distributed-backend fault: a worker refused a shard, a
    /// transport broke mid-job, or merged shards failed consistency
    /// checks.
    Backend(String),
}

impl fmt::Display for OisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Submit(SubmitKind::Backpressure) => {
                write!(f, "submission declined: queue full (backpressure)")
            }
            Self::Submit(SubmitKind::ShutDown) => {
                write!(f, "submission declined: engine shutting down")
            }
            Self::Config { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            Self::Backend(what) => write!(f, "backend error: {what}"),
        }
    }
}

impl std::error::Error for OisaError {}

impl From<CoreError> for OisaError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<DeviceError> for OisaError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}

impl From<WireError> for OisaError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<oisa_sensor::SensorError> for OisaError {
    fn from(e: oisa_sensor::SensorError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_optics::OpticsError> for OisaError {
    fn from(e: oisa_optics::OpticsError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_memory::MemoryError> for OisaError {
    fn from(e: oisa_memory::MemoryError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_nn::NnError> for OisaError {
    fn from(e: oisa_nn::NnError) -> Self {
        Self::Core(e.into())
    }
}

impl From<crate::serving::SubmitError> for OisaError {
    /// Folds a submit error into the unified type. A
    /// [`Rejected`](crate::serving::SubmitError::Rejected) submission
    /// carries an architecture error and maps to [`OisaError::Core`];
    /// the queue-state variants keep their kind but drop the returned
    /// frame (it was available on the original error for zero-copy
    /// retry).
    fn from(e: crate::serving::SubmitError) -> Self {
        match e {
            crate::serving::SubmitError::Rejected(core) => Self::Core(core),
            crate::serving::SubmitError::Backpressure(_) => {
                Self::Submit(SubmitKind::Backpressure)
            }
            crate::serving::SubmitError::ShutDown(_) => Self::Submit(SubmitKind::ShutDown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_sensor::Frame;

    #[test]
    fn every_layer_folds_in() {
        let core: OisaError = CoreError::InvalidParameter("x".into()).into();
        assert!(matches!(core, OisaError::Core(_)));
        let device: OisaError = DeviceError::OutOfRange("epoch".into()).into();
        assert!(matches!(device, OisaError::Device(_)));
        let wire: OisaError = WireError::UnsupportedVersion { got: 9 }.into();
        assert!(matches!(wire, OisaError::Wire(_)));
        let frame = Frame::constant(2, 2, 0.5).unwrap();
        let submit: OisaError = crate::serving::SubmitError::Backpressure(frame).into();
        assert_eq!(submit, OisaError::Submit(SubmitKind::Backpressure));
        let rejected: OisaError = crate::serving::SubmitError::Rejected(
            CoreError::InvalidParameter("bad frame".into()),
        )
        .into();
        assert!(matches!(rejected, OisaError::Core(_)), "Rejected keeps its cause");
    }

    #[test]
    fn display_names_the_layer() {
        assert!(OisaError::from(DeviceError::OutOfRange("e".into()))
            .to_string()
            .starts_with("device error"));
        assert!(OisaError::from(WireError::UnsupportedVersion { got: 2 })
            .to_string()
            .starts_with("wire error"));
        let cfg = OisaError::Config {
            field: "imager",
            reason: "zero width".into(),
        };
        assert!(cfg.to_string().contains("imager"));
    }
}
