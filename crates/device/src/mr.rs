//! Add-drop microring resonator (MR) model.
//!
//! The MR is OISA's multiplicative element: a ring evanescently coupled to
//! two bus waveguides whose through-port transmission near resonance acts
//! as a tunable attenuator for one WDM channel. The paper designs a ring
//! with **radius 5 µm**, **ring waveguide width 760 nm** and a deliberately
//! modest **Q ≈ 5000** (sharper resonances would be too sensitive to
//! fabrication and thermal noise for multi-bit weighting; see paper
//! §III-A, *MR Device Engineering*).
//!
//! The model exposes exactly what the architecture consumes:
//!
//! * through/drop transmission as a function of wavelength detuning
//!   (Lorentzian line derived from the coupling/loss parameters),
//! * weight quantisation — mapping an n-bit level to a resonance detuning,
//! * hybrid thermo-optic (TO) / electro-optic (EO) tuning cost (power,
//!   latency, shift range),
//! * inter-channel crosstalk (residual attenuation at neighbouring WDM
//!   channels).

use oisa_units::{Joule, Meter, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// Geometric and optical design parameters of a microring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MrDesign {
    /// Ring radius.
    pub radius: Meter,
    /// Ring waveguide width (affects bend loss; recorded for area/crosstalk
    /// estimates).
    pub waveguide_width: Meter,
    /// Resonance wavelength the ring is fabricated for.
    pub resonance_wavelength: Meter,
    /// Loaded quality factor.
    pub q_factor: f64,
    /// Group index of the ring waveguide mode.
    pub group_index: f64,
    /// Fraction of on-resonance power lost inside the ring (sets the
    /// through-port extinction floor; 0 = ideal).
    pub intrinsic_loss: f64,
    /// Thermo-optic tuning efficiency: resonance shift per heater watt.
    pub to_efficiency_m_per_w: f64,
    /// Electro-optic tuning range (maximum shift attainable by the PIN
    /// junction alone).
    pub eo_range: Meter,
    /// Thermo-optic settling time.
    pub to_settle: Second,
    /// Electro-optic settling time.
    pub eo_settle: Second,
}

impl MrDesign {
    /// The paper's design point: R = 5 µm, 760 nm ring waveguide, Q ≈ 5000
    /// at λ = 1550 nm, hybrid TO-EO tuning (thermally-isolated undercut
    /// heater at 2.5 nm/mW, ~2 µs settle; EO ≈ ±0.1 nm, ~1 ns).
    ///
    /// The heater efficiency is the high end of demonstrated silicon
    /// designs; it is what lets 4000 simultaneously-held rings fit inside
    /// the paper's 6.68 TOp/s/W budget (see DESIGN.md calibration notes).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            radius: Meter::from_micro(5.0),
            waveguide_width: Meter::from_nano(760.0),
            resonance_wavelength: Meter::from_nano(1550.0),
            q_factor: 5000.0,
            group_index: 4.2,
            intrinsic_loss: 0.02,
            to_efficiency_m_per_w: 2.5e-9 / 1e-3, // 2.5 nm per mW
            eo_range: Meter::from_nano(0.1),
            to_settle: Second::from_micro(2.0),
            eo_settle: Second::from_nano(1.0),
        }
    }

    /// Validates physical ranges.
    fn validate(&self) -> Result<()> {
        if self.radius.get() <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "ring radius must be positive".into(),
            ));
        }
        if self.q_factor < 1.0 {
            return Err(DeviceError::InvalidParameter(format!(
                "q_factor must be >= 1, got {}",
                self.q_factor
            )));
        }
        if !(0.0..1.0).contains(&self.intrinsic_loss) {
            return Err(DeviceError::InvalidParameter(format!(
                "intrinsic_loss must be in [0, 1), got {}",
                self.intrinsic_loss
            )));
        }
        if self.group_index <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "group_index must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Ring circumference `L = 2πR`.
    #[must_use]
    pub fn circumference(&self) -> Meter {
        self.radius * core::f64::consts::TAU
    }

    /// Free spectral range `FSR = λ² / (n_g · L)`.
    #[must_use]
    pub fn free_spectral_range(&self) -> Meter {
        let lambda = self.resonance_wavelength.get();
        Meter::new(lambda * lambda / (self.group_index * self.circumference().get()))
    }

    /// Resonance full width at half maximum `FWHM = λ / Q`.
    #[must_use]
    pub fn fwhm(&self) -> Meter {
        Meter::new(self.resonance_wavelength.get() / self.q_factor)
    }

    /// Footprint estimate: bounding box of the ring plus heater margin.
    #[must_use]
    pub fn footprint(&self) -> oisa_units::SquareMeter {
        let d = self.radius * 2.0 + self.waveguide_width * 4.0;
        d * d
    }
}

/// A tunable add-drop microring holding one weight.
///
/// # Examples
///
/// ```
/// use oisa_device::mr::{Microring, MrDesign};
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let mut ring = Microring::new(MrDesign::paper_default())?;
/// ring.tune_to_weight(1.0, 4)?; // full transmission (weight 15/15)
/// assert!(ring.through_transmission_at_resonance() > 0.9);
/// ring.tune_to_weight(0.0, 4)?; // park on resonance: maximum extinction
/// assert!(ring.through_transmission_at_resonance() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microring {
    design: MrDesign,
    /// Current resonance offset from the channel wavelength.
    detuning: Meter,
    /// Heater power currently applied to hold the detuning.
    holding_power: Watt,
}

impl Microring {
    /// Builds a ring at its fabricated resonance (zero detuning).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the design is
    /// non-physical.
    pub fn new(design: MrDesign) -> Result<Self> {
        design.validate()?;
        Ok(Self {
            design,
            detuning: Meter::ZERO,
            holding_power: Watt::ZERO,
        })
    }

    /// The design this ring was built from.
    #[must_use]
    pub fn design(&self) -> &MrDesign {
        &self.design
    }

    /// Current detuning of the resonance from the channel wavelength.
    #[must_use]
    pub fn detuning(&self) -> Meter {
        self.detuning
    }

    /// Heater power needed to hold the current detuning.
    #[must_use]
    pub fn holding_power(&self) -> Watt {
        self.holding_power
    }

    /// Through-port power transmission at wavelength offset `delta` from
    /// the ring's *current* resonance.
    ///
    /// Near resonance an add-drop ring is well approximated by a Lorentzian
    /// dip with half-width `FWHM/2`:
    ///
    /// `T_thru(δ) = 1 − (1 − floor) / (1 + (2δ/FWHM)²)`
    ///
    /// where `floor` is the residual on-resonance transmission set by the
    /// intrinsic loss.
    #[must_use]
    pub fn through_transmission(&self, delta_from_resonance: Meter) -> f64 {
        let hw = self.design.fwhm().get() / 2.0;
        let x = delta_from_resonance.get() / hw;
        let dip_depth = 1.0 - self.design.intrinsic_loss;
        1.0 - dip_depth / (1.0 + x * x)
    }

    /// Drop-port power transmission at wavelength offset `delta` from the
    /// current resonance (complementary Lorentzian, reduced by the
    /// intrinsic loss).
    #[must_use]
    pub fn drop_transmission(&self, delta_from_resonance: Meter) -> f64 {
        let hw = self.design.fwhm().get() / 2.0;
        let x = delta_from_resonance.get() / hw;
        (1.0 - self.design.intrinsic_loss) / (1.0 + x * x)
    }

    /// Through transmission seen by the ring's own channel (i.e. at
    /// `−detuning` from the shifted resonance).
    #[must_use]
    pub fn through_transmission_at_resonance(&self) -> f64 {
        self.through_transmission(-self.detuning)
    }

    /// Residual attenuation this ring imposes on a channel `spacing` away
    /// (inter-channel crosstalk). Returns the multiplicative transmission
    /// applied to the neighbour.
    #[must_use]
    pub fn crosstalk_transmission(&self, spacing: Meter) -> f64 {
        self.through_transmission(spacing - self.detuning)
    }

    /// Detuning required for a through-port transmission of `target`.
    ///
    /// Inverts the Lorentzian: `δ = (FWHM/2) · √((1−floor)/(1−T) − 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] when `target` is below the
    /// extinction floor or ≥ 1 (unreachable).
    pub fn detuning_for_transmission(&self, target: f64) -> Result<Meter> {
        let floor = self.design.intrinsic_loss;
        if target < floor || target >= 1.0 {
            return Err(DeviceError::OutOfRange(format!(
                "transmission {target} outside reachable range [{floor}, 1)"
            )));
        }
        let hw = self.design.fwhm().get() / 2.0;
        let ratio = (1.0 - floor) / (1.0 - target);
        Ok(Meter::new(hw * (ratio - 1.0).max(0.0).sqrt()))
    }

    /// Quantises `weight ∈ [0, 1]` to `bits` resolution and tunes the ring
    /// so its channel transmission encodes that level. Weight 0 parks the
    /// ring on resonance (maximum extinction); the maximum level detunes it
    /// for (near-)full transmission.
    ///
    /// Returns the applied [`TuningOutcome`].
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] for weights outside `[0, 1]` or
    /// `bits` outside `1..=8`.
    pub fn tune_to_weight(&mut self, weight: f64, bits: u8) -> Result<TuningOutcome> {
        if !(0.0..=1.0).contains(&weight) {
            return Err(DeviceError::OutOfRange(format!(
                "weight {weight} outside [0, 1]"
            )));
        }
        if !(1..=8).contains(&bits) {
            return Err(DeviceError::OutOfRange(format!(
                "bit resolution {bits} outside 1..=8"
            )));
        }
        let levels = (1u32 << bits) - 1;
        let level = (weight * f64::from(levels)).round();
        let quantised = level / f64::from(levels);
        // Map level to transmission between the extinction floor and the
        // 95% point of the Lorentzian tail (full transmission requires
        // infinite detuning).
        let floor = self.design.intrinsic_loss;
        let t_max = 0.95;
        let target = floor + (t_max - floor) * quantised;
        let detuning = self.detuning_for_transmission(target)?;
        Ok(self.apply_detuning(detuning))
    }

    /// Moves the resonance to `target` detuning using the hybrid TO-EO
    /// policy: the slow thermo-optic heater covers the coarse shift while
    /// the fast electro-optic junction covers anything within its range —
    /// matching the paper's "hybrid TO-EO tuning" (§III-A).
    pub fn apply_detuning(&mut self, target: Meter) -> TuningOutcome {
        let delta = (target - self.detuning).abs();
        let eo_only = delta.get() <= self.design.eo_range.get();
        let (latency, energy) = if eo_only {
            // EO: junction charging, effectively free compared to heaters.
            let e = Joule::from_femto(50.0);
            (self.design.eo_settle, e)
        } else {
            let heater_power = Watt::new(target.get().abs() / self.design.to_efficiency_m_per_w);
            let e = heater_power * self.design.to_settle;
            (self.design.to_settle, e)
        };
        self.detuning = target;
        // Holding power is what the heater must dissipate continuously to
        // keep the shift (EO holds are leakage-free).
        self.holding_power = if eo_only && target.get().abs() <= self.design.eo_range.get() {
            Watt::ZERO
        } else {
            Watt::new(target.get().abs() / self.design.to_efficiency_m_per_w)
        };
        TuningOutcome {
            latency,
            energy,
            used_eo_only: eo_only,
        }
    }
}

/// Cost of one tuning operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Settling latency of the applied mechanism.
    pub latency: Second,
    /// Energy spent to reach the new operating point.
    pub energy: Joule,
    /// `true` when the fast electro-optic path sufficed.
    pub used_eo_only: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring() -> Microring {
        Microring::new(MrDesign::paper_default()).unwrap()
    }

    #[test]
    fn paper_design_derived_quantities() {
        let d = MrDesign::paper_default();
        // FWHM = 1550 nm / 5000 = 0.31 nm.
        assert!((d.fwhm().as_nano() - 0.31).abs() < 1e-6);
        // FSR = λ²/(n_g·2πR) = 1550e-9² / (4.2 · 3.1416e-5) ≈ 18.2 nm.
        let fsr = d.free_spectral_range().as_nano();
        assert!((17.0..20.0).contains(&fsr), "FSR {fsr} nm");
        // Footprint ~ (10 µm + 3 µm)² ≈ 1.7e-10 m².
        assert!(d.footprint().get() > 1e-10 && d.footprint().get() < 3e-10);
    }

    #[test]
    fn invalid_designs_rejected() {
        let mut d = MrDesign::paper_default();
        d.q_factor = 0.5;
        assert!(Microring::new(d).is_err());
        let mut d = MrDesign::paper_default();
        d.intrinsic_loss = 1.0;
        assert!(Microring::new(d).is_err());
        let mut d = MrDesign::paper_default();
        d.radius = Meter::ZERO;
        assert!(Microring::new(d).is_err());
    }

    #[test]
    fn on_resonance_extinction_off_resonance_transparent() {
        let r = ring();
        assert!(r.through_transmission(Meter::ZERO) < 0.05);
        assert!(r.through_transmission(Meter::from_nano(5.0)) > 0.99);
        // Half-maximum at δ = FWHM/2.
        let hw = Meter::new(r.design().fwhm().get() / 2.0);
        let t = r.through_transmission(hw);
        assert!((t - (1.0 - 0.98 / 2.0)).abs() < 0.01);
    }

    #[test]
    fn through_plus_drop_conserves_energy_up_to_loss() {
        let r = ring();
        for dn in [0.0, 0.05, 0.155, 0.5, 2.0] {
            let d = Meter::from_nano(dn);
            let total = r.through_transmission(d) + r.drop_transmission(d);
            assert!(
                (total - 1.0).abs() <= r.design().intrinsic_loss + 1e-9,
                "δ = {dn} nm: total {total}"
            );
        }
    }

    #[test]
    fn detuning_inversion_round_trips() {
        let r = ring();
        for target in [0.05, 0.2, 0.5, 0.8, 0.94] {
            let d = r.detuning_for_transmission(target).unwrap();
            let back = r.through_transmission(d);
            assert!((back - target).abs() < 1e-9, "target {target} got {back}");
        }
    }

    #[test]
    fn detuning_inversion_rejects_unreachable() {
        let r = ring();
        assert!(r.detuning_for_transmission(0.001).is_err()); // below floor
        assert!(r.detuning_for_transmission(1.0).is_err());
    }

    #[test]
    fn weight_levels_monotone_in_transmission() {
        let mut r = ring();
        let mut last = -1.0;
        for level in 0..=15 {
            r.tune_to_weight(f64::from(level) / 15.0, 4).unwrap();
            let t = r.through_transmission_at_resonance();
            assert!(t > last, "level {level}: {t} <= {last}");
            last = t;
        }
    }

    #[test]
    fn tuning_rejects_bad_arguments() {
        let mut r = ring();
        assert!(r.tune_to_weight(-0.1, 4).is_err());
        assert!(r.tune_to_weight(1.1, 4).is_err());
        assert!(r.tune_to_weight(0.5, 0).is_err());
        assert!(r.tune_to_weight(0.5, 9).is_err());
    }

    #[test]
    fn hybrid_tuning_prefers_eo_for_small_shifts() {
        let mut r = ring();
        let small = r.apply_detuning(Meter::from_nano(0.05));
        assert!(small.used_eo_only);
        assert_eq!(small.latency, r.design().eo_settle);
        let large = r.apply_detuning(Meter::from_nano(1.0));
        assert!(!large.used_eo_only);
        assert_eq!(large.latency, r.design().to_settle);
        assert!(large.energy > small.energy);
    }

    #[test]
    fn holding_power_scales_with_detuning() {
        let mut r = ring();
        r.apply_detuning(Meter::from_nano(0.5));
        let p1 = r.holding_power();
        r.apply_detuning(Meter::from_nano(1.0));
        let p2 = r.holding_power();
        assert!(p2.get() > p1.get());
        // 1 nm at 2.5 nm/mW → 0.4 mW.
        assert!((p2.as_milli() - 0.4).abs() < 0.001, "got {p2}");
    }

    #[test]
    fn crosstalk_small_at_standard_spacing() {
        let r = ring();
        // 0.8 nm channel spacing (5 FWHM away): neighbour keeps > 95%.
        let t = r.crosstalk_transmission(Meter::from_nano(0.8));
        assert!(t > 0.95, "crosstalk transmission {t}");
    }

    proptest! {
        #[test]
        fn transmission_always_physical(delta_nm in -20.0..20.0f64) {
            let r = ring();
            let t = r.through_transmission(Meter::from_nano(delta_nm));
            prop_assert!((0.0..=1.0).contains(&t));
            let d = r.drop_transmission(Meter::from_nano(delta_nm));
            prop_assert!((0.0..=1.0).contains(&d));
        }

        #[test]
        fn quantised_weight_error_bounded(weight in 0.0..=1.0f64, bits in 1u8..=8) {
            let mut r = ring();
            r.tune_to_weight(weight, bits).unwrap();
            let t = r.through_transmission_at_resonance();
            let floor = r.design().intrinsic_loss;
            let encoded = (t - floor) / (0.95 - floor);
            let lsb = 1.0 / f64::from((1u32 << bits) - 1);
            prop_assert!(
                (encoded - weight).abs() <= 0.5 * lsb + 1e-6,
                "weight {weight} encoded {encoded} (lsb {lsb})"
            );
        }
    }
}
