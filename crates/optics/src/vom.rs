//! The VCSEL Output Modulator (VOM).
//!
//! When a kernel spans several arms (5×5, 7×7) or an MLP layer's dot
//! product exceeds one arm entirely, the per-arm BPD outputs are partial
//! sums. The VOM accumulates them electrically and — when the result must
//! travel to another bank or off-chip — re-modulates the total onto a
//! VCSEL (paper §III-A: the VOM "breaks down the MAC operation when the
//! number of elements in the partial sum is huge").

use oisa_device::vcsel::{Vcsel, VcselParams};
use oisa_units::{Joule, Second};
use serde::{Deserialize, Serialize};

use crate::arm::MacResult;
use crate::{OpticsError, Result};

/// VOM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VomConfig {
    /// The re-modulating laser.
    pub vcsel: VcselParams,
    /// Analog accumulation energy per partial sum (charge-domain adder).
    pub accumulate_energy: Joule,
    /// Accumulation latency per partial sum.
    pub accumulate_time: Second,
    /// Symbol duration of the re-modulated output.
    pub symbol_time: Second,
}

impl VomConfig {
    /// Paper defaults: cited VCSEL, 5 fJ / 20 ps per accumulation,
    /// 55.8 ps output symbols (one architecture cycle).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vcsel: VcselParams::paper_default(),
            accumulate_energy: Joule::from_femto(5.0),
            accumulate_time: Second::from_pico(20.0),
            symbol_time: Second::from_pico(55.8),
        }
    }
}

/// Aggregated output of a multi-arm kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// The summed dot product, weight·activation units.
    pub value: f64,
    /// Energy of accumulation plus (optional) re-modulation.
    pub energy: Joule,
    /// Latency of the aggregation chain.
    pub latency: Second,
}

/// The output modulator.
///
/// # Examples
///
/// ```
/// use oisa_optics::vom::{Vom, VomConfig};
///
/// # fn main() -> Result<(), oisa_optics::OpticsError> {
/// let vom = Vom::new(VomConfig::paper_default())?;
/// assert!(vom.config().symbol_time.as_pico() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vom {
    config: VomConfig,
    vcsel: Vcsel,
}

impl Vom {
    /// Builds a VOM.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::Device`] when the VCSEL parameters are
    /// invalid.
    pub fn new(config: VomConfig) -> Result<Self> {
        Ok(Self {
            vcsel: Vcsel::new(config.vcsel)?,
            config,
        })
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &VomConfig {
        &self.config
    }

    /// Accumulates per-arm partial sums into one result, without
    /// re-modulation (kernel stays on-chip).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for an empty input.
    pub fn accumulate(&self, partials: &[MacResult]) -> Result<AggregateResult> {
        if partials.is_empty() {
            return Err(OpticsError::InvalidParameter(
                "no partial sums to accumulate".into(),
            ));
        }
        let value = partials.iter().map(|p| p.value).sum();
        let n = partials.len() as f64;
        let arm_latency = partials
            .iter()
            .map(|p| p.latency)
            .fold(Second::ZERO, Second::max);
        Ok(AggregateResult {
            value,
            energy: self.config.accumulate_energy * n,
            latency: arm_latency + self.config.accumulate_time * n,
        })
    }

    /// Accumulates and re-modulates the total for optical transmission
    /// (off-chip hand-off or MLP recirculation). Adds one VCSEL symbol of
    /// energy at the highest drive level — a conservative bound.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for an empty input.
    pub fn accumulate_and_transmit(&self, partials: &[MacResult]) -> Result<AggregateResult> {
        let base = self.accumulate(partials)?;
        let tx_energy = self.vcsel.symbol_energy(
            oisa_device::vcsel::TernaryLevel::Two,
            self.config.symbol_time,
        );
        Ok(AggregateResult {
            value: base.value,
            energy: base.energy + tx_energy,
            latency: base.latency + self.config.symbol_time,
        })
    }

    /// Fast-path twin of [`Vom::accumulate`] for the accelerator's inner
    /// loop: takes pre-extracted partial values and returns
    /// `(summed value, accumulation energy in joules)` without building
    /// [`AggregateResult`]. Arithmetic matches [`Vom::accumulate`]
    /// bit-for-bit (same summation order, same energy product).
    #[must_use]
    pub fn accumulate_values(&self, values: &[f64]) -> (f64, f64) {
        let value: f64 = values.iter().sum();
        (
            value,
            self.config.accumulate_energy.get() * values.len() as f64,
        )
    }

    /// Splits an oversized dot product (an MLP row of `total` elements)
    /// into per-arm chunks of at most `chunk` elements, returning the
    /// chunk count — the "break down the MAC" behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] when `chunk` is zero.
    pub fn chunk_count(&self, total: usize, chunk: usize) -> Result<usize> {
        if chunk == 0 {
            return Err(OpticsError::InvalidParameter(
                "chunk size must be positive".into(),
            ));
        }
        Ok(total.div_ceil(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_units::Joule as J;

    fn partial(value: f64, latency_ps: f64) -> MacResult {
        MacResult {
            value,
            raw_current: value * 1e-6,
            latency: Second::from_pico(latency_ps),
            optical_energy: J::from_femto(1.0),
        }
    }

    fn vom() -> Vom {
        Vom::new(VomConfig::paper_default()).unwrap()
    }

    #[test]
    fn accumulate_sums_partials() {
        let parts = [partial(1.5, 10.0), partial(-0.5, 12.0), partial(2.0, 8.0)];
        let agg = vom().accumulate(&parts).unwrap();
        assert!((agg.value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_accumulation_rejected() {
        assert!(vom().accumulate(&[]).is_err());
    }

    #[test]
    fn latency_is_slowest_arm_plus_serial_adds() {
        let parts = [partial(1.0, 10.0), partial(1.0, 30.0)];
        let agg = vom().accumulate(&parts).unwrap();
        // 30 ps slowest arm + 2 × 20 ps accumulations.
        assert!((agg.latency.as_pico() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_partial_count() {
        let two = vom().accumulate(&[partial(1.0, 1.0); 2]).unwrap();
        let four = vom().accumulate(&[partial(1.0, 1.0); 4]).unwrap();
        assert!((four.energy.get() / two.energy.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transmit_adds_vcsel_symbol_cost() {
        let parts = [partial(1.0, 10.0)];
        let plain = vom().accumulate(&parts).unwrap();
        let tx = vom().accumulate_and_transmit(&parts).unwrap();
        assert!(tx.energy.get() > plain.energy.get());
        assert!(tx.latency.get() > plain.latency.get());
        assert_eq!(tx.value, plain.value);
    }

    #[test]
    fn chunking_for_mlp_rows() {
        let v = vom();
        assert_eq!(v.chunk_count(784, 9).unwrap(), 88);
        assert_eq!(v.chunk_count(9, 9).unwrap(), 1);
        assert_eq!(v.chunk_count(10, 9).unwrap(), 2);
        assert!(v.chunk_count(10, 0).is_err());
    }
}
