//! Layer programs: whole (small) edge models through the optical
//! pipeline, not just the paper's first-layer story.
//!
//! A [`LayerProgram`] is an ordered list of [`Stage`]s executed
//! per frame:
//!
//! * [`Stage::Conv`] — the existing optical convolution path
//!   ([`OisaAccelerator::convolve_frame`]); stage 0 only, because the
//!   sensor-attached Optical Processing Core convolves *captured
//!   frames*, and every later stage's tensor is a flat vector.
//! * [`Stage::Quantize`] — a sensor-domain re-encode between optical
//!   stages, reusing `oisa_nn`'s quantiser blocks:
//!   [`QuantizeKind::Ternary`] (the paper's three-level VCSEL
//!   re-modulation, [`oisa_nn::quantize::TernaryActivation`]) or
//!   [`QuantizeKind::Levels`] (a signed nearest-level quantiser,
//!   [`oisa_nn::quantize::LevelQuantizer`]).
//! * [`Stage::Dense`] — a fully connected layer on the fabric via
//!   [`crate::mlp::matvec_parallel`]: at stage 0 the frame is sensed
//!   and ternary-encoded first ([`OisaAccelerator::dense_layer`]);
//!   mid-program the predecessor's `[0, 1]` activations drive the arms
//!   directly ([`OisaAccelerator::dense_vector`]).
//! * [`Stage::Activation`] — an elementwise non-linearity
//!   (currently [`ActivationKind::Relu`], matching
//!   [`oisa_nn::layer::Relu`] bit-for-bit).
//!
//! # Input-domain discipline
//!
//! The optical fabric only accepts activations in `[0, 1]`
//! ([`crate::mlp`]'s validation), so a mid-program [`Stage::Dense`]
//! needs a predecessor whose output range is provably `[0, 1]`.
//! [`LayerProgram::validate`] runs a small range inference to enforce
//! this *before* anything executes (or travels): a ternary quantise
//! always lands in `[0, 1]`; a signed level quantise lands in
//! `[-1, 1]`, which a ReLU folds back into `[0, 1]`; a raw conv/dense
//! output is unbounded and is rejected as dense input.
//!
//! # Determinism
//!
//! A program consumes one noise epoch per optical stage (conv or
//! dense) per frame — [`LayerProgram::epochs_per_frame`] — so frame
//! `i` of a stream draws from epochs `base + i·E .. base + (i+1)·E`
//! regardless of who executes it. Fabric entry state is handled by
//! [`OisaAccelerator::prewarm_program`]: staging every optical stage's
//! exit state (kernel prewarm + dense exit-state replay, in stage
//! order) reproduces the steady state a sequential per-frame loop
//! reaches after any complete frame, so a shard worker entering the
//! stream at *any* frame boundary pays bit-identical tuning cost.
//! That makes per-frame reports history-independent, which is what
//! lets [`crate::backend::ShardedBackend`] shard the frame axis and
//! merge [`ProgramFrameReport`]s bit-identically (inter-stage tensors
//! never cross a frame boundary).
//!
//! # Examples
//!
//! ```
//! use oisa_core::program::LayerProgram;
//! use oisa_core::{OisaAccelerator, OisaConfig};
//! use oisa_sensor::Frame;
//!
//! # fn main() -> Result<(), oisa_core::CoreError> {
//! let config = OisaConfig::small_test();
//! // 16×16 frames → 4 feature maps → ternary → 8-wide latent → ReLU.
//! let program = LayerProgram::autoencoder(16, 16, 4, 8, 7)?;
//! let mut accel = OisaAccelerator::new(config)?;
//! accel.prewarm_program(&program)?;
//! let report = accel.run_program_frame(&program, &Frame::constant(16, 16, 0.6)?)?;
//! assert_eq!(report.output.len(), 8); // the latent vector
//! assert!(report.output.iter().all(|&v| v >= 0.0)); // ReLU'd
//! # Ok(())
//! # }
//! ```

use oisa_nn::quantize::{LevelQuantizer, TernaryActivation};
use oisa_nn::tensor::Tensor;
use oisa_sensor::frame::Frame;
use serde::{Deserialize, Serialize};

use crate::accelerator::{ConvolutionReport, OisaAccelerator, OisaConfig};
use crate::mlp::MatVecReport;
use crate::{CoreError, Result};

/// The quantiser a [`Stage::Quantize`] applies, elementwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantizeKind {
    /// The paper's three-level VCSEL re-modulation
    /// ([`TernaryActivation::paper_default`]): thresholds 0.32/0.64,
    /// amplitudes 0.022/0.511/1.0. Output is always in `[0, 1]`, which
    /// is what licenses a following [`Stage::Dense`].
    Ternary,
    /// Signed nearest-level quantisation over `2^bits` uniform levels
    /// ([`LevelQuantizer::uniform`]); sign is preserved, so output is
    /// in `[-1, 1]` (values beyond ±1 clamp).
    Levels {
        /// Converter resolution, `1..=8` bits.
        bits: u8,
    },
}

/// The non-linearity a [`Stage::Activation`] applies, elementwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// `max(x, 0)` — bit-identical to [`oisa_nn::layer::Relu`].
    Relu,
}

/// One stage of a [`LayerProgram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stage {
    /// Optical convolution of the captured frame (stage 0 only).
    Conv {
        /// Kernel side (3, 5 or 7).
        k: usize,
        /// One `k²`-weight plane per output channel.
        kernels: Vec<Vec<f32>>,
    },
    /// Elementwise quantisation (no optical work, no noise epoch).
    Quantize(QuantizeKind),
    /// Dense (fully connected) layer on the fabric. At stage 0 the
    /// frame is sensed and ternary-encoded first; mid-program the
    /// predecessor's `[0, 1]` output drives the arms directly.
    Dense {
        /// Output width (one weight row per output value).
        rows: usize,
        /// Row-major `rows × cols` weights; `cols` is the predecessor
        /// stage's output length (the frame's pixel count at stage 0).
        matrix: Vec<f32>,
    },
    /// Elementwise activation (no optical work, no noise epoch).
    Activation(ActivationKind),
}

/// What is statically known about a stage's output values — the range
/// inference behind [`LayerProgram::validate`]'s dense-input rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueRange {
    /// Unbounded (raw conv/dense output).
    Unknown,
    /// Provably in `[0, 1]` — valid dense input.
    Unit,
    /// Provably in `[-1, 1]` (signed level quantise).
    Signed,
    /// Provably non-negative but unbounded above.
    NonNeg,
}

/// An ordered, validated list of [`Stage`]s — the unit of work a
/// [`crate::wire::ProgramJob`] carries and a
/// [`ComputeBackend`](crate::backend::ComputeBackend) executes
/// per frame. See the module docs for the execution and determinism
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProgram {
    /// The stages, executed in order on every frame.
    pub stages: Vec<Stage>,
}

impl LayerProgram {
    /// A program from explicit stages, validated.
    ///
    /// # Errors
    ///
    /// As [`LayerProgram::validate`].
    pub fn new(stages: Vec<Stage>) -> Result<Self> {
        let program = Self { stages };
        program.validate()?;
        Ok(program)
    }

    /// The OASIS-style in-sensor autoencoder *encoder*: a 3×3 optical
    /// convolution into `features` maps, the ternary sensor re-encode,
    /// a dense projection to a `latent`-wide code and a ReLU — the
    /// four-stage `conv → quantize → dense → activation` chain. The
    /// decoder is a plain float layer the *coordinator* runs on the
    /// shipped latent (see `examples/autoencoder.rs`); only the encoder
    /// executes on the optical fabric.
    ///
    /// Weights are deterministic He-normal draws from `seed`, so two
    /// hosts that agree on the arguments build bit-identical programs.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero `features`/`latent` or
    /// a frame smaller than the 3×3 kernel.
    pub fn autoencoder(
        width: usize,
        height: usize,
        features: usize,
        latent: usize,
        seed: u64,
    ) -> Result<Self> {
        if features == 0 || latent == 0 {
            return Err(CoreError::InvalidParameter(
                "autoencoder needs at least one feature map and one latent value".into(),
            ));
        }
        if width < 3 || height < 3 {
            return Err(CoreError::InvalidParameter(format!(
                "a 3x3 kernel does not fit a {width}x{height} frame"
            )));
        }
        let kernel_weights = Tensor::he_normal(vec![features, 9], 9, seed);
        let kernels: Vec<Vec<f32>> = kernel_weights
            .as_slice()
            .chunks(9)
            .map(<[f32]>::to_vec)
            .collect();
        let conv_out = features * (height - 2) * (width - 2);
        let matrix = Tensor::he_normal(vec![latent, conv_out], conv_out, seed.wrapping_add(1));
        Self::new(vec![
            Stage::Conv { k: 3, kernels },
            Stage::Quantize(QuantizeKind::Ternary),
            Stage::Dense {
                rows: latent,
                matrix: matrix.as_slice().to_vec(),
            },
            Stage::Activation(ActivationKind::Relu),
        ])
    }

    /// Structural validation: non-empty, stage 0 consumes the frame,
    /// conv only at stage 0, quantiser parameters in range, and the
    /// input-domain rule (module docs) — every mid-program dense stage
    /// must follow a provably-`[0, 1]` predecessor.
    ///
    /// Shape-vs-frame checks (kernel fit, dense matrix sizes) need the
    /// imager dimensions and live in [`LayerProgram::output_lens`];
    /// the wire decoder re-runs *this* check so a malformed program is
    /// a typed [`crate::wire::WireError::Malformed`] before execution.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] naming the offending stage.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(CoreError::InvalidParameter(
                "a layer program needs at least one stage".into(),
            ));
        }
        let mut range = ValueRange::Unknown;
        for (i, stage) in self.stages.iter().enumerate() {
            match stage {
                Stage::Conv { k, kernels } => {
                    if i != 0 {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage {i}: convolution is only supported at stage 0 \
                             (the sensor-attached layer)"
                        )));
                    }
                    if kernels.is_empty() {
                        return Err(CoreError::InvalidParameter(
                            "stage 0: no kernels supplied".into(),
                        ));
                    }
                    if kernels.iter().any(|kn| kn.len() != k * k) {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage 0: every kernel must have {} weights",
                            k * k
                        )));
                    }
                    range = ValueRange::Unknown;
                }
                Stage::Dense { rows, matrix } => {
                    if *rows == 0 || matrix.is_empty() {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage {i}: dense layer needs at least one row and one weight"
                        )));
                    }
                    if i > 0 && range != ValueRange::Unit {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage {i}: a mid-program dense stage needs input provably in \
                             [0, 1]; precede it with a ternary quantize (or a ReLU over a \
                             signed level quantize)"
                        )));
                    }
                    range = ValueRange::Unknown;
                }
                Stage::Quantize(kind) => {
                    if i == 0 {
                        return Err(CoreError::InvalidParameter(
                            "stage 0 must consume the frame (Conv or Dense), got a Quantize".into(),
                        ));
                    }
                    range = match kind {
                        QuantizeKind::Ternary => ValueRange::Unit,
                        QuantizeKind::Levels { bits } => {
                            if !(1..=8).contains(bits) {
                                return Err(CoreError::InvalidParameter(format!(
                                    "stage {i}: quantiser bits {bits} outside 1..=8"
                                )));
                            }
                            ValueRange::Signed
                        }
                    };
                }
                Stage::Activation(ActivationKind::Relu) => {
                    if i == 0 {
                        return Err(CoreError::InvalidParameter(
                            "stage 0 must consume the frame (Conv or Dense), got an Activation"
                                .into(),
                        ));
                    }
                    range = match range {
                        // ReLU folds [-1, 1] into [0, 1] and keeps
                        // [0, 1] where it is.
                        ValueRange::Unit | ValueRange::Signed => ValueRange::Unit,
                        ValueRange::NonNeg | ValueRange::Unknown => ValueRange::NonNeg,
                    };
                }
            }
        }
        Ok(())
    }

    /// Per-stage output lengths for `width × height` input frames,
    /// checking every shape along the way (kernel fit, dense matrix
    /// sizes against the inferred column counts). The final entry is
    /// the program's output width.
    ///
    /// # Errors
    ///
    /// As [`LayerProgram::validate`], plus
    /// [`CoreError::InvalidParameter`] for any stage whose shape does
    /// not meet its input.
    pub fn output_lens(&self, width: usize, height: usize) -> Result<Vec<usize>> {
        self.validate()?;
        let mut lens = Vec::with_capacity(self.stages.len());
        let mut len = 0usize;
        for (i, stage) in self.stages.iter().enumerate() {
            len = match stage {
                Stage::Conv { k, kernels } => {
                    if height < *k || width < *k {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage 0: a {k}x{k} kernel does not fit a {width}x{height} frame"
                        )));
                    }
                    kernels.len() * (height - k + 1) * (width - k + 1)
                }
                Stage::Dense { rows, matrix } => {
                    let cols = if i == 0 { width * height } else { len };
                    if matrix.len() != rows * cols {
                        return Err(CoreError::InvalidParameter(format!(
                            "stage {i}: dense matrix has {} weights for a {rows}x{cols} layer",
                            matrix.len()
                        )));
                    }
                    *rows
                }
                Stage::Quantize(_) | Stage::Activation(_) => len,
            };
            lens.push(len);
        }
        Ok(lens)
    }

    /// Noise epochs one frame consumes: one per optical stage (conv or
    /// dense). Elementwise stages draw no noise. This is the stride the
    /// sharding epoch arithmetic uses: frame `i` starts at epoch
    /// `base + i · epochs_per_frame()`.
    #[must_use]
    pub fn epochs_per_frame(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| matches!(s, Stage::Conv { .. } | Stage::Dense { .. }))
            .count() as u64
    }
}

/// Per-stage trace of one frame's program execution. Elementwise
/// stages are free (no optical work), so they carry no report body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageReport {
    /// The optical convolution's full report (feature maps, energy,
    /// timeline).
    Conv(ConvolutionReport),
    /// An elementwise quantise ran (coordinator/peripheral domain —
    /// no fabric energy).
    Quantize,
    /// The dense stage's report (output vector, chunk count, energy,
    /// latency).
    Dense(MatVecReport),
    /// An elementwise activation ran (no fabric energy).
    Activation,
}

/// One frame's complete pass through a [`LayerProgram`]: the per-stage
/// trace plus the final output vector. The unit a
/// [`crate::wire::ProgramReport`] ships back and the sharded merge
/// reassembles in frame order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramFrameReport {
    /// One entry per program stage, in stage order.
    pub stages: Vec<StageReport>,
    /// The final stage's output values.
    pub output: Vec<f32>,
}

impl OisaAccelerator {
    /// Stages the fabric into the steady state a sequential per-frame
    /// loop over `program` reaches after any complete frame — kernel
    /// prewarm for the conv stage ([`OisaAccelerator::prewarm`]) plus
    /// a dense exit-state replay per dense stage
    /// ([`OisaAccelerator::prewarm_dense`]), in stage order — without
    /// computing anything or consuming noise epochs.
    ///
    /// Run this once before a program's first frame (both the local
    /// backend and shard workers do): because ring state after a load
    /// depends only on that load's weights, every frame thereafter
    /// enters the fabric in this exact state, which makes per-frame
    /// reports history-independent and shard merges bit-identical.
    ///
    /// # Errors
    ///
    /// Validation errors from [`LayerProgram::output_lens`]; substrate
    /// errors from staging.
    pub fn prewarm_program(&mut self, program: &LayerProgram) -> Result<()> {
        let (width, height) = (self.config().imager.width, self.config().imager.height);
        let lens = program.output_lens(width, height)?;
        let mut prev_len = width * height;
        for (i, stage) in program.stages.iter().enumerate() {
            match stage {
                Stage::Conv { k, kernels } => self.prewarm(kernels, *k)?,
                Stage::Dense { rows, matrix } => {
                    let cols = if i == 0 { width * height } else { prev_len };
                    self.prewarm_dense(matrix, *rows, cols)?;
                }
                Stage::Quantize(_) | Stage::Activation(_) => {}
            }
            prev_len = lens[i];
        }
        Ok(())
    }

    /// Executes `program` on one captured frame, stage by stage,
    /// returning the per-stage trace and the final output vector.
    ///
    /// Optical stages each consume one noise epoch
    /// ([`LayerProgram::epochs_per_frame`] in total); elementwise
    /// stages run in the electrical domain and are free. Call
    /// [`OisaAccelerator::prewarm_program`] once before the first
    /// frame of a stream for history-independent reports (module
    /// docs).
    ///
    /// # Errors
    ///
    /// Program validation errors; sensing, shape and fabric failures
    /// from the optical stages.
    pub fn run_program_frame(
        &mut self,
        program: &LayerProgram,
        frame: &Frame,
    ) -> Result<ProgramFrameReport> {
        program.validate()?;
        let mut stages = Vec::with_capacity(program.stages.len());
        let mut values: Vec<f32> = Vec::new();
        for (i, stage) in program.stages.iter().enumerate() {
            match stage {
                Stage::Conv { k, kernels } => {
                    let report = self.convolve_frame(frame, kernels, *k)?;
                    values = report.output.concat();
                    stages.push(StageReport::Conv(report));
                }
                Stage::Dense { rows, matrix } => {
                    let report = if i == 0 {
                        self.dense_layer(frame, matrix, *rows)?
                    } else {
                        let input: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
                        self.dense_vector(&input, matrix, *rows)?
                    };
                    values.clone_from(&report.output);
                    stages.push(StageReport::Dense(report));
                }
                Stage::Quantize(QuantizeKind::Ternary) => {
                    let t = TernaryActivation::paper_default();
                    for v in &mut values {
                        *v = t.encode(*v);
                    }
                    stages.push(StageReport::Quantize);
                }
                Stage::Quantize(QuantizeKind::Levels { bits }) => {
                    let q = LevelQuantizer::uniform(*bits)?;
                    for v in &mut values {
                        *v = q.nearest(*v);
                    }
                    stages.push(StageReport::Quantize);
                }
                Stage::Activation(ActivationKind::Relu) => {
                    for v in &mut values {
                        *v = v.max(0.0);
                    }
                    stages.push(StageReport::Activation);
                }
            }
        }
        Ok(ProgramFrameReport {
            stages,
            output: values,
        })
    }
}

/// The sequential oracle every program-capable backend is tested
/// against: a fresh accelerator from `config`, epochs aligned to
/// `base_epoch`, one [`OisaAccelerator::prewarm_program`], then a
/// plain per-frame loop. Bit-identical to a
/// [`ShardedBackend`](crate::backend::ShardedBackend) merge over any
/// fleet shape, by the module-docs argument.
///
/// # Errors
///
/// As [`OisaAccelerator::run_program_frame`].
pub fn run_reference(
    config: &OisaConfig,
    base_epoch: u64,
    program: &LayerProgram,
    frames: &[Frame],
) -> Result<Vec<ProgramFrameReport>> {
    let mut accel = OisaAccelerator::new(*config)?;
    accel.align_noise_epoch(base_epoch)?;
    accel.prewarm_program(program)?;
    frames
        .iter()
        .map(|frame| accel.run_program_frame(program, frame))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OisaConfig {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = oisa_device::noise::NoiseConfig::paper_default();
        cfg.seed = 21;
        cfg
    }

    fn frame(phase: usize) -> Frame {
        let data: Vec<f64> = (0..256)
            .map(|i| ((i * (phase + 3)) % 19) as f64 / 19.0)
            .collect();
        Frame::new(16, 16, data).unwrap()
    }

    #[test]
    fn validation_rejects_malformed_programs() {
        // Empty.
        assert!(LayerProgram::new(Vec::new()).is_err());
        // Stage 0 must consume the frame.
        assert!(LayerProgram::new(vec![Stage::Quantize(QuantizeKind::Ternary)]).is_err());
        assert!(LayerProgram::new(vec![Stage::Activation(ActivationKind::Relu)]).is_err());
        // Conv after stage 0.
        let conv = Stage::Conv {
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
        };
        assert!(LayerProgram::new(vec![conv.clone(), conv.clone()]).is_err());
        // Raw conv output is not a valid dense input...
        let dense = Stage::Dense {
            rows: 2,
            matrix: vec![0.1f32; 2 * 4 * 196],
        };
        assert!(LayerProgram::new(vec![conv.clone(), dense.clone()]).is_err());
        // ...a signed level quantise alone is not either...
        assert!(LayerProgram::new(vec![
            conv.clone(),
            Stage::Quantize(QuantizeKind::Levels { bits: 2 }),
            dense.clone(),
        ])
        .is_err());
        // ...but ternary, or signed+ReLU, licenses it.
        let conv4 = Stage::Conv {
            k: 3,
            kernels: vec![vec![0.5f32; 9]; 4],
        };
        LayerProgram::new(vec![
            conv4.clone(),
            Stage::Quantize(QuantizeKind::Ternary),
            dense.clone(),
        ])
        .unwrap();
        LayerProgram::new(vec![
            conv4,
            Stage::Quantize(QuantizeKind::Levels { bits: 3 }),
            Stage::Activation(ActivationKind::Relu),
            dense,
        ])
        .unwrap();
        // Quantiser bits out of range.
        let conv = Stage::Conv {
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
        };
        assert!(LayerProgram::new(vec![
            conv,
            Stage::Quantize(QuantizeKind::Levels { bits: 0 })
        ])
        .is_err());
    }

    #[test]
    fn output_lens_tracks_shapes_and_rejects_mismatches() {
        let program = LayerProgram::autoencoder(16, 16, 4, 8, 7).unwrap();
        let lens = program.output_lens(16, 16).unwrap();
        // conv: 4 maps of 14×14; quantize keeps length; dense: 8; relu: 8.
        assert_eq!(lens, vec![4 * 196, 4 * 196, 8, 8]);
        assert_eq!(program.epochs_per_frame(), 2);
        // The same program against mismatched frame dims fails shape
        // checking (the dense matrix no longer matches conv's output).
        assert!(program.output_lens(12, 12).is_err());
        // Dense-first: cols is the pixel count.
        let dense_first = LayerProgram::new(vec![Stage::Dense {
            rows: 3,
            matrix: vec![0.1f32; 3 * 256],
        }])
        .unwrap();
        assert_eq!(dense_first.output_lens(16, 16).unwrap(), vec![3]);
        assert_eq!(dense_first.epochs_per_frame(), 1);
        assert!(dense_first.output_lens(8, 8).is_err());
    }

    #[test]
    fn relu_stage_matches_oisa_nn_relu() {
        use oisa_nn::layer::{Layer, Relu};
        let values = vec![-1.5f32, -0.0, 0.0, 0.25, 3.5, f32::MIN_POSITIVE];
        let tensor = Tensor::from_vec(vec![values.len()], values.clone()).unwrap();
        let via_nn = Relu::new().forward(&tensor, false).unwrap();
        let via_stage: Vec<f32> = values.iter().map(|v| v.max(0.0)).collect();
        assert_eq!(via_nn.as_slice(), &via_stage[..]);
    }

    #[test]
    fn program_runs_are_history_independent_after_prewarm() {
        let program = LayerProgram::autoencoder(16, 16, 3, 6, 9).unwrap();
        // A fresh accelerator and one that already ran other work reach
        // identical reports once prewarm_program establishes the
        // steady state (epochs aligned).
        let mut fresh = OisaAccelerator::new(cfg()).unwrap();
        fresh.prewarm_program(&program).unwrap();
        let a = fresh.run_program_frame(&program, &frame(0)).unwrap();
        let mut used = OisaAccelerator::new(cfg()).unwrap();
        used.convolve_frame(&frame(4), &[vec![0.7f32; 25]], 5)
            .unwrap();
        used.dense_layer(&frame(5), &vec![0.2f32; 2 * 256], 2)
            .unwrap();
        used.align_noise_epoch(10).unwrap();
        // Re-align is impossible backwards; instead compare frame 1 of
        // a sequential run against the used accelerator's next frame
        // at the same epoch.
        let mut sequential = OisaAccelerator::new(cfg()).unwrap();
        sequential.align_noise_epoch(10).unwrap();
        sequential.prewarm_program(&program).unwrap();
        let seq = sequential.run_program_frame(&program, &frame(1)).unwrap();
        used.prewarm_program(&program).unwrap();
        let replayed = used.run_program_frame(&program, &frame(1)).unwrap();
        assert_eq!(seq, replayed, "prewarm_program must erase fabric history");
        assert_ne!(a, seq, "different epochs/frames must differ");
    }

    #[test]
    fn conv_only_program_matches_the_conv_job_path() {
        let kernels = vec![vec![0.4f32; 9], vec![-0.3f32; 9]];
        let program = LayerProgram::new(vec![Stage::Conv {
            k: 3,
            kernels: kernels.clone(),
        }])
        .unwrap();
        let frames: Vec<Frame> = (0..3).map(frame).collect();
        let via_program = run_reference(&cfg(), 0, &program, &frames).unwrap();
        let mut accel = OisaAccelerator::new(cfg()).unwrap();
        let via_batch = accel.convolve_frames(&frames, &kernels, 3).unwrap();
        for (index, (p, b)) in via_program.iter().zip(&via_batch).enumerate() {
            assert_eq!(p.stages.len(), 1);
            match &p.stages[0] {
                StageReport::Conv(report) => {
                    // Feature maps are bit-identical on every frame.
                    // Full reports (incl. energy) match from frame 1
                    // on: the batch path enters frame 0 cold and pays
                    // the staging tuning there, while a program
                    // prewarms to steady state before any frame.
                    assert_eq!(report.output, b.output);
                    if index > 0 {
                        assert_eq!(report, b);
                    }
                }
                other => panic!("expected a conv stage report, got {other:?}"),
            }
            assert_eq!(p.output, b.output.concat());
        }
    }

    #[test]
    fn epochs_advance_by_program_stride() {
        let program = LayerProgram::autoencoder(16, 16, 2, 4, 3).unwrap();
        let mut accel = OisaAccelerator::new(cfg()).unwrap();
        accel.prewarm_program(&program).unwrap();
        assert_eq!(accel.next_noise_epoch(), 0, "prewarm consumes no epochs");
        accel.run_program_frame(&program, &frame(0)).unwrap();
        assert_eq!(accel.next_noise_epoch(), program.epochs_per_frame());
        accel.run_program_frame(&program, &frame(1)).unwrap();
        assert_eq!(accel.next_noise_epoch(), 2 * program.epochs_per_frame());
    }

    #[test]
    fn autoencoder_is_deterministic_in_its_seed() {
        let a = LayerProgram::autoencoder(16, 16, 4, 8, 7).unwrap();
        let b = LayerProgram::autoencoder(16, 16, 4, 8, 7).unwrap();
        let c = LayerProgram::autoencoder(16, 16, 4, 8, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(LayerProgram::autoencoder(16, 16, 0, 8, 7).is_err());
        assert!(LayerProgram::autoencoder(2, 2, 4, 8, 7).is_err());
    }
}
