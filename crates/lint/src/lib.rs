//! # oisa-lint — the in-tree invariant checker
//!
//! A dependency-free static-analysis pass over the OISA workspace. A
//! small Rust lexer ([`lexer`]) resolves comments, strings, raw
//! strings and lifetimes so the rule engine ([`rules`]) matches real
//! tokens, never raw text. On top, a recursive-descent parser
//! ([`parser`]) recovers items, bodies and call sites, and a
//! workspace model ([`graph`]) resolves an approximate cross-crate
//! call graph — the flow rules ([`flow`]) analyze lock-acquisition
//! order, panic reachability from serving entry points,
//! wall-clock/entropy taint into the wire codec, and crate layering,
//! alongside the five per-file rules (unsafe hygiene, counter-based
//! determinism, bit-exact float transport, wire-tag version gating,
//! centralized thread spawning).
//!
//! ## Quickstart
//!
//! ```text
//! cargo run --release -p oisa_lint --bin oisa-lint            # human output
//! cargo run --release -p oisa_lint --bin oisa-lint -- --json  # CI artifact
//! cargo run --release -p oisa_lint --bin oisa-lint -- self-test
//! ```
//!
//! Run from anywhere inside the workspace: the binary ascends from the
//! current directory until it finds `lint-allow.toml` (override with
//! `--root <dir>` / `--allow <file>`). Exit code 0 means clean, 1 means
//! non-allowlisted findings, 2 means the tool itself failed (bad
//! allowlist, unreadable tree).
//!
//! ## Interpreting findings
//!
//! Each finding is `path:line:col: [rule-id] message`. First try to fix the
//! code — that is always preferred. When a violation is genuinely
//! intended (e.g. a lock-poison `expect` that *should* crash the
//! process), add a justified entry to `lint-allow.toml`:
//!
//! ```toml
//! [[allow]]
//! rule = "panic-reachability"
//! path = "crates/core/src/serving.rs"
//! max = 20    # budget: the count may only go down
//! justification = "lock-poison expects: a poisoned registry means a crashed worker"
//! ```
//!
//! `line = N` pins a single finding instead of a budget. Stale entries
//! (matching nothing) are warnings, so ratchets tighten naturally. The
//! full rule catalogue lives in `crates/lint/README.md`.

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod allowlist;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod selftest;

use std::fs;
use std::path::{Path, PathBuf};

use allowlist::{Allowlist, Applied};
use rules::{Finding, SourceFile};

/// Top-level directories a lint run walks, relative to the workspace
/// root. Shims are deliberately out of scope: they emulate external
/// crates and follow those crates' idioms, not ours.
pub const WALK_ROOTS: &[&str] = &["crates", "src", "examples"];

/// Directory names never descended into.
const SKIP_DIR_NAMES: &[&str] = &["target", ".git"];

/// Workspace-relative directory prefixes never descended into. The
/// lint fixtures intentionally violate every rule.
const SKIP_DIR_PREFIXES: &[&str] = &["crates/lint/fixtures"];

/// Collects every `.rs` file in scope, workspace-relative and sorted.
pub fn source_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relative(root, &path);
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIR_NAMES.contains(&name.as_ref())
                || SKIP_DIR_PREFIXES.iter().any(|p| rel == *p)
            {
                continue;
            }
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(PathBuf::from(rel));
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `path`.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lexes, parses and rule-checks every in-scope file under `root`:
/// the per-file rules run on each token stream, the flow rules
/// ([`flow`]) run once over the whole parsed workspace.
pub fn collect_findings(root: &Path) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for rel in source_files(root)? {
        let abs = root.join(&rel);
        let source =
            fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        let rel = rel.to_string_lossy();
        files.push(SourceFile::parse(&rel, &source));
    }
    let mut findings: Vec<Finding> = files.iter().flat_map(rules::check_file).collect();
    findings.extend(flow::check_workspace_files(&files));
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Full run: walk, check, subtract the allowlist at `allow_path`.
pub fn check_workspace(root: &Path, allow_path: &Path) -> Result<Applied, String> {
    let text = fs::read_to_string(allow_path)
        .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
    let allow = Allowlist::parse(&text)?;
    Ok(allow.apply(collect_findings(root)?))
}

/// Ascends from `start` to the first directory containing
/// `lint-allow.toml` — the workspace root for lint purposes.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint-allow.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
