// Fixture: a colliding tag value plus a tag skipped by the gating
// table — both of the regressions a "just add a message" PR can make.
pub const TAG_JOB: u8 = 1;
pub const TAG_RESULT: u8 = 2;
pub const TAG_CLASH: u8 = 2;

pub const TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_JOB, 2), (TAG_CLASH, 3)];
