//! Serving demo: frames arriving over time are queued, batched and run
//! through the in-sensor layer by `oisa_core::serving::ServingEngine`.
//!
//! A simulated 16×16 sensor produces a burst of frames; the engine
//! forms batches on a deadline/size policy and serves per-frame
//! `ConvolutionReport`s through completion handles. The demo then
//! prints the serving stats (queue-wait percentiles, batch-size
//! histogram, throughput) and verifies the determinism guarantee: every
//! served report is bit-identical to the same frame run through the
//! sequential per-frame engine.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use oisa::core::serving::{ServingConfig, ServingEngine};
use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;

const FRAMES: usize = 24;

/// A moving bright bar over a dim background — frame `t` of the burst.
fn capture(t: usize) -> Frame {
    let mut pixels = vec![0.1f64; 16 * 16];
    let row = t % 14 + 1;
    for x in 0..16 {
        pixels[row * 16 + x] = 0.95;
        pixels[(row - 1) * 16 + x] = 0.55;
    }
    Frame::new(16, 16, pixels).expect("valid frame")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = OisaConfig::small_test();
    cfg.noise = NoiseConfig::paper_default();
    cfg.seed = 11;
    let kernels = vec![
        vec![-1.0f32, -1.0, -1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0], // horizontal edge
        vec![1.0f32 / 9.0; 9],                                   // blur
    ];

    println!("OISA serving front end");
    println!("======================\n");

    let serving = ServingConfig {
        max_batch: 6,
        deadline: Duration::from_millis(2),
        queue_depth: 16,
    };
    println!(
        "knobs: max_batch={} deadline={:?} queue_depth={}\n",
        serving.max_batch, serving.deadline, serving.queue_depth
    );

    let engine = ServingEngine::new(OisaAccelerator::new(cfg)?, kernels.clone(), 3, serving)?;

    // The "sensor": submit the burst, keeping handles in arrival order.
    // `submit` blocks if the queue hits its depth — backpressure, not
    // frame loss.
    let handles: Vec<_> = (0..FRAMES)
        .map(|t| engine.submit(capture(t)).expect("submit"))
        .collect();

    // Harvest per-request results.
    let mut peak_sum = 0.0f32;
    let mut served = Vec::with_capacity(FRAMES);
    for (t, handle) in handles.into_iter().enumerate() {
        let report = handle.wait()?;
        let peak = report.output[0]
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        if t < 4 {
            println!(
                "frame {t:2}: edge peak {peak:6.2}, energy {:.3}",
                report.energy.total()
            );
        }
        peak_sum += peak;
        served.push(report);
    }
    println!(
        "... ({FRAMES} frames served, mean edge peak {:.2})",
        peak_sum / FRAMES as f32
    );

    let (_backend, stats) = engine.shutdown();
    println!("\nserving stats:");
    println!("  frames completed : {}", stats.frames_completed);
    println!(
        "  batches          : {} (size-launched {}, deadline-launched {}, drained {})",
        stats.batches_run, stats.size_batches, stats.deadline_batches, stats.drain_batches
    );
    let histogram: Vec<String> = stats
        .batch_size_histogram
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(size, n)| format!("{n}x{size}-frame"))
        .collect();
    println!("  batch sizes      : {}", histogram.join(", "));
    println!(
        "  queue wait       : p50 {:.0} us, p99 {:.0} us, max {:.0} us",
        stats.queue_wait_p50_us, stats.queue_wait_p99_us, stats.queue_wait_max_us
    );
    println!("  throughput       : {:.1} frames/s", stats.frames_per_sec);

    // Determinism: batching moved wall clock, never physics. The same
    // frames through the sequential per-frame engine give bit-identical
    // reports.
    let mut serial = OisaAccelerator::new(cfg)?;
    for (t, report) in served.iter().enumerate() {
        let oracle = serial.convolve_frame_sequential(&capture(t), &kernels, 3)?;
        assert_eq!(report, &oracle, "frame {t} must be bit-identical");
    }
    println!("\ndeterminism: all {FRAMES} served reports bit-identical to the sequential loop");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The demo's full pipeline — serve, account, verify — stays green.
    #[test]
    fn serving_demo_runs_and_verifies() {
        main().expect("serving example");
    }
}
