//! Procedural raster rendering for the synthetic datasets.
//!
//! Digits are drawn as seven-segment glyphs with per-sample jitter;
//! object classes are textured geometric masks. Everything draws into a
//! caller-provided `[C, H, W]` slice with values clamped to `[0, 1]`.

use rand::rngs::StdRng;
use rand::Rng;

use crate::{DatasetFamily, DatasetSpec};

/// Segment layout of a seven-segment digit:
///
/// ```text
///  _0_
/// 5   1
///  _6_
/// 4   2
///  _3_
/// ```
const SEGMENTS: [[bool; 7]; 10] = [
    // 0      1      2      3      4      5      6
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Object classes drawn by the CIFAR-like generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeClass {
    /// Filled disk.
    Disk,
    /// Ring (annulus).
    Ring,
    /// Filled square.
    Square,
    /// Square outline.
    Frame,
    /// Filled triangle.
    Triangle,
    /// Plus / cross.
    Cross,
    /// Horizontal bars.
    HBars,
    /// Vertical bars.
    VBars,
    /// Checkerboard.
    Checker,
    /// Diagonal stripe.
    Diagonal,
}

impl ShapeClass {
    const BASE: [Self; 10] = [
        Self::Disk,
        Self::Ring,
        Self::Square,
        Self::Frame,
        Self::Triangle,
        Self::Cross,
        Self::HBars,
        Self::VBars,
        Self::Checker,
        Self::Diagonal,
    ];

    /// Maximum class count of the objects family: 10 shapes × 2 texture
    /// variants.
    #[must_use]
    pub fn max_classes() -> usize {
        Self::BASE.len() * 2
    }

    /// Shape and texture-variant for a class index.
    #[must_use]
    pub fn for_class(class: usize) -> (Self, bool) {
        let shape = Self::BASE[class % Self::BASE.len()];
        let textured = class >= Self::BASE.len();
        (shape, textured)
    }

    /// Whether `(u, v)` (normalised [−1, 1] coordinates) is inside the
    /// shape.
    #[must_use]
    pub fn contains(self, u: f64, v: f64) -> bool {
        let r = (u * u + v * v).sqrt();
        match self {
            Self::Disk => r < 0.7,
            Self::Ring => (0.4..0.75).contains(&r),
            Self::Square => u.abs() < 0.6 && v.abs() < 0.6,
            Self::Frame => u.abs() < 0.72 && v.abs() < 0.72 && (u.abs() > 0.42 || v.abs() > 0.42),
            Self::Triangle => v > -0.6 && v < 0.7 && u.abs() < (0.7 - v) * 0.6,
            Self::Cross => u.abs() < 0.22 || v.abs() < 0.22,
            Self::HBars => ((v + 1.0) * 3.0).rem_euclid(2.0) < 1.0,
            Self::VBars => ((u + 1.0) * 3.0).rem_euclid(2.0) < 1.0,
            Self::Checker => {
                (((u + 1.0) * 2.0).rem_euclid(2.0) < 1.0)
                    == (((v + 1.0) * 2.0).rem_euclid(2.0) < 1.0)
            }
            Self::Diagonal => (u - v).abs() < 0.35,
        }
    }
}

/// Renders one sample into `img` (layout `[C, H, W]`, values `[0, 1]`).
pub(crate) fn render_sample(spec: &DatasetSpec, class: usize, img: &mut [f32], rng: &mut StdRng) {
    match spec.family {
        DatasetFamily::Digits => render_digit(spec, class, img, rng, false),
        DatasetFamily::HouseNumbers => render_digit(spec, class, img, rng, true),
        DatasetFamily::Objects => render_object(spec, class, img, rng),
    }
    // Additive noise and clamping, on every channel.
    for v in img.iter_mut() {
        let n = (rng.gen::<f32>() - 0.5) * 2.0 * spec.noise as f32;
        *v = (*v + n).clamp(0.0, 1.0);
    }
}

fn channel_bases(spec: &DatasetSpec, rng: &mut StdRng, cluttered: bool) -> Vec<f32> {
    (0..spec.channels)
        .map(|_| {
            if cluttered {
                rng.gen_range(0.05..0.35)
            } else {
                rng.gen_range(0.0..0.08)
            }
        })
        .collect()
}

fn render_digit(
    spec: &DatasetSpec,
    class: usize,
    img: &mut [f32],
    rng: &mut StdRng,
    cluttered: bool,
) {
    let n = spec.img;
    let bases = channel_bases(spec, rng, cluttered);
    for c in 0..spec.channels {
        img[c * n * n..(c + 1) * n * n].fill(bases[c]);
    }
    if cluttered {
        for _ in 0..spec.clutter {
            random_stroke(spec, img, rng);
        }
    }
    // Glyph box with jitter.
    let margin = n / 8;
    let jitter_x = rng.gen_range(0..=margin.max(1));
    let jitter_y = rng.gen_range(0..=margin.max(1));
    let gw = n - 2 * margin;
    let gh = n - 2 * margin;
    let thickness = (n / 8).max(1) + usize::from(rng.gen_bool(0.3));
    let level = (spec.contrast as f32 + rng.gen_range(-0.1..0.1f32)).clamp(0.3, 1.0);
    let segs = SEGMENTS[class % 10];
    // Segment endpoints in glyph-normalised coordinates.
    let h = |y: usize, x0: usize, x1: usize, img: &mut [f32]| {
        for x in x0..x1 {
            for t in 0..thickness {
                put(spec, img, y + t, x, level, jitter_y, jitter_x);
            }
        }
    };
    let v = |x: usize, y0: usize, y1: usize, img: &mut [f32]| {
        for y in y0..y1 {
            for t in 0..thickness {
                put(spec, img, y, x + t, level, jitter_y, jitter_x);
            }
        }
    };
    let mid = gh / 2;
    if segs[0] {
        h(0, 0, gw, img);
    }
    if segs[3] {
        h(gh - thickness, 0, gw, img);
    }
    if segs[6] {
        h(mid, 0, gw, img);
    }
    if segs[5] {
        v(0, 0, mid, img);
    }
    if segs[4] {
        v(0, mid, gh, img);
    }
    if segs[1] {
        v(gw - thickness, 0, mid, img);
    }
    if segs[2] {
        v(gw - thickness, mid, gh, img);
    }
}

/// Writes one glyph pixel (glyph coordinates + jitter offset) into every
/// channel with per-channel tinting.
fn put(
    spec: &DatasetSpec,
    img: &mut [f32],
    gy: usize,
    gx: usize,
    level: f32,
    off_y: usize,
    off_x: usize,
) {
    let n = spec.img;
    let y = gy + off_y + n / 8;
    let x = gx + off_x + n / 8;
    if y >= n || x >= n {
        return;
    }
    for c in 0..spec.channels {
        // Slight per-channel tint keeps RGB sets non-degenerate.
        let tint = 1.0 - 0.12 * c as f32;
        img[c * n * n + y * n + x] = (level * tint).clamp(0.0, 1.0);
    }
}

fn random_stroke(spec: &DatasetSpec, img: &mut [f32], rng: &mut StdRng) {
    let n = spec.img;
    let horizontal: bool = rng.gen();
    let pos = rng.gen_range(0..n);
    let len = rng.gen_range(n / 4..n / 2);
    let start = rng.gen_range(0..n.saturating_sub(len).max(1));
    let level = rng.gen_range(0.2..0.5f32);
    let c = rng.gen_range(0..spec.channels);
    for k in start..(start + len).min(n) {
        let (y, x) = if horizontal { (pos, k) } else { (k, pos) };
        img[c * n * n + y * n + x] = level;
    }
}

fn render_object(spec: &DatasetSpec, class: usize, img: &mut [f32], rng: &mut StdRng) {
    let n = spec.img;
    let (shape, textured) = ShapeClass::for_class(class);
    let bases = channel_bases(spec, rng, true);
    for c in 0..spec.channels {
        img[c * n * n..(c + 1) * n * n].fill(bases[c]);
    }
    for _ in 0..spec.clutter {
        random_stroke(spec, img, rng);
    }
    // Random scale / offset.
    let scale = rng.gen_range(0.75..1.0);
    let cx = rng.gen_range(-0.15..0.15);
    let cy = rng.gen_range(-0.15..0.15);
    let level = (spec.contrast as f32 + rng.gen_range(-0.08..0.08f32)).clamp(0.25, 1.0);
    // Per-channel color weights distinguish texture variants.
    let color: Vec<f32> = (0..spec.channels)
        .map(|c| {
            if textured {
                0.5 + 0.5 * ((c + class) % 2) as f32
            } else {
                1.0 - 0.15 * c as f32
            }
        })
        .collect();
    for y in 0..n {
        for x in 0..n {
            let u = ((x as f64 / (n - 1) as f64) * 2.0 - 1.0 - cx) / scale;
            let v = ((y as f64 / (n - 1) as f64) * 2.0 - 1.0 - cy) / scale;
            if !shape.contains(u, v) {
                continue;
            }
            // Texture variant: multiplicative grid modulation.
            let tex = if textured {
                if (x / 2 + y / 2) % 2 == 0 {
                    1.0
                } else {
                    0.55
                }
            } else {
                1.0
            };
            for c in 0..spec.channels {
                img[c * n * n + y * n + x] = (level * color[c] * tex).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_segment_patterns_distinct() {
        for (a, sa) in SEGMENTS.iter().enumerate() {
            for (b, sb) in SEGMENTS.iter().enumerate().skip(a + 1) {
                assert_ne!(sa, sb, "digits {a} and {b} collide");
            }
        }
    }

    #[test]
    fn shape_classes_cover_and_differ() {
        assert_eq!(ShapeClass::max_classes(), 20);
        // Sample a grid and check each pair of shapes differs somewhere.
        let grid: Vec<(f64, f64)> = (0..16)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| (i as f64 / 7.5 - 1.0, j as f64 / 7.5 - 1.0))
            .collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let (sa, _) = ShapeClass::for_class(a);
                let (sb, _) = ShapeClass::for_class(b);
                let differs = grid
                    .iter()
                    .any(|&(u, v)| sa.contains(u, v) != sb.contains(u, v));
                assert!(differs, "shapes {sa:?} and {sb:?} identical on grid");
            }
        }
    }

    #[test]
    fn texture_variant_maps_to_upper_classes() {
        let (s0, t0) = ShapeClass::for_class(0);
        let (s10, t10) = ShapeClass::for_class(10);
        assert_eq!(s0, s10);
        assert!(!t0);
        assert!(t10);
    }

    #[test]
    fn rendering_stays_in_bounds() {
        let spec = DatasetSpec::house_numbers();
        let mut rng = StdRng::seed_from_u64(11);
        let mut img = vec![0.0f32; spec.channels * spec.img * spec.img];
        for class in 0..10 {
            img.fill(0.0);
            render_sample(&spec, class, &mut img, &mut rng);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
            // A digit must light up some foreground.
            let bright = img.iter().filter(|&&v| v > 0.4).count();
            assert!(bright > 5, "class {class}: only {bright} bright pixels");
        }
    }
}
