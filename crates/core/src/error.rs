//! `OisaError` — the one error type backend and serving callers handle.
//!
//! The execution stack grew errors layer by layer: [`CoreError`] from
//! the architecture, [`DeviceError`] from the
//! substrate, [`SubmitError`](crate::serving::SubmitError) from the
//! serving queue and [`WireError`] from the
//! sharding protocol. A caller driving a [`ComputeBackend`] through all
//! of them previously needed four `match` arms per call site;
//! [`OisaError`] folds them into one `#[non_exhaustive]` enum with
//! `From` impls, so `?` composes across every layer.
//!
//! [`ComputeBackend`]: crate::backend::ComputeBackend

use std::fmt;

use oisa_device::DeviceError;

use crate::wire::{RefusalCode, WireError};
use crate::CoreError;

/// Why a submission was declined, without the returned frame.
///
/// [`SubmitError`](crate::serving::SubmitError) hands the undelivered
/// frame back by value so callers can retry without a copy; once an
/// error is folded into [`OisaError`] the frame has been consumed, so
/// only the *kind* survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitKind {
    /// The serving queue was at capacity.
    Backpressure,
    /// The engine was shutting down.
    ShutDown,
}

/// Unified error of the execution stack (backend, serving, wire,
/// device, architecture).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OisaError {
    /// Architecture-layer failure ([`CoreError`]).
    Core(CoreError),
    /// Substrate device failure ([`DeviceError`]), kept distinct from
    /// [`OisaError::Core`] so epoch-exhaustion and range faults stay
    /// matchable.
    Device(DeviceError),
    /// Wire-protocol failure ([`WireError`]): decode errors, framing
    /// truncation, schema-version mismatches.
    Wire(WireError),
    /// A serving submission was declined (frame already handed back).
    Submit(SubmitKind),
    /// A configuration field failed validation
    /// ([`OisaConfigBuilder`](crate::accelerator::OisaConfigBuilder)).
    Config {
        /// The offending builder field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A distributed-backend fault that fits no dedicated variant
    /// (merge consistency violations, unexpected reply types, fleet
    /// misconfiguration).
    Backend(String),
    /// A transport to a worker broke and stayed broken: every connect /
    /// reconnect / resend attempt failed. The shard was **not**
    /// executed as far as the coordinator knows; because
    /// [`ShardedBackend::run_job`](crate::backend::ShardedBackend) only
    /// advances state after a full merge, the job can be retried (after
    /// repairing or replacing the worker) and will re-execute
    /// identically.
    Transport {
        /// The worker endpoint (e.g. `127.0.0.1:7401`, `stdio`).
        endpoint: String,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The last attempt's failure.
        cause: String,
    },
    /// Coordinator and worker were built from different
    /// [`OisaConfig`](crate::accelerator::OisaConfig)s: the shard (or
    /// handshake) carried the coordinator's fingerprint and the worker
    /// refused it. Deployments must ship identical configs to every
    /// node.
    FingerprintMismatch {
        /// Fingerprint of the coordinator's config.
        coordinator: u64,
        /// Fingerprint of the worker's config.
        worker: u64,
    },
    /// A worker answered a shard with a typed
    /// [`ShardRefusal`](crate::wire::ShardRefusal) that maps to no
    /// dedicated error variant: the shard reached the worker but could
    /// not run. Carries the refusal's machine-readable
    /// [`RefusalCode`] so supervisor logs stay actionable without
    /// string matching the reason.
    ShardRefused {
        /// The refused shard's job.
        job_id: u64,
        /// The refused shard's index within the job.
        shard_index: u32,
        /// The worker's machine-readable refusal class.
        code: RefusalCode,
        /// The worker's reason.
        reason: String,
    },
}

impl fmt::Display for OisaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Submit(SubmitKind::Backpressure) => {
                write!(f, "submission declined: queue full (backpressure)")
            }
            Self::Submit(SubmitKind::ShutDown) => {
                write!(f, "submission declined: engine shutting down")
            }
            Self::Config { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            Self::Backend(what) => write!(f, "backend error: {what}"),
            Self::Transport {
                endpoint,
                attempts,
                cause,
            } => write!(
                f,
                "transport to worker {endpoint} failed after {attempts} attempt(s): {cause}"
            ),
            Self::FingerprintMismatch {
                coordinator,
                worker,
            } => write!(
                f,
                "config fingerprint mismatch: coordinator runs {coordinator:#018x}, worker runs \
                 {worker:#018x} — every node of a deployment must be built from the same OisaConfig"
            ),
            Self::ShardRefused {
                job_id,
                shard_index,
                code,
                reason,
            } => write!(
                f,
                "worker refused shard {shard_index} of job {job_id} [code: {code}]: {reason}"
            ),
        }
    }
}

impl std::error::Error for OisaError {}

impl From<CoreError> for OisaError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<DeviceError> for OisaError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}

impl From<WireError> for OisaError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<oisa_sensor::SensorError> for OisaError {
    fn from(e: oisa_sensor::SensorError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_optics::OpticsError> for OisaError {
    fn from(e: oisa_optics::OpticsError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_memory::MemoryError> for OisaError {
    fn from(e: oisa_memory::MemoryError) -> Self {
        Self::Core(e.into())
    }
}

impl From<oisa_nn::NnError> for OisaError {
    fn from(e: oisa_nn::NnError) -> Self {
        Self::Core(e.into())
    }
}

impl From<crate::serving::SubmitError> for OisaError {
    /// Folds a submit error into the unified type. A
    /// [`Rejected`](crate::serving::SubmitError::Rejected) submission
    /// carries an architecture error and maps to [`OisaError::Core`];
    /// the queue-state variants keep their kind but drop the returned
    /// frame (it was available on the original error for zero-copy
    /// retry).
    fn from(e: crate::serving::SubmitError) -> Self {
        match e {
            crate::serving::SubmitError::Rejected(core) => Self::Core(core),
            crate::serving::SubmitError::Backpressure(_) => Self::Submit(SubmitKind::Backpressure),
            crate::serving::SubmitError::ShutDown(_) => Self::Submit(SubmitKind::ShutDown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_sensor::Frame;

    #[test]
    fn every_layer_folds_in() {
        let core: OisaError = CoreError::InvalidParameter("x".into()).into();
        assert!(matches!(core, OisaError::Core(_)));
        let device: OisaError = DeviceError::OutOfRange("epoch".into()).into();
        assert!(matches!(device, OisaError::Device(_)));
        let wire: OisaError = WireError::UnsupportedVersion { got: 9 }.into();
        assert!(matches!(wire, OisaError::Wire(_)));
        let frame = Frame::constant(2, 2, 0.5).unwrap();
        let submit: OisaError = crate::serving::SubmitError::Backpressure(frame).into();
        assert_eq!(submit, OisaError::Submit(SubmitKind::Backpressure));
        let rejected: OisaError =
            crate::serving::SubmitError::Rejected(CoreError::InvalidParameter("bad frame".into()))
                .into();
        assert!(
            matches!(rejected, OisaError::Core(_)),
            "Rejected keeps its cause"
        );
    }

    #[test]
    fn display_names_the_layer() {
        assert!(OisaError::from(DeviceError::OutOfRange("e".into()))
            .to_string()
            .starts_with("device error"));
        assert!(OisaError::from(WireError::UnsupportedVersion { got: 2 })
            .to_string()
            .starts_with("wire error"));
        let cfg = OisaError::Config {
            field: "imager",
            reason: "zero width".into(),
        };
        assert!(cfg.to_string().contains("imager"));
    }

    #[test]
    fn distributed_variants_name_their_evidence() {
        let transport = OisaError::Transport {
            endpoint: "127.0.0.1:7401".into(),
            attempts: 3,
            cause: "connection refused".into(),
        };
        let shown = transport.to_string();
        assert!(shown.contains("127.0.0.1:7401"), "{shown}");
        assert!(shown.contains("3 attempt(s)"), "{shown}");
        assert!(shown.contains("connection refused"), "{shown}");

        let mismatch = OisaError::FingerprintMismatch {
            coordinator: 0xAB,
            worker: 0xCD,
        };
        let shown = mismatch.to_string();
        assert!(shown.contains("0x00000000000000ab"), "{shown}");
        assert!(shown.contains("0x00000000000000cd"), "{shown}");

        let refused = OisaError::ShardRefused {
            job_id: 7,
            shard_index: 2,
            code: RefusalCode::Other,
            reason: "no fabric".into(),
        };
        let shown = refused.to_string();
        assert!(shown.contains("shard 2"), "{shown}");
        assert!(shown.contains("job 7"), "{shown}");
        // The machine-readable refusal class is rendered, not dropped.
        assert!(shown.contains("[code: other]"), "{shown}");

        let coded = OisaError::ShardRefused {
            job_id: 1,
            shard_index: 0,
            code: RefusalCode::FingerprintMismatch {
                coordinator: 0xAB,
                worker: 0xCD,
            },
            reason: "mismatch".into(),
        };
        let shown = coded.to_string();
        assert!(shown.contains("fingerprint-mismatch"), "{shown}");
        assert!(shown.contains("0x00000000000000ab"), "{shown}");
        assert!(shown.contains("0x00000000000000cd"), "{shown}");
    }
}
