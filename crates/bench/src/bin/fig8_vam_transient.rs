//! Regenerates paper Fig. 8: VAM thresholding waveforms for three pixels
//! at different illuminations.

use oisa_bench::fig8;

fn ascii(series: &[f64], lo: f64, hi: f64, cols: usize) -> String {
    const GLYPHS: &[char] = &['_', '.', '-', '~', '^', '"'];
    let step = series.len().max(cols) / cols;
    (0..cols)
        .map(|c| {
            let v = series[(c * step).min(series.len() - 1)];
            let x = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            GLYPHS[(x * (GLYPHS.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 8 — VAM dual-threshold transient (Vref = 0.16 V / 0.32 V) ===\n");
    let waves = fig8::vam_waveforms(8.0)?;
    for (i, w) in waves.iter().enumerate() {
        println!(
            "Pixel Out{} (illumination {:.2}) -> ternary code {}",
            i + 1,
            w.illumination,
            w.code
        );
        println!("  out : {}", ascii(&w.out, 0.0, 1.0, 64));
        println!("  t1  : {}", ascii(&w.t1, 0.0, 1.0, 64));
        println!("  t2  : {}", ascii(&w.t2, 0.0, 1.0, 64));
        let final_v = w.out.last().copied().unwrap_or(0.0);
        println!("  final output voltage: {final_v:.3} V\n");
    }
    println!(
        "Paper truth table: above both thresholds -> (1,1); between -> (1,0); below -> (0,0)."
    );
    Ok(())
}
