//! Integration tests asserting the paper's quantitative claims hold in
//! this reproduction (shape and calibrated magnitudes; see
//! EXPERIMENTS.md for the full comparison).

use oisa::baselines::platforms::{AppCipLike, AsicBaseline, CrosslightLike};
use oisa::core::mapping::{ConvWorkload, MappingPlan};
use oisa::core::perf::OisaPerfModel;
use oisa::optics::opc::{KernelSize, OpcConfig};

#[test]
fn headline_throughput_and_efficiency() {
    let perf = OisaPerfModel::paper_default().unwrap();
    assert!(
        (perf.throughput_tops() - 7.1).abs() < 0.2,
        "paper: 7.1 TOp/s"
    );
    let eff = perf.efficiency_tops_per_watt(4).unwrap();
    assert!((eff - 6.68).abs() < 0.7, "paper: 6.68 TOp/s/W, got {eff}");
}

#[test]
fn macs_per_cycle_formula() {
    // Paper §III-B: N_cycle = f · (n · K²) → 3600 / 2000 / 3920.
    let opc = OpcConfig::paper_default();
    assert_eq!(opc.macs_per_cycle(KernelSize::K3), 3600);
    assert_eq!(opc.macs_per_cycle(KernelSize::K5), 2000);
    assert_eq!(opc.macs_per_cycle(KernelSize::K7), 3920);
}

#[test]
fn hundred_iterations_for_full_map() {
    let opc = OpcConfig::paper_default();
    assert_eq!(opc.total_rings(), 4000);
    assert_eq!(opc.tuning_iterations(opc.total_rings()), 100);
}

#[test]
fn table1_power_band() {
    let perf = OisaPerfModel::paper_default().unwrap();
    let lo = perf.frontend_power(1).unwrap().as_milli();
    let hi = perf.frontend_power(4).unwrap().as_milli();
    assert!((lo - 0.00012).abs() < 0.00003, "low end {lo} mW vs 0.00012");
    assert!(
        (hi - 0.00034).abs() < 0.00006,
        "high end {hi} mW vs 0.00034"
    );
}

#[test]
fn area_claim() {
    let perf = OisaPerfModel::paper_default().unwrap();
    let mm2 = perf.area().get() * 1e6;
    assert!((mm2 - 1.92).abs() < 0.15, "paper: 1.92 mm², got {mm2}");
}

#[test]
fn power_reduction_factors_at_4bit() {
    let perf = OisaPerfModel::paper_default().unwrap();
    let oisa = perf.compute_power(4).unwrap().total().get();
    let cl = CrosslightLike::default().power(4).unwrap().total().get() / oisa;
    let ap = AppCipLike::default().power(4).unwrap().total().get() / oisa;
    let asic = AsicBaseline::default().power(4).unwrap().total().get() / oisa;
    assert!(
        (cl - 8.3).abs() < 1.7,
        "Crosslight factor {cl} vs paper 8.3"
    );
    assert!((ap - 7.9).abs() < 1.6, "AppCiP factor {ap} vs paper 7.9");
    assert!(
        (asic - 18.4).abs() < 3.7,
        "ASIC factor {asic} vs paper 18.4"
    );
}

#[test]
fn oisa_wins_at_every_bit_width() {
    let perf = OisaPerfModel::paper_default().unwrap();
    for bits in 1..=4u8 {
        let oisa = perf.compute_power(bits).unwrap().total().get();
        assert!(CrosslightLike::default().power(bits).unwrap().total().get() > oisa);
        assert!(AppCipLike::default().power(bits).unwrap().total().get() > oisa);
        assert!(AsicBaseline::default().power(bits).unwrap().total().get() > oisa);
    }
}

#[test]
fn resnet_first_layer_fits_frame_budget() {
    // Paper: 1000 fps with the full first layer in-sensor.
    let perf = OisaPerfModel::paper_default().unwrap();
    let (energy, latency) = perf
        .frame_cost(&ConvWorkload::resnet18_first_layer(), 4)
        .unwrap();
    assert!(latency.as_milli() < 1.0, "latency {latency} exceeds 1 ms");
    assert!(energy.as_micro() < 10.0, "energy {energy} implausible");
}

#[test]
fn mapping_plan_structure_for_resnet() {
    let plan = MappingPlan::compute(
        &ConvWorkload::resnet18_first_layer(),
        &OpcConfig::paper_default(),
    )
    .unwrap();
    // 192 7×7 planes over 80 bank slots.
    assert_eq!(plan.passes, 3);
    assert_eq!(plan.macs_per_cycle, 3920);
    assert_eq!(plan.rings_per_pass, 3920);
}

#[test]
fn quantisation_ladder_shape() {
    // The AWC mechanism behind Table II: the 4th bit helps an ideal
    // converter but not the mismatch ladder.
    use oisa::optics::weights::WeightMapper;
    let e = |bits: u8, paper: bool| {
        if paper {
            WeightMapper::paper(bits).unwrap().worst_case_error()
        } else {
            WeightMapper::ideal(bits).unwrap().worst_case_error()
        }
    };
    let ideal_gain = (e(3, false) - e(4, false)) / e(3, false);
    let paper_gain = (e(3, true) - e(4, true)) / e(3, true);
    assert!(ideal_gain > 0.4, "ideal 4th bit gain {ideal_gain}");
    assert!(
        paper_gain < 0.5 * ideal_gain,
        "mismatch must erase most of the 4th bit's benefit ({paper_gain} vs {ideal_gain})"
    );
}
