//! Quantisers bridging the CNN framework to the OISA hardware models.
//!
//! The optics stack decides *which* discrete levels exist (the AWC ladder
//! through the ring calibration — `oisa_optics::weights::WeightMapper`);
//! this module consumes a plain level table so the two crates stay
//! decoupled. The architecture crate wires them together and
//! cross-validates the behavioural path against the physical one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::conv::Conv2d;
use crate::layer::{Layer, UpdateRule};
use crate::tensor::{gaussian32, Tensor};
use crate::{NnError, Result};

/// Nearest-level magnitude quantiser over `[0, 1]`.
///
/// # Examples
///
/// ```
/// use oisa_nn::quantize::LevelQuantizer;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let q = LevelQuantizer::uniform(2)?; // 0, ⅓, ⅔, 1
/// assert!((q.nearest(0.3) - 1.0 / 3.0).abs() < 1e-6);
/// assert_eq!(q.nearest(-0.4), -1.0 / 3.0); // sign preserved
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelQuantizer {
    levels: Vec<f32>,
}

impl LevelQuantizer {
    /// Builds from an explicit, ascending level table in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for empty, unsorted or
    /// out-of-range tables.
    pub fn new(levels: Vec<f32>) -> Result<Self> {
        if levels.is_empty() {
            return Err(NnError::InvalidParameter("empty level table".into()));
        }
        if levels.windows(2).any(|w| w[1] < w[0]) {
            return Err(NnError::InvalidParameter(
                "level table must be ascending".into(),
            ));
        }
        if levels.iter().any(|l| !(0.0..=1.0).contains(l)) {
            return Err(NnError::InvalidParameter(
                "levels must lie in [0, 1]".into(),
            ));
        }
        Ok(Self { levels })
    }

    /// Uniform `2^bits` levels over `[0, 1]` — an ideal converter.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for `bits` outside `1..=8`.
    pub fn uniform(bits: u8) -> Result<Self> {
        if !(1..=8).contains(&bits) {
            return Err(NnError::InvalidParameter(format!(
                "bits {bits} outside 1..=8"
            )));
        }
        let n = (1u16 << bits) as usize;
        Ok(Self {
            levels: (0..n).map(|i| i as f32 / (n - 1) as f32).collect(),
        })
    }

    /// The level table.
    #[must_use]
    pub fn levels(&self) -> &[f32] {
        &self.levels
    }

    /// Quantises a signed value in `[−1, 1]` to the nearest level,
    /// preserving sign. Values beyond ±1 clamp.
    #[must_use]
    pub fn nearest(&self, v: f32) -> f32 {
        let magnitude = v.abs().min(1.0);
        let level = self
            .levels
            .iter()
            .copied()
            .min_by(|a, b| (a - magnitude).abs().total_cmp(&(b - magnitude).abs()))
            .unwrap_or(0.0);
        if v < 0.0 {
            -level
        } else {
            level
        }
    }

    /// Quantises a convolution's weights in place using per-tensor scaling
    /// (`scale = max |w|`), returning the scale so outputs can be
    /// de-quantised.
    pub fn quantize_conv(&self, conv: &mut Conv2d) -> f32 {
        let scale = conv.weights().max_abs().max(f32::MIN_POSITIVE);
        for w in conv.weights_mut().as_mut_slice() {
            *w = self.nearest(*w / scale) * scale;
        }
        scale
    }

    /// Quantises a convolution's weights in place with **per-output-
    /// channel** scales, returning one scale per channel. This matches
    /// the hardware: each kernel occupies its own arm, whose receiver
    /// gain can absorb a per-kernel scale — and it preserves far more
    /// signal at low bit widths than a single per-tensor scale.
    pub fn quantize_conv_per_channel(&self, conv: &mut Conv2d) -> Vec<f32> {
        let out_ch = conv.out_channels();
        let per_ch = conv.weights().len() / out_ch;
        let weights = conv.weights_mut().as_mut_slice();
        let mut scales = Vec::with_capacity(out_ch);
        for oc in 0..out_ch {
            let chunk = &mut weights[oc * per_ch..(oc + 1) * per_ch];
            let scale = chunk
                .iter()
                .fold(0.0f32, |m, w| m.max(w.abs()))
                .max(f32::MIN_POSITIVE);
            for w in chunk.iter_mut() {
                *w = self.nearest(*w / scale) * scale;
            }
            scales.push(scale);
        }
        scales
    }
}

/// The VAM's ternary activation quantiser in the illumination domain.
///
/// Thresholds sit where the pixel's 0.16 V / 0.32 V references land after
/// the 0.5 V swing (paper Fig. 8): illumination 0.32 and 0.64. The three
/// output values are the normalised VCSEL amplitudes — the zero level
/// carries the small non-return-to-zero floor emission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TernaryActivation {
    /// Lower illumination threshold.
    pub t1: f32,
    /// Upper illumination threshold.
    pub t2: f32,
    /// Emitted amplitude for level 0 (NRZ floor).
    pub v0: f32,
    /// Emitted amplitude for level 1.
    pub v1: f32,
    /// Emitted amplitude for level 2.
    pub v2: f32,
}

impl TernaryActivation {
    /// Paper calibration: thresholds 0.32 / 0.64; amplitudes 0.022 / 0.511
    /// / 1.0, matching `oisa_device::vcsel::Vcsel::normalized_output` for
    /// the paper VCSEL (cross-checked by an integration test).
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            t1: 0.32,
            t2: 0.64,
            v0: 0.022,
            v1: 0.511,
            v2: 1.0,
        }
    }

    /// Ideal ternary encoding without the NRZ floor (for ablations).
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            t1: 0.32,
            t2: 0.64,
            v0: 0.0,
            v1: 0.5,
            v2: 1.0,
        }
    }

    /// Encodes one illumination value.
    #[must_use]
    pub fn encode(&self, lux: f32) -> f32 {
        if lux > self.t2 {
            self.v2
        } else if lux > self.t1 {
            self.v1
        } else {
            self.v0
        }
    }

    /// Encodes a whole tensor.
    #[must_use]
    pub fn encode_tensor(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.encode(v))
    }
}

/// Inference-only wrapper executing a convolution the way OISA does:
/// ternary-encoded input, level-quantised weights, Gaussian read-out
/// noise. Swapped in for the first conv of a trained model (Table II's
/// deployment path).
pub struct QuantizedConv2d {
    conv: Conv2d,
    activation: TernaryActivation,
    /// σ of the additive output noise, relative to the layer's output RMS.
    noise_sigma: f32,
    rng: StdRng,
}

impl std::fmt::Debug for QuantizedConv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedConv2d")
            .field("noise_sigma", &self.noise_sigma)
            .finish()
    }
}

impl QuantizedConv2d {
    /// Wraps a trained convolution: quantises its weights through
    /// `quantizer` (per-tensor scaling) and applies `activation` to
    /// inputs at inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for a negative noise sigma.
    pub fn new(
        mut conv: Conv2d,
        quantizer: &LevelQuantizer,
        activation: TernaryActivation,
        noise_sigma: f32,
        seed: u64,
    ) -> Result<Self> {
        if noise_sigma < 0.0 {
            return Err(NnError::InvalidParameter(
                "noise sigma must be non-negative".into(),
            ));
        }
        quantizer.quantize_conv(&mut conv);
        Ok(Self {
            conv,
            activation,
            noise_sigma,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Like [`QuantizedConv2d::new`] but with per-output-channel weight
    /// scaling — the hardware-faithful deployment (each kernel's arm has
    /// its own receiver gain) and the variant that keeps 1-bit weights
    /// usable.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for a negative noise sigma.
    pub fn new_per_channel(
        mut conv: Conv2d,
        quantizer: &LevelQuantizer,
        activation: TernaryActivation,
        noise_sigma: f32,
        seed: u64,
    ) -> Result<Self> {
        if noise_sigma < 0.0 {
            return Err(NnError::InvalidParameter(
                "noise sigma must be non-negative".into(),
            ));
        }
        quantizer.quantize_conv_per_channel(&mut conv);
        Ok(Self {
            conv,
            activation,
            noise_sigma,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The wrapped (already-quantised) convolution.
    #[must_use]
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }
}

impl Layer for QuantizedConv2d {
    fn forward(&mut self, input: &Tensor, _training: bool) -> Result<Tensor> {
        let encoded = self.activation.encode_tensor(input);
        let mut out = self.conv.forward(&encoded, false)?;
        if self.noise_sigma > 0.0 {
            // Scale noise to the output RMS so it tracks signal magnitude,
            // as physical detector noise does relative to full scale.
            let rms = (out.as_slice().iter().map(|v| v * v).sum::<f32>() / out.len() as f32)
                .sqrt()
                .max(1e-6);
            let sigma = self.noise_sigma * rms;
            for v in out.as_mut_slice() {
                *v += gaussian32(&mut self.rng) * sigma;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, _grad_output: &Tensor) -> Result<Tensor> {
        Err(NnError::InvalidState(
            "QuantizedConv2d is inference-only (deployment wrapper)".into(),
        ))
    }

    fn apply_gradients(&mut self, _update: &mut UpdateRule) {}

    fn parameter_count(&self) -> usize {
        self.conv.parameter_count()
    }

    fn name(&self) -> &'static str {
        "quantized_conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_levels() {
        let q = LevelQuantizer::uniform(2).unwrap();
        assert_eq!(q.levels().len(), 4);
        assert!((q.levels()[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn custom_table_validation() {
        assert!(LevelQuantizer::new(vec![]).is_err());
        assert!(LevelQuantizer::new(vec![0.5, 0.2]).is_err());
        assert!(LevelQuantizer::new(vec![0.0, 1.5]).is_err());
        assert!(LevelQuantizer::new(vec![0.0, 0.4, 0.9]).is_ok());
    }

    #[test]
    fn nearest_clamps_and_signs() {
        let q = LevelQuantizer::uniform(1).unwrap(); // {0, 1}
        assert_eq!(q.nearest(0.4), 0.0);
        assert_eq!(q.nearest(0.6), 1.0);
        assert_eq!(q.nearest(-0.6), -1.0);
        assert_eq!(q.nearest(5.0), 1.0); // clamp
    }

    #[test]
    fn quantize_conv_preserves_scale() {
        let mut conv = Conv2d::with_seed(1, 2, 3, 1, 1, 7).unwrap();
        let before_max = conv.weights().max_abs();
        let q = LevelQuantizer::uniform(4).unwrap();
        let scale = q.quantize_conv(&mut conv);
        assert!((scale - before_max).abs() < 1e-6);
        // The largest weight must map to ±scale exactly.
        assert!((conv.weights().max_abs() - before_max).abs() < 1e-6);
    }

    #[test]
    fn ternary_encoding_matches_vam_bins() {
        let t = TernaryActivation::paper_default();
        assert_eq!(t.encode(0.1), t.v0);
        assert_eq!(t.encode(0.5), t.v1);
        assert_eq!(t.encode(0.9), t.v2);
        // Exact thresholds fall into the lower bin (strict >).
        assert_eq!(t.encode(0.32), t.v0);
        assert_eq!(t.encode(0.64), t.v1);
    }

    #[test]
    fn quantized_conv_deterministic_per_seed() {
        let q = LevelQuantizer::uniform(4).unwrap();
        let conv = Conv2d::with_seed(1, 2, 3, 1, 1, 3).unwrap();
        let x = Tensor::he_normal(vec![1, 1, 6, 6], 36, 1).map(|v| v.abs().min(1.0));
        let mut a = QuantizedConv2d::new(
            conv.clone(),
            &q,
            TernaryActivation::paper_default(),
            0.01,
            99,
        )
        .unwrap();
        let mut b =
            QuantizedConv2d::new(conv, &q, TernaryActivation::paper_default(), 0.01, 99).unwrap();
        let ya = a.forward(&x, false).unwrap();
        let yb = b.forward(&x, false).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn quantized_conv_close_to_float_conv() {
        let q = LevelQuantizer::uniform(4).unwrap();
        let mut float_conv = Conv2d::with_seed(1, 2, 3, 1, 1, 3).unwrap();
        let x = Tensor::he_normal(vec![1, 1, 6, 6], 36, 1).map(|v| v.abs().min(1.0));
        // Reference: float conv on the ideal ternary encoding.
        let enc = TernaryActivation::ideal().encode_tensor(&x);
        let reference = float_conv.forward(&enc, false).unwrap();
        let mut quant =
            QuantizedConv2d::new(float_conv.clone(), &q, TernaryActivation::ideal(), 0.0, 0)
                .unwrap();
        let approx = quant.forward(&x, false).unwrap();
        let max_dev = reference
            .as_slice()
            .iter()
            .zip(approx.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // 4-bit weights on a 9-element window: deviation stays small.
        assert!(max_dev < 0.2, "max deviation {max_dev}");
    }

    #[test]
    fn quantized_conv_refuses_backward() {
        let q = LevelQuantizer::uniform(4).unwrap();
        let conv = Conv2d::with_seed(1, 1, 3, 1, 1, 0).unwrap();
        let mut qc = QuantizedConv2d::new(conv, &q, TernaryActivation::ideal(), 0.0, 0).unwrap();
        assert!(qc.backward(&Tensor::zeros(vec![1, 1, 4, 4])).is_err());
    }

    proptest! {
        #[test]
        fn nearest_error_bounded(v in -1.0..=1.0f32, bits in 1u8..=4) {
            let q = LevelQuantizer::uniform(bits).unwrap();
            let lsb = 1.0 / ((1u16 << bits) - 1) as f32;
            prop_assert!((q.nearest(v) - v).abs() <= lsb / 2.0 + 1e-6);
        }

        #[test]
        fn ternary_monotone(a in 0.0..=1.0f32, b in 0.0..=1.0f32) {
            let t = TernaryActivation::paper_default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(t.encode(lo) <= t.encode(hi));
        }
    }
}
