//! Backward-Euler transient analysis with Newton–Raphson iteration.

use std::collections::HashMap;

use oisa_units::{Second, Volt};

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::linalg::DenseMatrix;
use crate::trace::Trace;
use crate::{Result, SpiceError};

/// Minimum conductance tied from every node to ground, keeping the MNA
/// matrix regular when devices cut off.
const GMIN: f64 = 1e-12;

/// Newton voltage convergence tolerance, volts.
const V_TOL: f64 = 1e-6;

/// Maximum Newton iterations per timestep.
const MAX_NEWTON: usize = 200;

/// Configuration and driver for a fixed-step transient simulation.
///
/// Backward Euler is intentionally chosen over trapezoidal integration: it
/// is A- and L-stable, so the hard switching in the pixel/driver circuits
/// cannot excite numerical ringing. The fixed step keeps runs reproducible.
///
/// # Examples
///
/// See the crate-level example; [`TransientAnalysis::with_initial_condition`]
/// seeds node voltages at `t = 0` (SPICE `.ic`).
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    t_stop: f64,
    dt: f64,
    initial_conditions: HashMap<NodeId, f64>,
}

impl TransientAnalysis {
    /// Creates an analysis running to `t_stop` with fixed step `dt`.
    #[must_use]
    pub fn new(t_stop: Second, dt: Second) -> Self {
        Self {
            t_stop: t_stop.get(),
            dt: dt.get(),
            initial_conditions: HashMap::new(),
        }
    }

    /// Sets the initial voltage of `node` at `t = 0`.
    #[must_use]
    pub fn with_initial_condition(mut self, node: NodeId, v: Volt) -> Self {
        self.initial_conditions.insert(node, v.get());
        self
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// * [`SpiceError::InvalidParameter`] for a non-positive step or stop
    ///   time.
    /// * [`SpiceError::SingularMatrix`] for ill-formed topologies.
    /// * [`SpiceError::NonConvergent`] if Newton iteration stalls.
    pub fn run(&self, circuit: &Circuit) -> Result<Trace> {
        if self.dt <= 0.0 || !self.dt.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "timestep must be positive and finite, got {} s",
                self.dt
            )));
        }
        if self.t_stop <= 0.0 || !self.t_stop.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "stop time must be positive and finite, got {} s",
                self.t_stop
            )));
        }
        let n_nodes = circuit.node_count();
        let n_unknowns = circuit.unknown_count();
        let mut solution = vec![0.0f64; n_unknowns];
        for (&node, &v) in &self.initial_conditions {
            if node != Circuit::GND {
                solution[node.0] = v;
            }
        }
        let mut prev_node_v = solution[..n_nodes].to_vec();

        let mut trace = Trace::new(circuit.node_names(), circuit.vsource_count);
        trace.push(0.0, &solution);

        let steps = (self.t_stop / self.dt).ceil() as usize;
        let mut matrix = DenseMatrix::zeros(n_unknowns);
        let mut rhs = vec![0.0f64; n_unknowns];

        for step in 1..=steps {
            let t = step as f64 * self.dt;
            let mut converged = false;
            // Newton iteration; `solution` carries the current iterate and
            // is warm-started from the previous timestep.
            for _ in 0..MAX_NEWTON {
                matrix.clear();
                rhs.fill(0.0);
                stamp(
                    circuit,
                    t,
                    self.dt,
                    &solution[..n_nodes],
                    &prev_node_v,
                    &mut matrix,
                    &mut rhs,
                );
                let mut next = rhs.clone();
                matrix.solve_in_place(&mut next)?;
                let max_delta = solution[..n_nodes]
                    .iter()
                    .zip(&next[..n_nodes])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                solution.copy_from_slice(&next);
                if max_delta < V_TOL {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergent { time: t });
            }
            prev_node_v.copy_from_slice(&solution[..n_nodes]);
            trace.push(t, &solution);
        }
        Ok(trace)
    }
}

/// Voltage of `node` in the iterate `v`, treating ground as 0.
#[inline]
fn volt(v: &[f64], node: NodeId) -> f64 {
    if node == Circuit::GND {
        0.0
    } else {
        v[node.0]
    }
}

/// Adds `g` between nodes `a` and `b` (standard two-terminal conductance
/// stamp).
fn stamp_conductance(matrix: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
    if a != Circuit::GND {
        matrix.add(a.0, a.0, g);
    }
    if b != Circuit::GND {
        matrix.add(b.0, b.0, g);
    }
    if a != Circuit::GND && b != Circuit::GND {
        matrix.add(a.0, b.0, -g);
        matrix.add(b.0, a.0, -g);
    }
}

/// Injects current `i` into node `into` and draws it from `from`.
fn stamp_current(rhs: &mut [f64], from: NodeId, into: NodeId, i: f64) {
    if into != Circuit::GND {
        rhs[into.0] += i;
    }
    if from != Circuit::GND {
        rhs[from.0] -= i;
    }
}

#[allow(clippy::too_many_lines)]
fn stamp(
    circuit: &Circuit,
    t: f64,
    dt: f64,
    iterate: &[f64],
    prev: &[f64],
    matrix: &mut DenseMatrix,
    rhs: &mut [f64],
) {
    let n_nodes = circuit.node_count();
    for i in 0..n_nodes {
        matrix.add(i, i, GMIN);
    }
    for element in &circuit.elements {
        match element {
            Element::Resistor { a, b, conductance } => {
                stamp_conductance(matrix, *a, *b, *conductance);
            }
            Element::Capacitor { a, b, capacitance } => {
                // Backward-Euler companion: geq = C/h in parallel with a
                // history current source geq·v(t−h).
                let geq = capacitance / dt;
                stamp_conductance(matrix, *a, *b, geq);
                let v_prev = volt(prev, *a) - volt(prev, *b);
                stamp_current(rhs, *b, *a, geq * v_prev);
            }
            Element::VSource {
                pos,
                neg,
                wave,
                branch,
            } => {
                let row = n_nodes + branch;
                if *pos != Circuit::GND {
                    matrix.add(pos.0, row, 1.0);
                    matrix.add(row, pos.0, 1.0);
                }
                if *neg != Circuit::GND {
                    matrix.add(neg.0, row, -1.0);
                    matrix.add(row, neg.0, -1.0);
                }
                rhs[row] += wave.value_at(t);
            }
            Element::ISource { from, to, wave } => {
                stamp_current(rhs, *from, *to, wave.value_at(t));
            }
            Element::Switch {
                a,
                b,
                control,
                params,
            } => {
                let closed = volt(iterate, *control) > params.threshold;
                let g = if closed {
                    1.0 / params.r_on
                } else {
                    1.0 / params.r_off
                };
                stamp_conductance(matrix, *a, *b, g);
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                params,
            } => {
                let vg = volt(iterate, *gate);
                let vd = volt(iterate, *drain);
                let vs = volt(iterate, *source);
                let op = params.evaluate(vg, vd, vs);
                // Linearised drain current:
                //   id ≈ id0 + gg·Δvg + gd·Δvd + gs·Δvs
                // KCL rows: +id leaves the drain, enters the source.
                let i_eq = op.id - op.did_dvg * vg - op.did_dvd * vd - op.did_dvs * vs;
                for (node, sign) in [(*drain, 1.0), (*source, -1.0)] {
                    if node == Circuit::GND {
                        continue;
                    }
                    let row = node.0;
                    if *gate != Circuit::GND {
                        matrix.add(row, gate.0, sign * op.did_dvg);
                    }
                    if *drain != Circuit::GND {
                        matrix.add(row, drain.0, sign * op.did_dvd);
                    }
                    if *source != Circuit::GND {
                        matrix.add(row, source.0, sign * op.did_dvs);
                    }
                    rhs[row] -= sign * i_eq;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::{MosParams, SwitchParams};
    use crate::waveform::Waveform;
    use oisa_units::{Farad, Ohm};

    #[test]
    fn rc_step_matches_analytic_charging() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", vin, out, Ohm::from_kilo(1.0)).unwrap();
        ckt.capacitor("C1", out, Circuit::GND, Farad::from_nano(1.0))
            .unwrap();
        // τ = 1 µs; simulate 3 µs with 1 ns steps.
        let trace = TransientAnalysis::new(Second::from_micro(3.0), Second::from_nano(1.0))
            .run(&ckt)
            .unwrap();
        let tau = 1e-6;
        for &t in [0.5e-6f64, 1e-6, 2e-6].iter() {
            let expected = 1.0 - (-t / tau).exp();
            let got = trace.voltage_at("out", t).unwrap();
            assert!(
                (got - expected).abs() < 5e-3,
                "t={t}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn voltage_divider_dc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(2.0))
            .unwrap();
        ckt.resistor("R1", vin, mid, Ohm::from_kilo(1.0)).unwrap();
        ckt.resistor("R2", mid, Circuit::GND, Ohm::from_kilo(3.0))
            .unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(10.0), Second::from_nano(1.0))
            .run(&ckt)
            .unwrap();
        let v = trace.voltage("mid").unwrap().last().copied().unwrap();
        assert!((v - 1.5).abs() < 1e-6);
    }

    #[test]
    fn vsource_branch_current_obeys_ohms_law() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.vsource("V1", vin, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", vin, Circuit::GND, Ohm::from_kilo(1.0))
            .unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(5.0), Second::from_nano(1.0))
            .run(&ckt)
            .unwrap();
        // MNA convention: branch current flows into the + terminal, so a
        // delivering source reads −V/R.
        let i = trace.branch_current(0).unwrap().last().copied().unwrap();
        assert!((i + 1e-3).abs() < 1e-9, "got {i}");
    }

    #[test]
    fn initial_condition_discharges_through_resistor() {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.capacitor("C1", top, Circuit::GND, Farad::from_pico(100.0))
            .unwrap();
        ckt.resistor("R1", top, Circuit::GND, Ohm::from_kilo(10.0))
            .unwrap();
        // τ = 1 µs, start at 1 V.
        let trace = TransientAnalysis::new(Second::from_micro(1.0), Second::from_nano(1.0))
            .with_initial_condition(top, Volt::new(1.0))
            .run(&ckt)
            .unwrap();
        let v_tau = trace.voltage_at("top", 1e-6).unwrap();
        assert!((v_tau - (-1.0f64).exp()).abs() < 5e-3, "got {v_tau}");
    }

    #[test]
    fn switch_connects_on_control_high() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let ctl = ckt.node("ctl");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.vsource(
            "VCTL",
            ctl,
            Circuit::GND,
            Waveform::pulse(0.0, 1.0, 5e-9, 1e-10, 1e-10, 10e-9, 0.0),
        )
        .unwrap();
        ckt.switch("S1", vdd, out, ctl, SwitchParams::default())
            .unwrap();
        ckt.resistor("RL", out, Circuit::GND, Ohm::from_kilo(1.0))
            .unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(20.0), Second::from_pico(100.0))
            .run(&ckt)
            .unwrap();
        assert!(trace.voltage_at("out", 2e-9).unwrap() < 1e-3);
        assert!(trace.voltage_at("out", 10e-9).unwrap() > 0.99);
    }

    #[test]
    fn nmos_inverter_transfers() {
        // Resistive-load inverter: out high when gate low, pulled low when
        // gate high.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.vsource(
            "VG",
            gate,
            Circuit::GND,
            Waveform::pwl([(0.0, 0.0), (10e-9, 0.0), (11e-9, 1.0)]),
        )
        .unwrap();
        ckt.resistor("RL", vdd, out, Ohm::from_kilo(50.0)).unwrap();
        ckt.mosfet("M1", out, gate, Circuit::GND, MosParams::nmos(10.0))
            .unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(20.0), Second::from_pico(50.0))
            .run(&ckt)
            .unwrap();
        assert!(trace.voltage_at("out", 5e-9).unwrap() > 0.95);
        assert!(trace.voltage_at("out", 18e-9).unwrap() < 0.2);
    }

    #[test]
    fn nmos_current_mirror_row_weights_double() {
        // Four diode-connected legs with W/L ratios 1:2:4:8 share a gate:
        // the summed drain current doubles with each leg, which is the AWC
        // principle (paper Fig. 4).
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("gate");
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        // Reference leg: resistor sets the bias through a diode-connected
        // NMOS.
        ckt.resistor("RB", vdd, gate, Ohm::from_kilo(20.0)).unwrap();
        ckt.mosfet("M0", gate, gate, Circuit::GND, MosParams::nmos(1.0))
            .unwrap();
        // Mirror legs with doubling widths; λ = 0 for exact ratios.
        let ideal = MosParams {
            lambda: 0.0,
            ..MosParams::nmos(1.0)
        };
        let mut outs = Vec::new();
        for (i, w) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            let node = ckt.node(&format!("d{i}"));
            ckt.vsource(&format!("VD{i}"), node, Circuit::GND, Waveform::dc(1.0))
                .unwrap();
            ckt.mosfet(
                &format!("M{}", i + 1),
                node,
                gate,
                Circuit::GND,
                MosParams {
                    w_over_l: *w,
                    ..ideal
                },
            )
            .unwrap();
            outs.push(node);
        }
        let trace = TransientAnalysis::new(Second::from_nano(10.0), Second::from_pico(100.0))
            .run(&ckt)
            .unwrap();
        // Branch currents of VD0..VD3 absorb the mirrored currents.
        let i: Vec<f64> = (1..=4)
            .map(|k| {
                trace
                    .branch_current(k)
                    .unwrap()
                    .last()
                    .copied()
                    .unwrap()
                    .abs()
            })
            .collect();
        for k in 1..4 {
            let ratio = i[k] / i[k - 1];
            assert!(
                (ratio - 2.0).abs() < 0.05,
                "leg {k} ratio {ratio} (currents {i:?})"
            );
        }
    }

    #[test]
    fn floating_node_reports_singular_or_converges_via_gmin() {
        // A node connected only through a capacitor is handled by GMIN.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.capacitor("C1", a, b, Farad::from_pico(1.0)).unwrap();
        let trace =
            TransientAnalysis::new(Second::from_nano(2.0), Second::from_pico(100.0)).run(&ckt);
        assert!(trace.is_ok());
    }

    #[test]
    fn invalid_timestep_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GND, Waveform::dc(1.0))
            .unwrap();
        ckt.resistor("R1", a, Circuit::GND, Ohm::new(1.0)).unwrap();
        let res = TransientAnalysis::new(Second::from_nano(1.0), Second::ZERO).run(&ckt);
        assert!(matches!(res, Err(SpiceError::InvalidParameter(_))));
    }

    #[test]
    fn energy_conservation_rc_discharge() {
        // The energy dissipated in R equals the initial capacitor energy.
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        let c = Farad::from_pico(10.0);
        let r = Ohm::from_kilo(1.0);
        ckt.capacitor("C1", top, Circuit::GND, c).unwrap();
        ckt.resistor("R1", top, Circuit::GND, r).unwrap();
        let dt = Second::from_pico(10.0);
        let trace = TransientAnalysis::new(Second::from_nano(100.0), dt)
            .with_initial_condition(top, Volt::new(1.0))
            .run(&ckt)
            .unwrap();
        let dissipated: f64 = trace
            .voltage("top")
            .unwrap()
            .iter()
            .map(|v| v * v / r.get() * dt.get())
            .sum();
        let initial = 0.5 * c.get(); // ½CV² with V = 1
        let err = (dissipated - initial).abs() / initial;
        assert!(err < 0.05, "dissipated {dissipated}, stored {initial}");
    }
}
