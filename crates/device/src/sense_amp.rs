//! Clocked sense amplifier used by the VAM's ternary thresholding.
//!
//! The VAM places **two** sense amplifiers behind every pixel (paper
//! Fig. 3(a)/(c)): one referenced at 0.16 V and one at 0.32 V. When the
//! clock falls, each SA resolves whether the pixel's source-follower
//! output exceeds its reference; the pair of decisions `(t1, t2)` encodes
//! the ternary activation (paper Fig. 8).
//!
//! The model captures the two analog non-idealities that matter for
//! accuracy studies: input-referred **offset** (a per-instance, static
//! mismatch) and decision **noise** (per-evaluation, thermal).

use oisa_units::{Joule, Second, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// Sense-amplifier design parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmpParams {
    /// Reference (decision threshold) voltage.
    pub reference: Volt,
    /// Standard deviation of the static input-referred offset across
    /// instances.
    pub offset_sigma: Volt,
    /// Standard deviation of per-decision thermal noise.
    pub noise_sigma: Volt,
    /// Energy per clocked evaluation.
    pub energy_per_decision: Joule,
    /// Decision (regeneration) latency.
    pub decision_time: Second,
}

impl SenseAmpParams {
    /// Paper threshold values: the lower SA at 0.16 V, the upper at
    /// 0.32 V, with 45 nm-class offset (σ = 5 mV), 1 mV decision noise,
    /// 2 fJ/decision and 100 ps regeneration.
    #[must_use]
    pub fn lower_threshold() -> Self {
        Self::with_reference(Volt::new(0.16))
    }

    /// The upper (0.32 V) threshold of the ternary encoder.
    #[must_use]
    pub fn upper_threshold() -> Self {
        Self::with_reference(Volt::new(0.32))
    }

    /// Default parameters at an arbitrary reference.
    #[must_use]
    pub fn with_reference(reference: Volt) -> Self {
        Self {
            reference,
            offset_sigma: Volt::from_milli(5.0),
            noise_sigma: Volt::from_milli(1.0),
            energy_per_decision: Joule::from_femto(2.0),
            decision_time: Second::from_pico(100.0),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.offset_sigma.get() < 0.0 || self.noise_sigma.get() < 0.0 {
            return Err(DeviceError::InvalidParameter(
                "offset/noise sigmas must be non-negative".into(),
            ));
        }
        if self.energy_per_decision.get() < 0.0 {
            return Err(DeviceError::InvalidParameter(
                "energy per decision must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// One sense-amplifier instance with its frozen static offset.
///
/// # Examples
///
/// ```
/// use oisa_device::sense_amp::{SenseAmp, SenseAmpParams};
/// use oisa_units::Volt;
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let sa = SenseAmp::ideal(SenseAmpParams::lower_threshold())?;
/// assert!(sa.decide_ideal(Volt::new(0.20)));  // above 0.16 V
/// assert!(!sa.decide_ideal(Volt::new(0.10))); // below
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenseAmp {
    params: SenseAmpParams,
    /// This instance's static offset, drawn once at "fabrication".
    offset: Volt,
}

impl SenseAmp {
    /// Builds an instance with zero static offset (the nominal design).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for negative sigmas or
    /// energies.
    pub fn ideal(params: SenseAmpParams) -> Result<Self> {
        params.validate()?;
        Ok(Self {
            params,
            offset: Volt::ZERO,
        })
    }

    /// Builds an instance whose static offset is drawn from the
    /// fabrication distribution using `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for negative sigmas or
    /// energies.
    pub fn fabricate<R: Rng + ?Sized>(params: SenseAmpParams, rng: &mut R) -> Result<Self> {
        params.validate()?;
        let offset = Volt::new(gaussian(rng) * params.offset_sigma.get());
        Ok(Self { params, offset })
    }

    /// Design parameters.
    #[must_use]
    pub fn params(&self) -> &SenseAmpParams {
        &self.params
    }

    /// The frozen static offset of this instance.
    #[must_use]
    pub fn offset(&self) -> Volt {
        self.offset
    }

    /// Noiseless decision: is `input` above this instance's effective
    /// threshold (reference + offset)?
    #[must_use]
    pub fn decide_ideal(&self, input: Volt) -> bool {
        input.get() > self.params.reference.get() + self.offset.get()
    }

    /// Clocked decision including per-evaluation thermal noise.
    pub fn decide<R: Rng + ?Sized>(&self, input: Volt, rng: &mut R) -> bool {
        let noise = gaussian(rng) * self.params.noise_sigma.get();
        input.get() + noise > self.params.reference.get() + self.offset.get()
    }

    /// Energy of one evaluation.
    #[must_use]
    pub fn decision_energy(&self) -> Joule {
        self.params.energy_per_decision
    }
}

/// Standard normal sample via Box–Muller (avoids needing `rand_distr`).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_thresholds_match_paper_references() {
        let lo = SenseAmp::ideal(SenseAmpParams::lower_threshold()).unwrap();
        let hi = SenseAmp::ideal(SenseAmpParams::upper_threshold()).unwrap();
        assert_eq!(lo.params().reference, Volt::new(0.16));
        assert_eq!(hi.params().reference, Volt::new(0.32));
        // Fig. 8's three cases:
        let out1 = Volt::new(0.40); // above both
        let out2 = Volt::new(0.25); // between
        let out3 = Volt::new(0.10); // below both
        assert!(lo.decide_ideal(out1) && hi.decide_ideal(out1));
        assert!(lo.decide_ideal(out2) && !hi.decide_ideal(out2));
        assert!(!lo.decide_ideal(out3) && !hi.decide_ideal(out3));
    }

    #[test]
    fn fabricated_offsets_distributed() {
        let mut rng = StdRng::seed_from_u64(7);
        let offsets: Vec<f64> = (0..500)
            .map(|_| {
                SenseAmp::fabricate(SenseAmpParams::lower_threshold(), &mut rng)
                    .unwrap()
                    .offset()
                    .get()
            })
            .collect();
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let var = offsets.iter().map(|o| (o - mean).powi(2)).sum::<f64>() / offsets.len() as f64;
        assert!(mean.abs() < 1e-3, "offset mean {mean}");
        let sigma = var.sqrt();
        assert!((sigma - 5e-3).abs() < 1e-3, "offset sigma {sigma}");
    }

    #[test]
    fn noisy_decisions_flip_near_threshold_only() {
        let sa = SenseAmp::ideal(SenseAmpParams::lower_threshold()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        // 10 mV above threshold with 1 mV noise: essentially always true.
        let hits = (0..200)
            .filter(|_| sa.decide(Volt::new(0.17), &mut rng))
            .count();
        assert!(hits > 195, "hits {hits}");
        // Exactly at threshold: coin flip.
        let coin = (0..400)
            .filter(|_| sa.decide(Volt::new(0.16), &mut rng))
            .count();
        assert!((120..280).contains(&coin), "coin {coin}");
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = SenseAmpParams::lower_threshold();
        p.noise_sigma = Volt::new(-1.0);
        assert!(SenseAmp::ideal(p).is_err());
        let mut p = SenseAmpParams::lower_threshold();
        p.energy_per_decision = Joule::new(-1.0);
        assert!(SenseAmp::ideal(p).is_err());
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
