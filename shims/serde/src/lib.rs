//! Offline shim for the `serde` facade.
//!
//! The workspace builds without network access, so the real `serde` is
//! unavailable. In-tree code only uses `#[derive(Serialize, Deserialize)]`
//! as a forward-compatibility marker — nothing serializes at runtime — so
//! this shim provides the two marker traits plus no-op derive macros (from
//! the sibling `serde_derive` shim). Swap back to the real crates by
//! replacing the `[patch]`-style path dependencies in the workspace
//! manifests once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}
