//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! This workspace builds in a fully offline environment, so the real
//! `serde_derive` cannot be fetched. The simulation crates only use the
//! derives as documentation-grade markers (nothing in-tree serializes
//! through serde), so expanding to nothing is sufficient. The `serde`
//! helper attribute is registered so `#[serde(transparent)]` and
//! `#[serde(skip)]` annotations parse.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
