//! Bad: a wall-clock value (from a helper that calls
//! `Instant::now`) flows through a local into `wire::encode_header`.
//! Replays of the same job would produce different bytes.

pub fn snapshot(buf: &mut Vec<u8>) {
    let stamp = wall_stamp();
    wire::encode_header(buf, stamp);
}

fn wall_stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
