//! Machine-readable performance benchmark for the optical conv hot path.
//!
//! Emits one `BENCH JSON` document on stdout so CI (and future PRs) can
//! track the perf trajectory without parsing human-oriented tables:
//!
//! ```text
//! BENCH JSON {"workload":{...},"wall_clock_ms":{...},"speedup":{...},...}
//! ```
//!
//! Three pipelines run the same 128×128, 16-kernel, 3×3 convolution
//! under the paper noise model:
//!
//! * `parallel` — [`OisaAccelerator::convolve_frame`]: counter-based
//!   noise streams, fused allocation-free MACs, row-parallel.
//! * `sequential` — the single-threaded twin (bit-identical output).
//! * `reference` — the faithful pre-optimisation pipeline
//!   ([`OisaAccelerator::convolve_frame_reference`]), the baseline the
//!   acceptance speedup is measured against.
//!
//! Pass `--quick` for fewer repetitions (CI smoke mode).

use std::time::Instant;

use oisa_core::{OisaAccelerator, OisaConfig};
use oisa_nn::conv::Conv2d;
use oisa_nn::layer::Layer;
use oisa_nn::tensor::Tensor;
use oisa_sensor::frame::Frame;

/// A deterministic "natural-ish" test frame: radial vignette over a
/// diagonal gradient with a bright blob, so the ternary encoder emits a
/// realistic mix of zero / mid / full activations.
fn test_frame(side: usize) -> Frame {
    let mut data = vec![0.0f64; side * side];
    let c = side as f64 / 2.0;
    for y in 0..side {
        for x in 0..side {
            let dx = (x as f64 - c) / c;
            let dy = (y as f64 - c) / c;
            let vignette = (1.0 - 0.8 * (dx * dx + dy * dy)).max(0.0);
            let gradient = (x + y) as f64 / (2.0 * side as f64);
            let blob = (-8.0 * ((dx - 0.3).powi(2) + (dy + 0.2).powi(2))).exp();
            data[y * side + x] = (0.55 * gradient * vignette + 0.6 * blob).clamp(0.0, 1.0);
        }
    }
    Frame::new(side, side, data).expect("frame construction")
}

/// Deterministic kernel bank: oriented edge/texture filters.
fn test_kernels(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 2 } else { 5 };
    let side = 128usize;
    let kernels = 16usize;
    let k = 3usize;

    let frame = test_frame(side);
    let banks = test_kernels(kernels, k);
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 42;

    let mut accel = OisaAccelerator::new(cfg).expect("accelerator construction");

    // Correctness gate before timing anything: the parallel pipeline
    // must be bit-identical to its sequential twin under the seed.
    let par = accel.convolve_frame(&frame, &banks, k).expect("parallel run");
    let mut accel_seq = OisaAccelerator::new(cfg).expect("accelerator construction");
    let seq = accel_seq
        .convolve_frame_sequential(&frame, &banks, k)
        .expect("sequential run");
    assert_eq!(par.output, seq.output, "parallel output must be bit-identical");
    assert_eq!(par.energy, seq.energy, "parallel energy must be bit-identical");

    let parallel_ms = median_ms(reps, || {
        let r = accel.convolve_frame(&frame, &banks, k).expect("parallel run");
        std::hint::black_box(r.output[0][0]);
    });
    let sequential_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_sequential(&frame, &banks, k)
            .expect("sequential run");
        std::hint::black_box(r.output[0][0]);
    });
    let reference_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_reference(&frame, &banks, k)
            .expect("reference run");
        std::hint::black_box(r.output[0][0]);
    });

    // Digital reference path: im2col Conv2d forward vs the naive loop.
    let x = Tensor::he_normal(vec![1, 3, side, side], 27, 3);
    let mut conv = Conv2d::with_seed(3, kernels, k, 1, 1, 7).expect("conv construction");
    let im2col_ms = median_ms(reps, || {
        let y = conv.forward(&x, false).expect("im2col forward");
        std::hint::black_box(y.as_slice()[0]);
    });
    let naive_ms = median_ms(reps, || {
        let y = conv.forward_naive(&x, false).expect("naive forward");
        std::hint::black_box(y.as_slice()[0]);
    });

    // Report the worker count the parallel pipeline actually used.
    let threads = rayon::current_num_threads();
    let optical_speedup = reference_ms / parallel_ms;
    let conv_speedup = naive_ms / im2col_ms;
    println!(
        concat!(
            "BENCH JSON {{",
            "\"workload\":{{\"frame\":\"{side}x{side}\",\"kernels\":{kernels},\"k\":{k}}},",
            "\"threads\":{threads},",
            "\"wall_clock_ms\":{{",
            "\"optical_parallel\":{parallel:.3},",
            "\"optical_sequential\":{sequential:.3},",
            "\"optical_reference\":{reference:.3},",
            "\"conv2d_im2col\":{im2col:.3},",
            "\"conv2d_naive\":{naive:.3}}},",
            "\"speedup\":{{",
            "\"optical_vs_reference\":{opt_speedup:.2},",
            "\"conv2d_vs_naive\":{conv_speedup:.2}}},",
            "\"bit_identical_parallel_vs_sequential\":true}}"
        ),
        side = side,
        kernels = kernels,
        k = k,
        threads = threads,
        parallel = parallel_ms,
        sequential = sequential_ms,
        reference = reference_ms,
        im2col = im2col_ms,
        naive = naive_ms,
        opt_speedup = optical_speedup,
        conv_speedup = conv_speedup,
    );
}
