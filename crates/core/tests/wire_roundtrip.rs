//! Wire-codec roundtrip suite, written to run under Miri as well as
//! natively: pure in-memory encode/decode plus the length-prefixed
//! framing layer over a `Cursor`, no sockets, threads or clocks. CI's
//! `miri` job interprets exactly this test to check the byte-twiddling
//! paths (manual LE packing, `take().try_into()` slicing) for
//! undefined behavior, not just wrong answers.

use std::io::Cursor;

use oisa_core::accelerator::{EnergyReport, OisaConfig};
use oisa_core::controller::Timeline;
use oisa_core::wire::{
    decode, encode, read_frame, receive, send, write_frame, ConfigPush, FabricEntry, Handshake,
    InferenceJob, JobShard, RefusalCode, ShardRefusal, ShardReport, WireMessage,
};
use oisa_core::{ConvolutionReport, MappingPlan};
use oisa_sensor::frame::Frame;
use oisa_units::{Joule, Second};

fn sample_shard() -> JobShard {
    JobShard {
        job_id: 11,
        shard_index: 2,
        shard_count: 4,
        first_frame: 6,
        first_epoch: 106,
        config_fingerprint: 0x00C0_FFEE,
        entry: FabricEntry::Warm {
            k: 5,
            kernels: vec![vec![0.125f32; 25]],
        },
        k: 3,
        kernels: vec![vec![0.5f32; 9], vec![-0.25f32; 9]],
        frames: vec![Frame::constant(3, 5, 0.5).expect("valid frame")],
    }
}

fn sample_report() -> ShardReport {
    ShardReport {
        job_id: 11,
        shard_index: 2,
        first_frame: 6,
        reports: vec![ConvolutionReport {
            output: vec![vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE]],
            out_h: 2,
            out_w: 2,
            plan: MappingPlan {
                kernel_size_class: 3,
                slots_per_pass: 20,
                passes: 1,
                planes_last_pass: 2,
                parallel_positions: 10,
                cycles_per_pass: 4,
                rings_per_pass: 18,
                tuning_iterations_per_pass: 2,
                macs_per_cycle: 90,
            },
            timeline: Timeline {
                capture: Second::new(5e-5),
                mapping: Second::new(2e-9),
                compute: Second::new(2.232e-10),
                transmit: Second::new(4e-10),
                control: Second::new(4e-9),
            },
            energy: EnergyReport {
                sensing: Joule::new(1.25e-9),
                encoding: Joule::new(3.5e-12),
                tuning: Joule::new(7.75e-12),
                compute: Joule::new(9.5e-13),
                aggregation: Joule::new(0.0),
                memory: Joule::new(1.5e-12),
            },
        }],
    }
}

fn all_messages() -> Vec<WireMessage> {
    vec![
        WireMessage::Job(InferenceJob {
            job_id: 11,
            k: 3,
            kernels: vec![vec![0.5f32; 9]],
            frames: vec![
                Frame::constant(4, 4, 0.25).expect("valid frame"),
                Frame::constant(4, 4, 0.75).expect("valid frame"),
            ],
        }),
        WireMessage::Shard(sample_shard()),
        WireMessage::Report(sample_report()),
        WireMessage::Refusal(ShardRefusal {
            job_id: 9,
            shard_index: 0,
            code: RefusalCode::FingerprintMismatch {
                coordinator: 0x1,
                worker: 0x2,
            },
            reason: "fingerprint mismatch".into(),
        }),
        WireMessage::Ping(Handshake {
            nonce: 0xFEED_F00D,
            config_fingerprint: 0xABCD,
        }),
        WireMessage::Pong(Handshake {
            nonce: u64::MAX,
            config_fingerprint: 0,
        }),
        WireMessage::Configure(ConfigPush {
            nonce: 41,
            config: OisaConfig::small_test(),
        }),
        WireMessage::ConfigureAck(Handshake {
            nonce: 41,
            config_fingerprint: 0xBEEF,
        }),
    ]
}

#[test]
fn every_message_round_trips_through_encode_decode() {
    for message in all_messages() {
        let bytes = encode(&message);
        assert_eq!(decode(&bytes).expect("decodes"), message);
    }
}

#[test]
fn framed_stream_round_trips_in_order() {
    let messages = all_messages();
    let mut buffer = Vec::new();
    for message in &messages {
        send(&mut buffer, message).expect("send into Vec");
    }
    let mut cursor = Cursor::new(buffer);
    for expected in &messages {
        let got = receive(&mut cursor).expect("receive").expect("a frame");
        assert_eq!(&got, expected);
    }
    // Clean end-of-stream is `Ok(None)`, not an error.
    assert!(receive(&mut cursor).expect("clean EOF").is_none());
}

#[test]
fn raw_frame_layer_round_trips_arbitrary_payloads() {
    let payloads: [&[u8]; 4] = [b"", b"\x00", b"abc", &[0xFF; 300]];
    let mut buffer = Vec::new();
    for payload in payloads {
        write_frame(&mut buffer, payload).expect("write frame");
    }
    let mut cursor = Cursor::new(buffer);
    for payload in payloads {
        let got = read_frame(&mut cursor)
            .expect("read frame")
            .expect("a frame");
        assert_eq!(got, payload);
    }
    assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
}

#[test]
fn truncated_payloads_error_without_panicking() {
    let bytes = encode(&WireMessage::Shard(sample_shard()));
    // Every short prefix near the header plus a spread through the
    // body must yield a typed error, never a panic or wraparound. The
    // stride keeps the case count Miri-friendly.
    let stride = (bytes.len() / 32).max(1);
    for len in (0..bytes.len()).step_by(stride) {
        assert!(
            decode(&bytes[..len]).is_err(),
            "truncation to {len} bytes decoded successfully"
        );
    }
}

#[test]
fn corrupt_tags_error_without_panicking() {
    let bytes = encode(&WireMessage::Ping(Handshake {
        nonce: 1,
        config_fingerprint: 2,
    }));
    for byte in 0..bytes.len().min(8) {
        let mut corrupt = bytes.clone();
        corrupt[byte] ^= 0xA5;
        // Either a typed error or a decode to *some* message — the
        // point is no panic and no UB under Miri.
        let _ = decode(&corrupt);
    }
}
