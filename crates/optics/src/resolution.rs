//! Effective-resolution analysis of the optical MAC chain.
//!
//! Paper §III-A (*MR Device Engineering*) argues the Q ≈ 5000 ring
//! supports an **effective 4-bit weight resolution**: finer levels would
//! drown in detector noise and crosstalk. This module makes that claim
//! checkable: it propagates one full-scale channel through the arm's
//! loss/detection chain and converts the resulting SNR into effective
//! bits (`ENOB = (SNR_dB − 1.76) / 6.02`), and separately reports the
//! level-separation margin of the AWC ladder against the noise floor.

use oisa_device::photodiode::BalancedPhotodetector;
use oisa_device::waveguide::OpticalPath;
use oisa_units::Watt;
use serde::{Deserialize, Serialize};

use crate::arm::{ArmConfig, RINGS_PER_ARM};
use crate::weights::WeightMapper;
use crate::Result;

/// Resolution analysis of one arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionReport {
    /// Linear SNR of a full-scale single-channel measurement.
    pub snr: f64,
    /// SNR in dB.
    pub snr_db: f64,
    /// Effective number of bits from the detection chain alone.
    pub enob: f64,
    /// Smallest AWC level separation (fraction of full scale) at 4 bits.
    pub min_level_separation: f64,
    /// Noise floor as a fraction of full scale.
    pub noise_floor: f64,
    /// `true` when every 4-bit level is separated by more than the noise
    /// floor — the condition for the paper's "effective 4-bit" claim.
    pub four_bit_feasible: bool,
}

/// Analyses the arm's detection chain.
///
/// # Errors
///
/// Propagates device-construction failures.
pub fn analyze(config: &ArmConfig) -> Result<ResolutionReport> {
    let path = OpticalPath::new(config.losses)?
        .with_length(config.length)
        .with_ring_passes((RINGS_PER_ARM - 1) as u32)
        .with_splitters(1);
    let detector = BalancedPhotodetector::new(config.detector)?;
    let full_scale = Watt::new(config.channel_power.get() * path.transmission());
    let snr = detector.snr(full_scale, Watt::ZERO);
    // `snr` is a current (amplitude) ratio → dB = 20·log10.
    let snr_db = 20.0 * snr.log10();
    let enob = (snr_db - 1.76) / 6.02;
    let mapper = WeightMapper::paper(4)?;
    let levels = mapper.levels();
    let min_level_separation = levels
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min);
    let noise_floor = 1.0 / snr;
    Ok(ResolutionReport {
        snr,
        snr_db,
        enob,
        min_level_separation,
        noise_floor,
        four_bit_feasible: min_level_separation > noise_floor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_supports_four_bits() {
        let report = analyze(&ArmConfig::paper_default()).unwrap();
        assert!(
            report.four_bit_feasible,
            "paper design must support 4-bit weights: {report:?}"
        );
        // The detection chain itself resolves at least 4 bits…
        assert!(report.enob >= 4.0, "ENOB {}", report.enob);
        // …but not absurdly many (the paper's argument against higher
        // resolutions at this channel power).
        assert!(report.enob < 12.0, "ENOB {} implausibly high", report.enob);
    }

    #[test]
    fn starved_channel_power_breaks_the_claim() {
        let mut config = ArmConfig::paper_default();
        config.channel_power = Watt::from_nano(50.0);
        let report = analyze(&config).unwrap();
        assert!(
            !report.four_bit_feasible,
            "50 nW channels cannot support 4-bit levels: {report:?}"
        );
    }

    #[test]
    fn snr_improves_with_power() {
        let mut low = ArmConfig::paper_default();
        low.channel_power = Watt::from_micro(20.0);
        let mut high = ArmConfig::paper_default();
        high.channel_power = Watt::from_micro(500.0);
        let r_low = analyze(&low).unwrap();
        let r_high = analyze(&high).unwrap();
        assert!(r_high.snr > r_low.snr);
        assert!(r_high.enob > r_low.enob);
    }

    #[test]
    fn compressed_ladder_has_tighter_top_levels() {
        let report = analyze(&ArmConfig::paper_default()).unwrap();
        // The mismatch ladder's minimum separation is well below the
        // ideal LSB (1/15), which is exactly why the 4th bit buys little.
        assert!(report.min_level_separation < 1.0 / 15.0);
        assert!(report.min_level_separation > 0.0);
    }
}
