//! The three comparison platform models.
//!
//! Each model reports a component power breakdown at the normalised
//! comparison rate ([`crate::reference_mac_rate`]). Per-operation energy
//! constants are documented inline; converter energies scale as `2^bits`
//! (the classic SAR/capacitor-array law), which is what makes the
//! electronic platforms grow steeply across Fig. 9's bit-width sweep
//! while OISA stays nearly flat.

use oisa_memory::model::{MemoryKind, MemoryMacro};
use oisa_units::Watt;
use serde::{Deserialize, Serialize};

use crate::{reference_mac_rate, BaselineError, PlatformPower, Result};

fn check_bits(bits: u8) -> Result<()> {
    if !(1..=4).contains(&bits) {
        return Err(BaselineError::InvalidParameter(format!(
            "weight bit-width {bits} outside 1..=4"
        )));
    }
    Ok(())
}

/// Crosslight-like optical PIS \[18\].
///
/// Same photonic fabric class as OISA, with the two structural
/// differences the paper calls out (§IV):
///
/// * **half the rings map activations**, so matching OISA's delivered
///   rate requires twice the fabric activity per useful MAC;
/// * activations enter through **DACs** (one conversion per activation
///   element per arm evaluation) and results leave through **ADCs** (one
///   conversion per arm result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrosslightLike {
    /// Arms in the fabric (matching OISA's 400).
    pub arms: usize,
    /// Activation elements per arm result.
    pub elements_per_arm: usize,
}

impl Default for CrosslightLike {
    fn default() -> Self {
        Self {
            arms: 400,
            elements_per_arm: 9,
        }
    }
}

impl CrosslightLike {
    /// Power breakdown at the reference rate for `[bits : 2]`.
    ///
    /// Energy constants: DAC ≈ 3.75 fJ × 2^bits per conversion, ADC ≈
    /// 28 fJ × 2^bits per conversion (moderate-rate SAR converters),
    /// optical fabric ≈ 2 × OISA's per-arm optical energy (double ring
    /// count).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidParameter`] for `bits` outside
    /// 1–4.
    pub fn power(&self, bits: u8) -> Result<PlatformPower> {
        check_bits(bits)?;
        let mac_rate = reference_mac_rate();
        let arm_rate = mac_rate / self.elements_per_arm as f64;
        let pow2 = f64::from(1u32 << bits);
        // Converters.
        let dac_energy = 3.75e-15 * pow2; // per activation conversion
        let adc_energy = 28e-15 * pow2; // per arm-result conversion
        let dac = Watt::new(dac_energy * mac_rate);
        let adc = Watt::new(adc_energy * arm_rate);
        // Optical fabric: OISA-class VCSEL/TED/BPD but with doubled ring
        // count (activation rings) → 2× TED, same VCSEL/BPD.
        let vcsel = Watt::from_milli(360.0);
        let ted = Watt::from_milli(2.0 * 4000.0 * 0.1);
        let bpd = Watt::from_milli(400.0 * 0.5);
        let misc = Watt::from_milli(120.0);
        Ok(PlatformPower {
            platform: "Crosslight-like".into(),
            components: vec![
                ("ADC".into(), adc),
                ("DAC".into(), dac),
                ("VCSEL".into(), vcsel),
                ("TED".into(), ted),
                ("BPD".into(), bpd),
                ("misc".into(), misc),
            ],
        })
    }

    /// Converter instance counts for Fig. 9's right panel: one ADC per
    /// arm, one DAC per activation ring.
    #[must_use]
    pub fn converter_counts(&self) -> (usize, usize) {
        (self.arms, self.arms * self.elements_per_arm)
    }
}

/// AppCiP-like electronic processing-in-pixel accelerator \[13\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppCipLike {
    /// Pixel array side (paper's AppCiP: 32×32; scaled workloads tile
    /// it).
    pub array: usize,
}

impl Default for AppCipLike {
    fn default() -> Self {
        Self { array: 32 }
    }
}

impl AppCipLike {
    /// Power breakdown at the reference rate for `[bits : 2]`.
    ///
    /// Energy constants per elementwise MAC: analog in-pixel MAC
    /// 30 + 2.5·bits fJ; folded-ADC 3.75 fJ × 2^bits (shared comparator
    /// tree, amortised); NVM weight read ≈ 15 fJ (from the NVSim-like
    /// macro model); array drivers ≈ 5 fJ.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidParameter`] for `bits` outside
    /// 1–4.
    pub fn power(&self, bits: u8) -> Result<PlatformPower> {
        check_bits(bits)?;
        let rate = reference_mac_rate();
        let pow2 = f64::from(1u32 << bits);
        let analog_mac = Watt::new((30.0 + 2.5 * f64::from(bits)) * 1e-15 * rate);
        let adc = Watt::new(3.75e-15 * pow2 * rate);
        // NVM read amortised per MAC from the macro model (word read
        // spread over its bits).
        let nvm = MemoryMacro::new(MemoryKind::Nvm, 45, 4096, u32::from(bits))
            .map_err(|e| BaselineError::InvalidParameter(e.to_string()))?;
        let nvm_per_mac = nvm.read_energy().get() / f64::from(bits) / 8.0;
        let nvm_power = Watt::new(nvm_per_mac * rate);
        let drivers = Watt::new(5e-15 * rate);
        Ok(PlatformPower {
            platform: "AppCiP-like".into(),
            components: vec![
                ("ADC".into(), adc),
                ("analog MAC".into(), analog_mac),
                ("NVM".into(), nvm_power),
                ("drivers".into(), drivers),
            ],
        })
    }

    /// Converter counts: one folded ADC per pixel column pair, no DACs.
    #[must_use]
    pub fn converter_counts(&self) -> (usize, usize) {
        (self.array / 2, 0)
    }
}

/// DaDianNao-like digital ASIC \[29\] behind a conventional image sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsicBaseline {
    /// Tile grid side (paper: 8×8 tiles).
    pub tiles: usize,
    /// Sensor side feeding the ASIC (paper: 128×128 with full ADC
    /// readout).
    pub sensor: usize,
}

impl Default for AsicBaseline {
    fn default() -> Self {
        Self {
            tiles: 8,
            sensor: 128,
        }
    }
}

impl AsicBaseline {
    /// Power breakdown at the reference rate for `[bits : 2]`.
    ///
    /// Energy constants per elementwise MAC: eDRAM traffic ≈ 150 fJ (from
    /// the macro model's per-bit read energy over a 16-bit operand pair),
    /// digital MAC ≈ 60 fJ × (bits/4)² (array multiplier scaling), NoC +
    /// buffers ≈ 50 fJ, sensor ADC chain ≈ 3.75 fJ × 2^8 amortised over
    /// the ~2300 MACs each pixel feeds (8-bit conversion per pixel).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidParameter`] for `bits` outside
    /// 1–4.
    pub fn power(&self, bits: u8) -> Result<PlatformPower> {
        check_bits(bits)?;
        let rate = reference_mac_rate();
        let b = f64::from(bits);
        let edram = Watt::new(150e-15 * rate);
        let mac = Watt::new(60e-15 * (b / 4.0) * (b / 4.0) * rate + 15e-15 * rate);
        let noc = Watt::new(50e-15 * rate);
        // Per-pixel 8-bit ADC amortised over the MACs one pixel feeds:
        // 64 kernels × 49 taps / stride² ≈ 2300 → ≈ 0.4 fJ/MAC.
        let adc = Watt::new(3.75e-15 * 256.0 / 2300.0 * rate);
        Ok(PlatformPower {
            platform: "ASIC (DaDianNao-like)".into(),
            components: vec![
                ("eDRAM".into(), edram),
                ("MAC array".into(), mac),
                ("NoC/buffers".into(), noc),
                ("ADC".into(), adc),
            ],
        })
    }

    /// Converter counts: one ADC per sensor column, no DACs.
    #[must_use]
    pub fn converter_counts(&self) -> (usize, usize) {
        (self.sensor, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// OISA's compute power at [4:2] from `oisa_core::perf` (kept as a
    /// constant here to avoid a dependency cycle; the cross-crate
    /// integration test revalidates it).
    const OISA_POWER_W_4BIT: f64 = 1.073;

    #[test]
    fn crosslight_ratio_near_paper() {
        let p = CrosslightLike::default().power(4).unwrap().total().get();
        let ratio = p / OISA_POWER_W_4BIT;
        assert!(
            (ratio - 8.3).abs() < 1.7,
            "Crosslight/OISA ratio {ratio} vs paper 8.3"
        );
    }

    #[test]
    fn appcip_ratio_near_paper() {
        let p = AppCipLike::default().power(4).unwrap().total().get();
        let ratio = p / OISA_POWER_W_4BIT;
        assert!(
            (ratio - 7.9).abs() < 1.6,
            "AppCiP/OISA ratio {ratio} vs paper 7.9"
        );
    }

    #[test]
    fn asic_ratio_near_paper() {
        let p = AsicBaseline::default().power(4).unwrap().total().get();
        let ratio = p / OISA_POWER_W_4BIT;
        assert!(
            (ratio - 18.4).abs() < 3.7,
            "ASIC/OISA ratio {ratio} vs paper 18.4"
        );
    }

    #[test]
    fn orderings_hold_at_all_bit_widths() {
        for bits in 1..=4u8 {
            let cl = CrosslightLike::default().power(bits).unwrap().total().get();
            let ap = AppCipLike::default().power(bits).unwrap().total().get();
            let asic = AsicBaseline::default().power(bits).unwrap().total().get();
            assert!(
                asic > cl && asic > ap,
                "[{bits},2]: ASIC must be the most power-hungry"
            );
            assert!(cl > OISA_POWER_W_4BIT && ap > OISA_POWER_W_4BIT);
        }
    }

    #[test]
    fn electronic_platforms_grow_faster_with_bits_than_crosslight_optics() {
        let growth = |p1: f64, p4: f64| p4 / p1;
        let cl = CrosslightLike::default();
        let ap = AppCipLike::default();
        let g_cl = growth(
            cl.power(1).unwrap().total().get(),
            cl.power(4).unwrap().total().get(),
        );
        let g_ap = growth(
            ap.power(1).unwrap().total().get(),
            ap.power(4).unwrap().total().get(),
        );
        // Converter-dominated platforms steepen with bits.
        assert!(g_cl > 1.5, "Crosslight growth {g_cl}");
        assert!(g_ap > 1.2, "AppCiP growth {g_ap}");
    }

    #[test]
    fn crosslight_breakdown_dominated_by_converters() {
        let p = CrosslightLike::default().power(4).unwrap();
        let converters = p.component("ADC") + p.component("DAC");
        assert!(
            converters.get() > 0.5 * p.total().get(),
            "ADC+DAC should dominate Crosslight at 4 bits"
        );
    }

    #[test]
    fn converter_counts() {
        assert_eq!(CrosslightLike::default().converter_counts(), (400, 3600));
        assert_eq!(AppCipLike::default().converter_counts(), (16, 0));
        assert_eq!(AsicBaseline::default().converter_counts(), (128, 0));
    }

    #[test]
    fn bits_validated() {
        assert!(CrosslightLike::default().power(0).is_err());
        assert!(AppCipLike::default().power(5).is_err());
        assert!(AsicBaseline::default().power(9).is_err());
    }
}
