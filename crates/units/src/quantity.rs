//! Newtype quantities and their arithmetic.
//!
//! Each quantity wraps an `f64` in SI base units. A macro generates the
//! common surface (constructors with SI prefixes, accessors, `Display` with
//! an engineering suffix, ordering, arithmetic within the same quantity and
//! scalar scaling); the physically meaningful cross-quantity products and
//! quotients are spelled out explicitly below so the type system documents
//! the physics.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a value in SI base units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in SI base units.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Creates a quantity from a value in units of 10⁻¹⁵ (femto).
            #[must_use]
            pub fn from_femto(value: f64) -> Self {
                Self(value * 1e-15)
            }

            /// Creates a quantity from a value in units of 10⁻¹² (pico).
            #[must_use]
            pub fn from_pico(value: f64) -> Self {
                Self(value * 1e-12)
            }

            /// Creates a quantity from a value in units of 10⁻⁹ (nano).
            #[must_use]
            pub fn from_nano(value: f64) -> Self {
                Self(value * 1e-9)
            }

            /// Creates a quantity from a value in units of 10⁻⁶ (micro).
            #[must_use]
            pub fn from_micro(value: f64) -> Self {
                Self(value * 1e-6)
            }

            /// Creates a quantity from a value in units of 10⁻³ (milli).
            #[must_use]
            pub fn from_milli(value: f64) -> Self {
                Self(value * 1e-3)
            }

            /// Creates a quantity from a value in units of 10³ (kilo).
            #[must_use]
            pub fn from_kilo(value: f64) -> Self {
                Self(value * 1e3)
            }

            /// Creates a quantity from a value in units of 10⁶ (mega).
            #[must_use]
            pub fn from_mega(value: f64) -> Self {
                Self(value * 1e6)
            }

            /// Creates a quantity from a value in units of 10⁹ (giga).
            #[must_use]
            pub fn from_giga(value: f64) -> Self {
                Self(value * 1e9)
            }

            /// Creates a quantity from a value in units of 10¹² (tera).
            #[must_use]
            pub fn from_tera(value: f64) -> Self {
                Self(value * 1e12)
            }

            /// Returns the value in units of 10⁻¹⁵ (femto).
            #[must_use]
            pub fn as_femto(self) -> f64 {
                self.0 * 1e15
            }

            /// Returns the value in units of 10⁻¹² (pico).
            #[must_use]
            pub fn as_pico(self) -> f64 {
                self.0 * 1e12
            }

            /// Returns the value in units of 10⁻⁹ (nano).
            #[must_use]
            pub fn as_nano(self) -> f64 {
                self.0 * 1e9
            }

            /// Returns the value in units of 10⁻⁶ (micro).
            #[must_use]
            pub fn as_micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Returns the value in units of 10⁻³ (milli).
            #[must_use]
            pub fn as_milli(self) -> f64 {
                self.0 * 1e3
            }

            /// Returns the value in units of 10³ (kilo).
            #[must_use]
            pub fn as_kilo(self) -> f64 {
                self.0 * 1e-3
            }

            /// Returns the value in units of 10⁶ (mega).
            #[must_use]
            pub fn as_mega(self) -> f64 {
                self.0 * 1e-6
            }

            /// Returns the value in units of 10⁹ (giga).
            #[must_use]
            pub fn as_giga(self) -> f64 {
                self.0 * 1e-9
            }

            /// Returns the value in units of 10¹² (tera).
            #[must_use]
            pub fn as_tera(self) -> f64 {
                self.0 * 1e-12
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Element-wise minimum.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity between `lo` and `hi`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN (per
            /// [`f64::clamp`]).
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Dimensionless ratio of two quantities of the same kind.
            #[must_use]
            pub fn ratio(self, denominator: Self) -> f64 {
                self.0 / denominator.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let (scaled, prefix) = engineering(self.0);
                if let Some(precision) = f.precision() {
                    write!(f, "{scaled:.precision$} {prefix}{}", $unit)
                } else {
                    write!(f, "{scaled:.4} {prefix}{}", $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volt,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Ampere,
    "A"
);
quantity!(
    /// Power in watts.
    Watt,
    "W"
);
quantity!(
    /// Energy in joules.
    Joule,
    "J"
);
quantity!(
    /// Time in seconds.
    Second,
    "s"
);
quantity!(
    /// Length in metres.
    Meter,
    "m"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Capacitance in farads.
    Farad,
    "F"
);
quantity!(
    /// Resistance in ohms.
    Ohm,
    "Ω"
);
quantity!(
    /// Area in square metres.
    SquareMeter,
    "m²"
);
quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Relative temperature in degrees Celsius.
    Celsius,
    "°C"
);

/// Picks an engineering prefix for display.
fn engineering(value: f64) -> (f64, &'static str) {
    let magnitude = value.abs();
    if magnitude == 0.0 || !magnitude.is_finite() {
        return (value, "");
    }
    const STEPS: [(f64, &str); 9] = [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "µ"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    for (scale, prefix) in STEPS {
        if magnitude >= scale {
            return (value / scale, prefix);
        }
    }
    (value / 1e-15, "f")
}

// --- Physically meaningful cross-quantity arithmetic -----------------------

impl Mul<Ampere> for Volt {
    type Output = Watt;
    /// Electrical power: `P = V · I`.
    fn mul(self, rhs: Ampere) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

impl Mul<Volt> for Ampere {
    type Output = Watt;
    /// Electrical power: `P = I · V`.
    fn mul(self, rhs: Volt) -> Watt {
        Watt(self.0 * rhs.0)
    }
}

impl Mul<Second> for Watt {
    type Output = Joule;
    /// Energy: `E = P · t`.
    fn mul(self, rhs: Second) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

impl Mul<Watt> for Second {
    type Output = Joule;
    /// Energy: `E = t · P`.
    fn mul(self, rhs: Watt) -> Joule {
        Joule(self.0 * rhs.0)
    }
}

impl Div<Second> for Joule {
    type Output = Watt;
    /// Average power: `P = E / t`.
    fn div(self, rhs: Second) -> Watt {
        Watt(self.0 / rhs.0)
    }
}

impl Div<Watt> for Joule {
    type Output = Second;
    /// Duration at constant power: `t = E / P`.
    fn div(self, rhs: Watt) -> Second {
        Second(self.0 / rhs.0)
    }
}

impl Div<Ohm> for Volt {
    type Output = Ampere;
    /// Ohm's law: `I = V / R`.
    fn div(self, rhs: Ohm) -> Ampere {
        Ampere(self.0 / rhs.0)
    }
}

impl Mul<Ohm> for Ampere {
    type Output = Volt;
    /// Ohm's law: `V = I · R`.
    fn mul(self, rhs: Ohm) -> Volt {
        Volt(self.0 * rhs.0)
    }
}

impl Div<Ampere> for Volt {
    type Output = Ohm;
    /// Ohm's law: `R = V / I`.
    fn div(self, rhs: Ampere) -> Ohm {
        Ohm(self.0 / rhs.0)
    }
}

impl Mul<Volt> for Farad {
    type Output = f64;
    /// Charge in coulombs: `Q = C · V`.
    fn mul(self, rhs: Volt) -> f64 {
        self.0 * rhs.0
    }
}

impl Div<Hertz> for f64 {
    type Output = Second;
    /// Period: `t = 1 / f` (use as `1.0 / freq`).
    fn div(self, rhs: Hertz) -> Second {
        Second(self / rhs.0)
    }
}

impl Mul<Meter> for Meter {
    type Output = SquareMeter;
    /// Area: `A = l · w`.
    fn mul(self, rhs: Meter) -> SquareMeter {
        SquareMeter(self.0 * rhs.0)
    }
}

impl Mul<Second> for Ampere {
    type Output = f64;
    /// Charge in coulombs: `Q = I · t`.
    fn mul(self, rhs: Second) -> f64 {
        self.0 * rhs.0
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        Kelvin(c.0 + 273.15)
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        Celsius(k.0 - 273.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_constructors_and_accessors() {
        assert_eq!(Second::from_nano(5.0).get(), 5e-9);
        assert!((Second::from_pico(55.8).as_nano() - 0.0558).abs() < 1e-12);
        assert_eq!(Watt::from_milli(3.0).as_micro(), 3000.0);
        assert_eq!(Hertz::from_giga(2.5).as_mega(), 2500.0);
        assert_eq!(Meter::from_micro(5.0).as_nano(), 5000.0);
        assert!((Joule::from_femto(12.0).get() - 12e-15).abs() < 1e-27);
    }

    #[test]
    fn power_energy_chain() {
        let p = Volt::new(1.0) * Ampere::from_micro(250.0);
        assert_eq!(p, Watt::from_micro(250.0));
        let e = p * Second::from_nano(4.0);
        assert!((e.as_pico() - 1.0).abs() < 1e-12);
        let back = e / Second::from_nano(4.0);
        assert!((back.get() - p.get()).abs() < 1e-18);
    }

    #[test]
    fn ohms_law_triangle() {
        let v = Volt::new(1.2);
        let r = Ohm::from_kilo(10.0);
        let i = v / r;
        assert!((i.as_micro() - 120.0).abs() < 1e-9);
        assert!(((i * r).get() - v.get()).abs() < 1e-15);
        assert!(((v / i).get() - r.get()).abs() < 1e-6);
    }

    #[test]
    fn same_quantity_arithmetic() {
        let a = Joule::from_pico(3.0) + Joule::from_pico(4.0);
        assert!((a.as_pico() - 7.0).abs() < 1e-12);
        let d = Joule::from_pico(3.0) - Joule::from_pico(4.0);
        assert!((d.as_pico() + 1.0).abs() < 1e-12);
        assert!((-d).get() > 0.0);
        assert!((Watt::new(4.0) / Watt::new(2.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joule = (1..=4).map(|i| Joule::from_nano(f64::from(i))).sum();
        assert!((total.as_nano() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_prefixes() {
        assert_eq!(format!("{:.1}", Watt::from_milli(1.6)), "1.6 mW");
        assert_eq!(format!("{:.0}", Second::from_pico(55.8)), "56 ps");
        assert_eq!(format!("{:.2}", Hertz::from_tera(7.1)), "7.10 THz");
        assert_eq!(format!("{:.1}", Volt::ZERO), "0.0 V");
    }

    #[test]
    fn clamp_min_max_abs() {
        let v = Volt::new(-0.5);
        assert_eq!(v.abs(), Volt::new(0.5));
        assert_eq!(v.clamp(Volt::ZERO, Volt::new(1.0)), Volt::ZERO);
        assert_eq!(Volt::new(0.3).max(Volt::new(0.7)), Volt::new(0.7));
        assert_eq!(Volt::new(0.3).min(Volt::new(0.7)), Volt::new(0.3));
    }

    #[test]
    fn temperature_conversions() {
        let k: Kelvin = Celsius::new(25.0).into();
        assert!((k.get() - 298.15).abs() < 1e-12);
        let c: Celsius = Kelvin::new(300.0).into();
        assert!((c.get() - 26.85).abs() < 1e-12);
    }

    #[test]
    fn charge_products() {
        let q1 = Farad::from_femto(10.0) * Volt::new(1.0);
        assert!((q1 - 10e-15).abs() < 1e-27);
        let q2 = Ampere::from_micro(1.0) * Second::from_micro(1.0);
        assert!((q2 - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn period_from_frequency() {
        let t = 1.0 / Hertz::from_giga(1.0);
        assert!((t.as_nano() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_product() {
        let a = Meter::from_micro(4.5) * Meter::from_micro(4.5);
        assert!((a.get() - 20.25e-12).abs() < 1e-24);
    }

    #[test]
    fn serde_transparent_round_trip() {
        // serde_test is not available offline; exercise the Serialize path
        // through the `serde::Serialize` impl directly via to-string of the
        // Debug form is not meaningful, so check the transparent repr by
        // transmuting semantics: Volt -> f64 via get().
        let v = Volt::new(1.25);
        assert_eq!(v.get(), 1.25);
    }
}
