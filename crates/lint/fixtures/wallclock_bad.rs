// Fixture: wall-clock reads inside a deterministic compute path.
use std::time::{Instant, SystemTime};

pub fn jitter_seed() -> u128 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = (t0, wall);
    0
}
