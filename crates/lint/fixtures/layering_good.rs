//! Good: a device-layer file importing only its declared
//! dependencies (`oisa_units`, `oisa_spice`) and the standard
//! library.

use oisa_spice::op_point;
use oisa_units::{Seconds, Volts};
use std::collections::BTreeMap;

pub fn sweep(bias: Volts, dt: Seconds) -> BTreeMap<u32, f64> {
    let _ = (bias, dt, op_point);
    BTreeMap::new()
}
