//! `oisa-lint self-test`: proves every rule fires on a bad fixture and
//! stays quiet on the matching good fixture.
//!
//! Fixtures live in `crates/lint/fixtures/` (embedded at compile time,
//! so the binary self-tests from any working directory). Each is
//! checked under a *virtual* workspace path that puts it in the rule's
//! scope — the fixtures directory itself is never walked by a normal
//! run. Per-file **and** workspace (flow) rules both run on every
//! fixture: the flow rules see the fixture as a one-file virtual
//! workspace, and any stray finding from another rule fails the case.

use crate::rules::{self, SourceFile};
use crate::{flow, rules as r};

struct Case {
    /// Fixture file name, for reporting.
    name: &'static str,
    /// Embedded fixture source.
    source: &'static str,
    /// Virtual path that places the fixture in the rule's scope.
    virtual_path: &'static str,
    /// Rule expected to fire (all cases must trip *only* this rule).
    rule: &'static str,
    /// Exact number of findings expected.
    expect: usize,
}

const CASES: &[Case] = &[
    Case {
        name: "unsafe_bad.rs",
        source: include_str!("../fixtures/unsafe_bad.rs"),
        virtual_path: "crates/device/src/lint_fixture.rs",
        rule: r::RULE_UNSAFE,
        expect: 1,
    },
    Case {
        name: "unsafe_good.rs",
        source: include_str!("../fixtures/unsafe_good.rs"),
        virtual_path: "crates/device/src/lint_fixture.rs",
        rule: r::RULE_UNSAFE,
        expect: 0,
    },
    Case {
        name: "wallclock_bad.rs",
        source: include_str!("../fixtures/wallclock_bad.rs"),
        virtual_path: "crates/optics/src/lint_fixture.rs",
        rule: r::RULE_WALLCLOCK,
        // Two clock types, each named in the `use` and at a call site.
        expect: 4,
    },
    Case {
        name: "wallclock_good.rs",
        source: include_str!("../fixtures/wallclock_good.rs"),
        virtual_path: "crates/optics/src/lint_fixture.rs",
        rule: r::RULE_WALLCLOCK,
        expect: 0,
    },
    Case {
        name: "float_wire_bad.rs",
        source: include_str!("../fixtures/float_wire_bad.rs"),
        virtual_path: "crates/core/src/backend/mod.rs",
        rule: r::RULE_FLOAT_WIRE,
        // One float `==`, one `{x:.6}` format spec.
        expect: 2,
    },
    Case {
        name: "float_wire_good.rs",
        source: include_str!("../fixtures/float_wire_good.rs"),
        virtual_path: "crates/core/src/backend/mod.rs",
        rule: r::RULE_FLOAT_WIRE,
        expect: 0,
    },
    Case {
        name: "tags_bad.rs",
        source: include_str!("../fixtures/tags_bad.rs"),
        virtual_path: "crates/core/src/wire.rs",
        rule: r::RULE_TAG_REGISTRY,
        // One value collision, one tag missing from the gating table.
        expect: 2,
    },
    Case {
        name: "tags_good.rs",
        source: include_str!("../fixtures/tags_good.rs"),
        virtual_path: "crates/core/src/wire.rs",
        rule: r::RULE_TAG_REGISTRY,
        expect: 0,
    },
    Case {
        name: "spawn_bad.rs",
        source: include_str!("../fixtures/spawn_bad.rs"),
        virtual_path: "crates/nn/src/lint_fixture.rs",
        rule: r::RULE_BARE_SPAWN,
        expect: 1,
    },
    Case {
        name: "spawn_good.rs",
        source: include_str!("../fixtures/spawn_good.rs"),
        virtual_path: "crates/core/src/backend/lint_fixture.rs",
        rule: r::RULE_BARE_SPAWN,
        expect: 0,
    },
    Case {
        name: "lock_order_bad.rs",
        source: include_str!("../fixtures/lock_order_bad.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_LOCK_ORDER,
        // One cycle in the queue/stats order graph.
        expect: 1,
    },
    Case {
        name: "lock_order_good.rs",
        source: include_str!("../fixtures/lock_order_good.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_LOCK_ORDER,
        expect: 0,
    },
    Case {
        name: "panic_bad.rs",
        source: include_str!("../fixtures/panic_bad.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_PANIC,
        // One `.unwrap()` two call edges below the entry point.
        expect: 1,
    },
    Case {
        name: "panic_good.rs",
        source: include_str!("../fixtures/panic_good.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_PANIC,
        expect: 0,
    },
    Case {
        name: "taint_bad.rs",
        source: include_str!("../fixtures/taint_bad.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_TAINT,
        // One tainted local reaching `wire::encode_header`.
        expect: 1,
    },
    Case {
        name: "taint_good.rs",
        source: include_str!("../fixtures/taint_good.rs"),
        virtual_path: "crates/core/src/lint_fixture.rs",
        rule: r::RULE_TAINT,
        expect: 0,
    },
    Case {
        name: "layering_bad.rs",
        source: include_str!("../fixtures/layering_bad.rs"),
        virtual_path: "crates/device/src/lint_fixture.rs",
        rule: r::RULE_LAYERING,
        expect: 1,
    },
    Case {
        name: "layering_good.rs",
        source: include_str!("../fixtures/layering_good.rs"),
        virtual_path: "crates/device/src/lint_fixture.rs",
        rule: r::RULE_LAYERING,
        expect: 0,
    },
];

/// Runs every fixture case. `Ok(report)` when all pass; `Err(report)`
/// listing the failures otherwise.
pub fn run() -> Result<String, String> {
    let mut report = String::new();
    let mut failures = 0usize;
    let mut fired: Vec<&'static str> = Vec::new();
    for case in CASES {
        let file = SourceFile::parse(case.virtual_path, case.source);
        let mut findings = rules::check_file(&file);
        findings.extend(flow::check_workspace_files(std::slice::from_ref(&file)));
        let (hits, strays): (Vec<_>, Vec<_>) =
            findings.into_iter().partition(|f| f.rule == case.rule);
        let ok = hits.len() == case.expect && strays.is_empty();
        if ok {
            if case.expect > 0 {
                fired.push(case.rule);
            }
            report.push_str(&format!(
                "ok   {:<20} {} x{}\n",
                case.name, case.rule, case.expect
            ));
        } else {
            failures += 1;
            report.push_str(&format!(
                "FAIL {:<20} expected {} x{}, got x{}; {} stray finding(s)\n",
                case.name,
                case.rule,
                case.expect,
                hits.len(),
                strays.len()
            ));
            for f in hits.iter().chain(strays.iter()) {
                report.push_str(&format!(
                    "       {}:{}:{} [{}] {}\n",
                    f.path, f.line, f.col, f.rule, f.message
                ));
            }
        }
    }
    // Defense in depth: every rule in the catalogue must have fired on
    // at least one bad fixture.
    for rule in rules::ALL_RULES {
        if !fired.contains(rule) {
            failures += 1;
            report.push_str(&format!("FAIL no fixture exercises rule `{rule}`\n"));
        }
    }
    report.push_str(&format!(
        "self-test: {} case(s), {} failure(s)\n",
        CASES.len(),
        failures
    ));
    if failures == 0 {
        Ok(report)
    } else {
        Err(report)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        if let Err(report) = super::run() {
            panic!("{report}");
        }
    }
}
