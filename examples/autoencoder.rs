//! Autoencoder drill: a whole **layer program** — conv → ternary
//! quantize → dense → ReLU — runs end-to-end through the sharded
//! backend, and only the latent code ever leaves the sensor fleet.
//!
//! This is the paper's thing-centric split taken one layer further
//! than the conv examples: each worker executes the *entire encoder*
//! (the optical first layer, the VAM-style ternary quantizer and the
//! latent projection on the same fabric) per frame, and ships a
//! latent vector of a few floats instead of feature maps or pixels.
//! The coordinator — standing in for the off-chip processor — runs
//! the float **decoder** and reconstructs the quantized feature maps.
//!
//! The drill verifies, and exits non-zero otherwise (making it a CI
//! check):
//!
//! 1. **Bit-identical sharding** — the per-frame reports merged from
//!    2+ workers equal [`run_reference`], one sequential forward on a
//!    single accelerator, bit for bit (outputs *and* stage reports).
//! 2. **Coordinator-side decode** — the latent codes decode into
//!    finite reconstructions of the encoder's quantized feature maps
//!    (the weights are untrained; the drill pins the pipeline, not
//!    the accuracy).
//!
//! ```sh
//! cargo run --release --example autoencoder          # in-process workers
//! cargo run --release --example autoencoder -- --tcp # loopback TCP daemons
//! ```

use oisa::core::backend::{
    ComputeBackend, ShardTransport, ShardedBackend, TcpTransport, TcpTransportConfig, TcpWorker,
};
use oisa::core::program::{run_reference, LayerProgram, QuantizeKind, Stage};
use oisa::core::wire::ProgramJob;
use oisa::core::OisaConfig;
use oisa::device::noise::NoiseConfig;
use oisa::nn::Tensor;
use oisa::sensor::Frame;
use std::time::Duration;

const IMG: usize = 16;
const FEATURES: usize = 3;
const LATENT: usize = 8;
const SEED: u64 = 77;
const WORKERS: usize = 3;

fn node_config() -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(IMG, IMG)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(SEED)
        .build()
        .expect("deployment config validates")
}

/// Frame `t` of the sensor burst: a gradient with a moving bright band.
fn capture(t: usize) -> Frame {
    let pixels: Vec<f64> = (0..IMG * IMG)
        .map(|i| {
            let row = i / IMG;
            let base = 0.15 + 0.4 * (row as f64 / IMG as f64);
            if row % 5 == t % 5 {
                (base + 0.4).min(1.0)
            } else {
                base
            }
        })
        .collect();
    Frame::new(IMG, IMG, pixels).expect("valid frame")
}

fn build_backend(
    tcp: bool,
    config: OisaConfig,
) -> Result<ShardedBackend, Box<dyn std::error::Error>> {
    if !tcp {
        return Ok(ShardedBackend::in_process(config, WORKERS)?);
    }
    // Loopback TCP daemons: real sockets, the real wire path — the
    // multi-host deployment shape without process re-exec.
    let options = TcpTransportConfig {
        connect_timeout: Duration::from_secs(2),
        io_timeout: Some(Duration::from_secs(20)),
        attempts: 2,
        backoff: Duration::from_millis(50),
        handshake: true,
    };
    let daemons: Vec<_> = (0..WORKERS)
        .map(|_| TcpWorker::bind(config, "127.0.0.1:0")?.spawn())
        .collect::<Result<_, _>>()?;
    let workers: Vec<Box<dyn ShardTransport>> = daemons
        .iter()
        .map(|d| {
            TcpTransport::connect(d.endpoint(), config.fingerprint(), options)
                .map(|t| Box::new(t) as Box<dyn ShardTransport>)
        })
        .collect::<Result<_, _>>()?;
    // The daemon threads serve until their listener drops; leaking the
    // handles keeps them alive for the process lifetime of this drill.
    std::mem::forget(daemons);
    Ok(ShardedBackend::new(config, workers)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tcp = std::env::args().any(|a| a == "--tcp");
    run_drill(tcp)
}

fn run_drill(tcp: bool) -> Result<(), Box<dyn std::error::Error>> {
    let config = node_config();
    let program = LayerProgram::autoencoder(IMG, IMG, FEATURES, LATENT, SEED)?;
    let frames: Vec<Frame> = (0..8).map(capture).collect();
    let conv_out = FEATURES * (IMG - 2) * (IMG - 2);

    println!(
        "OISA autoencoder drill ({})",
        if tcp {
            "loopback TCP daemons"
        } else {
            "in-process workers"
        }
    );
    println!("================================================\n");
    println!(
        "encoder: conv {FEATURES}x3x3 -> ternary quantize -> dense {conv_out}->{LATENT} -> ReLU"
    );
    println!(
        "uplink per frame: {LATENT} latent floats ({} B) vs {} B raw pixels ({:.0}x smaller)\n",
        LATENT * 4,
        IMG * IMG,
        (IMG * IMG) as f64 / (LATENT * 4) as f64
    );

    // Encode on the sharded fleet: every worker runs the whole encoder
    // per frame; inter-stage tensors never cross the wire.
    let mut backend = build_backend(tcp, config)?;
    let job = ProgramJob {
        job_id: 1,
        program: program.clone(),
        frames: frames.clone(),
    };
    let merged = backend.run_program(&job)?;

    // Acceptance check 1: bit-identical to one sequential forward.
    let oracle = run_reference(&config, 0, &program, &frames)?;
    assert_eq!(
        merged, oracle,
        "sharded encode must be bit-identical to the sequential forward"
    );
    println!(
        "encode: {} frames over {WORKERS} workers -> {} latent codes \
         (bit-identical to the sequential forward)",
        frames.len(),
        merged.len()
    );

    // Decode at the coordinator: a float dense layer (no optics, no
    // quantisers — the off-chip processor is a plain DNN host).
    let decoder = Tensor::he_normal(vec![LATENT, conv_out], LATENT, SEED.wrapping_add(2));
    // The reconstruction target is the encoder's own quantized feature
    // maps — the prefix of the program before the latent projection.
    let prefix = LayerProgram::new(match &program.stages[..2] {
        [conv @ Stage::Conv { .. }, quant @ Stage::Quantize(QuantizeKind::Ternary)] => {
            vec![conv.clone(), quant.clone()]
        }
        other => unreachable!("autoencoder() always starts conv->ternary, got {other:?}"),
    })?;
    let targets = run_reference(&config, 0, &prefix, &frames)?;

    let mut rms_sum = 0.0f64;
    for (report, target) in merged.iter().zip(&targets) {
        let latent = Tensor::from_vec(vec![1, LATENT], report.output.clone())?;
        let reconstructed = latent.matmul(&decoder)?;
        let rms = reconstructed
            .as_slice()
            .iter()
            .zip(target.output.iter())
            .map(|(r, t)| (f64::from(*r) - f64::from(*t)).powi(2))
            .sum::<f64>()
            .sqrt()
            / (conv_out as f64).sqrt();
        assert!(rms.is_finite(), "reconstruction must be finite");
        rms_sum += rms;
    }
    println!(
        "decode: {} reconstructions of {conv_out} quantized features each, \
         mean RMS error {:.4} (untrained weights — the drill pins the pipeline)",
        merged.len(),
        rms_sum / merged.len() as f64
    );

    println!("\ndeterminism: merged latent codes bit-identical to the sequential forward");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full drill with in-process workers (CI's distributed job
    /// runs the example binary itself for the TCP path).
    #[test]
    fn autoencoder_drill_runs_and_verifies() {
        run_drill(false).expect("autoencoder drill");
    }
}
