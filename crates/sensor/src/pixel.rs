//! The 3-transistor/1-photodiode (3T1PD) pixel.
//!
//! Paper Fig. 3(b): a photodiode, a reset transistor (T1), a discharge
//! transistor (T2) and a source follower (T3). Sensing proceeds in two
//! phases:
//!
//! 1. **Reset** — `Rst` charges the photodiode capacitance to the reverse
//!    bias.
//! 2. **Exposure** — the photocurrent (proportional to illumination)
//!    discharges the node; the accumulated *voltage drop* is the analog
//!    activation the VAM thresholds.
//!
//! [`PixelDesign::sense_voltage`] is the behavioural model used by the
//! array; [`PixelDesign::build_netlist`] emits the transistor-level
//! circuit that regenerates the waveforms of paper Fig. 8.

use oisa_spice::{Circuit, MosParams, SwitchParams, Waveform};
use oisa_units::{Ampere, Farad, Joule, Meter, Ohm, Second, Volt};
use serde::{Deserialize, Serialize};

use crate::{Result, SensorError};

/// Static pixel design parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelDesign {
    /// Photodiode junction capacitance.
    pub pd_capacitance: Farad,
    /// Photocurrent at full-scale illumination (1.0).
    pub full_scale_current: Ampere,
    /// Exposure (integration) time of the global shutter.
    pub exposure: Second,
    /// Supply / reset voltage.
    pub vdd: Volt,
    /// Maximum usable voltage drop (the source follower's linear range);
    /// the VAM thresholds are placed inside this swing.
    pub swing: Volt,
    /// Pixel pitch (both dimensions; Table I reports 4.5 µm × 4.5 µm).
    pub pitch: Meter,
    /// Energy of one reset + readout cycle, excluding the sense
    /// amplifiers.
    pub access_energy: Joule,
}

impl PixelDesign {
    /// Paper design point: 4.5 µm pixel, 5 fF photodiode, 50 pA full-scale
    /// photocurrent, 50 µs exposure (1000 fps leaves ample margin), 1 V
    /// supply, 0.5 V usable swing, 3.5 fJ access energy.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            pd_capacitance: Farad::from_femto(5.0),
            full_scale_current: Ampere::from_pico(50.0),
            exposure: Second::from_micro(50.0),
            vdd: Volt::new(1.0),
            swing: Volt::new(0.5),
            pitch: Meter::from_micro(4.5),
            access_energy: Joule::from_femto(3.5),
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.pd_capacitance.get() <= 0.0 {
            return Err(SensorError::InvalidParameter(
                "photodiode capacitance must be positive".into(),
            ));
        }
        if self.full_scale_current.get() <= 0.0 || self.exposure.get() <= 0.0 {
            return Err(SensorError::InvalidParameter(
                "photocurrent and exposure must be positive".into(),
            ));
        }
        if self.swing.get() <= 0.0 || self.swing.get() > self.vdd.get() {
            return Err(SensorError::InvalidParameter(
                "swing must be positive and at most vdd".into(),
            ));
        }
        Ok(())
    }

    /// Behavioural sense voltage: the accumulated drop
    /// `ΔV = min(swing, I_ph · t_exp / C_pd)` for `illumination ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for illumination outside
    /// `[0, 1]`.
    pub fn sense_voltage(&self, illumination: f64) -> Result<Volt> {
        if !(0.0..=1.0).contains(&illumination) {
            return Err(SensorError::InvalidParameter(format!(
                "illumination {illumination} outside [0, 1]"
            )));
        }
        let i_ph = self.full_scale_current.get() * illumination;
        let drop = i_ph * self.exposure.get() / self.pd_capacitance.get();
        Ok(Volt::new(drop.min(self.swing.get())))
    }

    /// Illumination level at which the pixel saturates (reaches full
    /// swing). With the paper defaults this is 1.0 — the design uses the
    /// whole range without clipping mid-scale.
    #[must_use]
    pub fn saturation_illumination(&self) -> f64 {
        let full_drop =
            self.full_scale_current.get() * self.exposure.get() / self.pd_capacitance.get();
        (self.swing.get() / full_drop).min(1.0)
    }

    /// Pixel area (`pitch²`).
    #[must_use]
    pub fn area(&self) -> oisa_units::SquareMeter {
        self.pitch * self.pitch
    }

    /// Transistor-level netlist of one pixel for transient co-simulation
    /// (paper Fig. 8). The photocurrent is a gated current source scaled
    /// by `illumination`; `rst` and `dcharge` waveforms drive the reset
    /// switch and discharge gate. Node names:
    ///
    /// * `"pd"` — photodiode sense node,
    /// * `"out"` — source-follower output (the SA input).
    ///
    /// To match Fig. 8's rising outputs, `out` follows the accumulated
    /// drop: `out = vdd − pd` buffered by the follower — implemented here
    /// as a PMOS follower with a bias load.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Device`] when netlist construction fails.
    pub fn build_netlist(
        &self,
        illumination: f64,
        rst: Waveform,
        dcharge: Waveform,
    ) -> Result<Circuit> {
        if !(0.0..=1.0).contains(&illumination) {
            return Err(SensorError::InvalidParameter(format!(
                "illumination {illumination} outside [0, 1]"
            )));
        }
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let pd = ckt.node("pd");
        let out = ckt.node("out");
        let rst_node = ckt.node("rst");
        let dch_node = ckt.node("dcharge");
        let wrap = |e: oisa_spice::SpiceError| SensorError::Device(e.to_string());
        ckt.vsource("VDD", vdd, Circuit::GND, Waveform::dc(self.vdd.get()))
            .map_err(wrap)?;
        ckt.vsource("VRST", rst_node, Circuit::GND, rst)
            .map_err(wrap)?;
        ckt.vsource("VDCH", dch_node, Circuit::GND, dcharge.clone())
            .map_err(wrap)?;
        // T1: reset switch charging the PD node to VDD.
        ckt.switch(
            "T1",
            vdd,
            pd,
            rst_node,
            SwitchParams {
                threshold: 0.5,
                r_on: 1e3,
                r_off: 1e12,
            },
        )
        .map_err(wrap)?;
        // Photodiode capacitance.
        ckt.capacitor("CPD", pd, Circuit::GND, self.pd_capacitance)
            .map_err(wrap)?;
        // T2 + PD: photocurrent pulled from the node while Dcharge is
        // high, scaled by illumination. The diode's photocurrent is gated
        // by the same Dcharge waveform that drives T2 — a series ideal
        // current source would otherwise force current through the open
        // switch.
        let iph = self.full_scale_current.get() * illumination;
        let mid = ckt.node("pd_gate");
        ckt.switch(
            "T2",
            pd,
            mid,
            dch_node,
            SwitchParams {
                threshold: 0.5,
                r_on: 1e3,
                r_off: 1e12,
            },
        )
        .map_err(wrap)?;
        ckt.isource("IPH", mid, Circuit::GND, dcharge.scaled(iph))
            .map_err(wrap)?;
        // T3: source follower buffering the *drop*. We invert with a
        // common-source stage whose output rises as `pd` falls, replicating
        // Fig. 8's rising `Out` traces: PMOS with source at VDD and gate at
        // `pd` conducts more as pd drops.
        ckt.mosfet("T3", out, pd, vdd, MosParams::pmos(4.0))
            .map_err(wrap)?;
        ckt.resistor("RBIAS", out, Circuit::GND, Ohm::from_kilo(200.0))
            .map_err(wrap)?;
        Ok(ckt)
    }
}

/// Standard Fig. 8 drive timing: a reset pulse, then exposure with
/// `Dcharge` held high.
#[must_use]
pub fn fig8_timing(reset_until: Second) -> (Waveform, Waveform) {
    let rst = Waveform::pulse(1.0, 0.0, reset_until.get(), 1e-10, 1e-10, 1.0, 0.0);
    let dcharge = Waveform::pulse(0.0, 1.0, reset_until.get(), 1e-10, 1e-10, 1.0, 0.0);
    (rst, dcharge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_spice::TransientAnalysis;
    use proptest::prelude::*;

    #[test]
    fn sense_voltage_linear_then_saturates() {
        let d = PixelDesign::paper_default();
        let v_half = d.sense_voltage(0.5).unwrap();
        let v_full = d.sense_voltage(1.0).unwrap();
        // 50 pA × 50 µs / 5 fF = 0.5 V full-scale drop == swing.
        assert!((v_full.get() - 0.5).abs() < 1e-9, "full {v_full}");
        assert!((v_half.get() - 0.25).abs() < 1e-9, "half {v_half}");
        assert_eq!(d.sense_voltage(0.0).unwrap(), Volt::ZERO);
    }

    #[test]
    fn saturation_point_at_paper_defaults() {
        let d = PixelDesign::paper_default();
        assert!((d.saturation_illumination() - 1.0).abs() < 1e-9);
        // Doubling the exposure halves the saturation illumination.
        let d2 = PixelDesign {
            exposure: Second::from_micro(100.0),
            ..d
        };
        assert!((d2.saturation_illumination() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn illumination_bounds_checked() {
        let d = PixelDesign::paper_default();
        assert!(d.sense_voltage(-0.1).is_err());
        assert!(d.sense_voltage(1.1).is_err());
    }

    #[test]
    fn invalid_designs_rejected() {
        let mut d = PixelDesign::paper_default();
        d.pd_capacitance = Farad::ZERO;
        assert!(d.validate().is_err());
        let mut d = PixelDesign::paper_default();
        d.swing = Volt::new(1.5);
        assert!(d.validate().is_err());
    }

    #[test]
    fn area_matches_table1_pixel_size() {
        let a = PixelDesign::paper_default().area();
        // 4.5 µm × 4.5 µm = 20.25 µm².
        assert!((a.get() - 20.25e-12).abs() < 1e-18);
    }

    #[test]
    fn netlist_discharges_under_light() {
        // Use a fast, scaled exposure so the transient stays cheap: raise
        // the photocurrent, shrink the exposure.
        let d = PixelDesign {
            full_scale_current: Ampere::from_micro(1.0),
            exposure: Second::from_nano(2.5),
            ..PixelDesign::paper_default()
        };
        let (rst, dch) = fig8_timing(Second::from_nano(2.0));
        let ckt = d.build_netlist(1.0, rst, dch).unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(6.0), Second::from_pico(10.0))
            .run(&ckt)
            .unwrap();
        // During reset the PD node sits at VDD.
        let v_reset = trace.voltage_at("pd", 1.5e-9).unwrap();
        assert!(v_reset > 0.95, "pd during reset: {v_reset}");
        // After exposure it must have dropped substantially:
        // ΔV = 1 µA × 2.5 ns / 5 fF = 0.5 V.
        let v_end = trace.voltage_at("pd", 4.5e-9).unwrap();
        assert!((0.35..0.75).contains(&v_end), "pd after exposure: {v_end}");
        // And the inverted follower output must have risen.
        let out_start = trace.voltage_at("out", 1.5e-9).unwrap();
        let out_end = trace.voltage_at("out", 4.5e-9).unwrap();
        assert!(out_end > out_start + 0.05, "{out_start} -> {out_end}");
    }

    #[test]
    fn dark_pixel_keeps_reset_level() {
        let d = PixelDesign {
            full_scale_current: Ampere::from_micro(1.0),
            exposure: Second::from_nano(2.5),
            ..PixelDesign::paper_default()
        };
        let (rst, dch) = fig8_timing(Second::from_nano(2.0));
        let ckt = d.build_netlist(0.0, rst, dch).unwrap();
        let trace = TransientAnalysis::new(Second::from_nano(6.0), Second::from_pico(10.0))
            .run(&ckt)
            .unwrap();
        let v_end = trace.voltage_at("pd", 5.5e-9).unwrap();
        assert!(v_end > 0.95, "dark pixel should hold VDD, got {v_end}");
    }

    proptest! {
        #[test]
        fn sense_voltage_monotone(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
            let d = PixelDesign::paper_default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let v_lo = d.sense_voltage(lo).unwrap();
            let v_hi = d.sense_voltage(hi).unwrap();
            prop_assert!(v_lo.get() <= v_hi.get() + 1e-15);
        }

        #[test]
        fn sense_voltage_bounded_by_swing(x in 0.0..=1.0f64) {
            let d = PixelDesign::paper_default();
            let v = d.sense_voltage(x).unwrap();
            prop_assert!(v.get() >= 0.0 && v.get() <= d.swing.get() + 1e-15);
        }
    }
}
