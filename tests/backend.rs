//! Cross-crate guarantees of the `ComputeBackend` seam: a sharded
//! coordinator merging worker reports must be **bit-identical** —
//! outputs, energy, timeline, every field — to one sequential per-frame
//! loop on a single accelerator, for any worker count, across multiple
//! jobs, over any transport (in-process or real TCP sockets), and when
//! fronted by the serving engine. The TCP fault-injection suite pins
//! the failure contract: broken streams, dead workers and unreachable
//! endpoints surface as typed errors — never hangs — and a retried job
//! re-executes bit-identically.

use std::io::Read;
use std::net::TcpListener;
use std::time::Duration;

use oisa::core::backend::{
    ComputeBackend, LocalBackend, ShardedBackend, TcpTransport, TcpTransportConfig, TcpWorker,
};
use oisa::core::serving::{ServingConfig, ServingEngine};
use oisa::core::wire::{self, InferenceJob};
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig, OisaError};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;
use oisa::units::Joule;

fn noisy_config(seed: u64) -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(16, 16)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(seed)
        .build()
        .expect("test config validates")
}

fn textured_frames(count: usize, salt: u64) -> Vec<Frame> {
    (0..count)
        .map(|f| {
            let data: Vec<f64> = (0..256)
                .map(|i| {
                    let phase = (i as f64 * 0.29) + (f as u64 * 3 + salt) as f64 * 1.37;
                    (0.5 + 0.5 * phase.sin()).clamp(0.0, 1.0)
                })
                .collect();
            Frame::new(16, 16, data).unwrap()
        })
        .collect()
}

fn kernel_bank(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.43).sin())
                .collect()
        })
        .collect()
}

fn sequential_loop(
    accel: &mut OisaAccelerator,
    frames: &[Frame],
    kernels: &[Vec<f32>],
    k: usize,
) -> Vec<ConvolutionReport> {
    frames
        .iter()
        .map(|f| accel.convolve_frame_sequential(f, kernels, k).unwrap())
        .collect()
}

/// The acceptance property: merged `ShardReport`s across 1/2/4 workers
/// are bit-identical (outputs *and* energy totals) to
/// `convolve_frame_sequential` over the same frames — including a
/// multi-pass 3×3 workload and a VOM-aggregated 5×5 workload.
#[test]
fn shard_merge_bit_identical_to_sequential_loop_across_worker_counts() {
    let frames = textured_frames(7, 0);
    // 25 kernels → 2 passes on the 20-slot test fabric; the 5×5 bank
    // exercises the VOM aggregation path.
    let kernels3 = kernel_bank(25, 3);
    let kernels5 = kernel_bank(2, 5);
    for (kernels, k) in [(&kernels3, 3usize), (&kernels5, 5usize)] {
        let mut oracle = OisaAccelerator::new(noisy_config(42)).unwrap();
        let looped = sequential_loop(&mut oracle, &frames, kernels, k);
        let oracle_energy: Joule = looped.iter().map(|r| r.energy.total()).sum();
        for workers in [1usize, 2, 4] {
            let mut backend = ShardedBackend::in_process(noisy_config(42), workers).unwrap();
            let job = InferenceJob {
                job_id: 1,
                k,
                kernels: kernels.clone(),
                frames: frames.clone(),
            };
            let merged = backend.run_job(&job).unwrap();
            assert_eq!(
                merged, looped,
                "k={k} workers={workers}: merged shards must equal the sequential loop"
            );
            let merged_energy: Joule = merged.iter().map(|r| r.energy.total()).sum();
            assert_eq!(
                merged_energy.get(),
                oracle_energy.get(),
                "k={k} workers={workers}: summed energy must be bit-identical"
            );
        }
    }
}

/// Consecutive jobs on one coordinator continue the epoch/fabric
/// history exactly like consecutive batches on one accelerator — even
/// when the kernel set *changes* between jobs (the second job's first
/// shard must reproduce the fabric state the first job left behind).
#[test]
fn consecutive_jobs_continue_the_stream_bit_identically() {
    let frames_a = textured_frames(5, 1);
    let frames_b = textured_frames(4, 2);
    let kernels_a = kernel_bank(3, 3);
    let kernels_b = kernel_bank(2, 3); // different set: entry state matters

    let mut oracle = OisaAccelerator::new(noisy_config(9)).unwrap();
    let looped_a = sequential_loop(&mut oracle, &frames_a, &kernels_a, 3);
    let looped_b = sequential_loop(&mut oracle, &frames_b, &kernels_b, 3);

    for workers in [2usize, 3] {
        let mut backend = ShardedBackend::in_process(noisy_config(9), workers).unwrap();
        let job_a = InferenceJob {
            job_id: 1,
            k: 3,
            kernels: kernels_a.clone(),
            frames: frames_a.clone(),
        };
        let job_b = InferenceJob {
            job_id: 2,
            k: 3,
            kernels: kernels_b.clone(),
            frames: frames_b.clone(),
        };
        assert_eq!(
            backend.run_job(&job_a).unwrap(),
            looped_a,
            "workers={workers} job A"
        );
        assert_eq!(
            backend.run_job(&job_b).unwrap(),
            looped_b,
            "workers={workers} job B must see job A's fabric/epoch history"
        );
        assert_eq!(backend.jobs_run(), 2);
    }
}

/// `LocalBackend` and `ShardedBackend` are interchangeable behind the
/// trait: the same job stream produces the same bytes.
#[test]
fn local_and_sharded_backends_agree_behind_the_trait() {
    let frames = textured_frames(6, 3);
    let kernels = kernel_bank(4, 3);
    let job = |id: u64, frames: &[Frame]| InferenceJob {
        job_id: id,
        k: 3,
        kernels: kernels.clone(),
        frames: frames.to_vec(),
    };
    let mut local = LocalBackend::new(noisy_config(17)).unwrap();
    let mut sharded = ShardedBackend::in_process(noisy_config(17), 3).unwrap();
    let (first, second) = frames.split_at(4);
    assert_eq!(
        local.run_job(&job(1, first)).unwrap(),
        sharded.run_job(&job(1, first)).unwrap()
    );
    assert_eq!(
        local.run_job(&job(2, second)).unwrap(),
        sharded.run_job(&job(2, second)).unwrap()
    );
}

/// Sharded multi-host serving: a `ServingEngine` fronting a
/// `ShardedBackend` serves reports bit-identical to the sequential
/// loop, whatever batch shapes the queue forms.
#[test]
fn serving_over_a_sharded_backend_is_bit_identical() {
    let frames = textured_frames(9, 4);
    let kernels = kernel_bank(3, 3);
    let backend = ShardedBackend::in_process(noisy_config(23), 2).unwrap();
    let engine = ServingEngine::with_backend(
        backend,
        kernels.clone(),
        3,
        ServingConfig {
            max_batch: 4,
            deadline: std::time::Duration::from_millis(1),
            queue_depth: 16,
        },
    )
    .unwrap();
    let handles: Vec<_> = frames
        .iter()
        .map(|f| engine.submit(f.clone()).expect("submit"))
        .collect();
    let served: Vec<ConvolutionReport> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    let (backend, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, frames.len() as u64);
    assert!(backend.jobs_run() >= 1);

    let mut oracle = OisaAccelerator::new(noisy_config(23)).unwrap();
    assert_eq!(served, sequential_loop(&mut oracle, &frames, &kernels, 3));
}

// ---------------------------------------------------------------------
// TCP transport: parity
// ---------------------------------------------------------------------

/// Transport knobs for loopback tests: fail fast, never hang.
fn fast_tcp(handshake: bool) -> TcpTransportConfig {
    TcpTransportConfig {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Some(Duration::from_secs(10)),
        attempts: 2,
        backoff: Duration::from_millis(5),
        handshake,
    }
}

/// Spawns `count` worker daemons (accept loops on background threads,
/// real loopback sockets) and returns dialable endpoints.
fn spawn_tcp_fleet(config: OisaConfig, count: usize) -> Vec<String> {
    (0..count)
        .map(|_| {
            TcpWorker::bind(config, "127.0.0.1:0")
                .expect("bind")
                .spawn()
                .expect("spawn daemon thread")
                .endpoint()
        })
        .collect()
}

fn tcp_backend(config: OisaConfig, endpoints: &[String]) -> ShardedBackend {
    let workers = endpoints
        .iter()
        .map(|endpoint| {
            TcpTransport::connect(endpoint.clone(), config.fingerprint(), fast_tcp(true))
                .map(|t| Box::new(t) as _)
        })
        .collect::<Result<Vec<_>, _>>()
        .expect("connect fleet");
    ShardedBackend::new(config, workers).expect("backend")
}

/// The acceptance property over real sockets: merged reports across
/// 1/2/3 TCP daemons are bit-identical to the sequential loop, across
/// two consecutive jobs (so epoch/fabric continuation crosses the
/// network too).
#[test]
fn tcp_shard_merge_bit_identical_across_worker_counts() {
    let frames_a = textured_frames(5, 7);
    let frames_b = textured_frames(4, 8);
    let kernels = kernel_bank(3, 3);
    let mut oracle = OisaAccelerator::new(noisy_config(31)).unwrap();
    let looped_a = sequential_loop(&mut oracle, &frames_a, &kernels, 3);
    let looped_b = sequential_loop(&mut oracle, &frames_b, &kernels, 3);
    for daemons in [1usize, 2, 3] {
        let endpoints = spawn_tcp_fleet(noisy_config(31), daemons);
        let mut backend = tcp_backend(noisy_config(31), &endpoints);
        let job = |id: u64, frames: &[Frame]| InferenceJob {
            job_id: id,
            k: 3,
            kernels: kernels.clone(),
            frames: frames.to_vec(),
        };
        assert_eq!(
            backend.run_job(&job(1, &frames_a)).unwrap(),
            looped_a,
            "daemons={daemons} job A over TCP"
        );
        assert_eq!(
            backend.run_job(&job(2, &frames_b)).unwrap(),
            looped_b,
            "daemons={daemons} job B over TCP continues the stream"
        );
    }
}

// ---------------------------------------------------------------------
// TCP transport: fault injection
// ---------------------------------------------------------------------

/// An adversarial "worker": accepts connections forever and hands each
/// to `behaviour` (which can truncate, stall, or hang up).
fn evil_server(behaviour: fn(std::net::TcpStream)) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming().flatten() {
            std::thread::spawn(move || behaviour(stream));
        }
    });
    addr.to_string()
}

fn small_job(id: u64) -> InferenceJob {
    InferenceJob {
        job_id: id,
        k: 3,
        kernels: kernel_bank(2, 3),
        frames: textured_frames(2, id),
    }
}

/// A worker that dies mid-reply: the stream truncates inside a message.
/// Every retry meets the same fate, so the coordinator must give up
/// with a typed transport error whose cause names the truncation —
/// and must never hang.
#[test]
fn tcp_truncated_stream_mid_message_is_a_typed_error_not_a_hang() {
    use std::io::Write as _;
    let endpoint = evil_server(|mut stream| {
        // Consume the ENTIRE framed request first: unread request bytes
        // at close would RST the connection and could discard the
        // buffered bogus reply below, turning the deterministic
        // "truncated" cause into a racy "connection reset".
        let mut prefix = [0u8; 4];
        if stream.read_exact(&mut prefix).is_err() {
            return;
        }
        let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        // A length prefix promising 64 bytes, followed by only 8.
        let _ = stream.write_all(&64u32.to_le_bytes());
        let _ = stream.write_all(&[0u8; 8]);
        // Dropping the stream (clean FIN) cuts the reply mid-payload.
    });
    let config = noisy_config(33);
    let transport = TcpTransport::deferred(endpoint.clone(), config.fingerprint(), fast_tcp(false));
    let mut backend = ShardedBackend::new(config, vec![Box::new(transport)]).unwrap();
    let started = std::time::Instant::now();
    let err = backend.run_job(&small_job(1)).unwrap_err();
    match &err {
        OisaError::Transport {
            endpoint: seen,
            attempts,
            cause,
        } => {
            assert_eq!(seen, &endpoint);
            assert_eq!(*attempts, 2);
            assert!(cause.contains("truncated"), "cause was: {cause}");
        }
        other => panic!("expected a transport error, got {other}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "fault path must fail fast, took {:?}",
        started.elapsed()
    );
}

/// A worker that accepts the shard and then goes silent: the read
/// timeout must fire and surface as a typed transport error — the
/// coordinator never blocks forever on a wedged worker.
#[test]
fn tcp_unresponsive_worker_hits_the_read_timeout_not_a_hang() {
    let endpoint = evil_server(|mut stream| {
        let mut sink = [0u8; 64 * 1024];
        let _ = stream.read(&mut sink);
        std::thread::sleep(Duration::from_secs(30)); // never reply
    });
    let config = noisy_config(34);
    let options = TcpTransportConfig {
        io_timeout: Some(Duration::from_millis(200)),
        ..fast_tcp(false)
    };
    let transport = TcpTransport::deferred(endpoint, config.fingerprint(), options);
    let mut backend = ShardedBackend::new(config, vec![Box::new(transport)]).unwrap();
    let started = std::time::Instant::now();
    let err = backend.run_job(&small_job(2)).unwrap_err();
    assert!(
        matches!(err, OisaError::Transport { attempts: 2, .. }),
        "expected a transport error after 2 attempts, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout path must fail fast, took {:?}",
        started.elapsed()
    );
}

/// Dialing an endpoint with no listener (connection refused / connect
/// timeout territory) is a typed transport error at construction time.
#[test]
fn tcp_connect_to_an_unreachable_endpoint_is_typed_and_fast() {
    // Bind-then-drop reserves a loopback port that now refuses.
    let endpoint = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let started = std::time::Instant::now();
    let err = TcpTransport::connect(endpoint.clone(), 0, fast_tcp(true)).unwrap_err();
    match err {
        OisaError::Transport {
            endpoint: seen,
            attempts,
            ..
        } => {
            assert_eq!(seen, endpoint);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected a transport error, got {other}"),
    }
    assert!(started.elapsed() < Duration::from_secs(10));
}

/// A worker lost mid-stream: job N succeeds, the worker dies, job N+1
/// fails with a typed transport error having consumed **no** state, a
/// replacement worker is swapped in, and the retried job merges
/// bit-identically to the uninterrupted sequential loop.
#[test]
fn tcp_worker_death_mid_stream_retries_bit_identically_after_replacement() {
    let config = noisy_config(35);
    let kernels = kernel_bank(3, 3);
    let frames_a = textured_frames(4, 11);
    let frames_b = textured_frames(5, 12);
    let mut oracle = OisaAccelerator::new(config).unwrap();
    let looped_a = sequential_loop(&mut oracle, &frames_a, &kernels, 3);
    let looped_b = sequential_loop(&mut oracle, &frames_b, &kernels, 3);

    let endpoints = spawn_tcp_fleet(config, 2);
    let mut backend = tcp_backend(config, &endpoints);
    let job = |id: u64, frames: &[Frame]| InferenceJob {
        job_id: id,
        k: 3,
        kernels: kernels.clone(),
        frames: frames.to_vec(),
    };
    assert_eq!(backend.run_job(&job(1, &frames_a)).unwrap(), looped_a);

    // "Kill" worker 1: point its slot at an endpoint that refuses, as
    // a daemon host that dropped off the network would.
    let dead = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    backend
        .replace_worker(
            1,
            Box::new(TcpTransport::deferred(
                dead,
                config.fingerprint(),
                fast_tcp(true),
            )),
        )
        .unwrap();
    let err = backend.run_job(&job(2, &frames_b)).unwrap_err();
    assert!(
        matches!(err, OisaError::Transport { .. }),
        "expected a transport error, got {err}"
    );

    // Repair and retry: a fresh daemon takes slot 1; the job must
    // re-execute identically because the failure consumed nothing.
    let replacement = spawn_tcp_fleet(config, 1).remove(0);
    backend
        .replace_worker(
            1,
            Box::new(
                TcpTransport::connect(replacement, config.fingerprint(), fast_tcp(true)).unwrap(),
            ),
        )
        .unwrap();
    assert_eq!(
        backend.run_job(&job(2, &frames_b)).unwrap(),
        looped_b,
        "retried job must be bit-identical to the uninterrupted loop"
    );
}

/// The config-fingerprint guard over TCP, both ways it can fire: the
/// connect-time handshake reports a mismatch before any shard is sent,
/// and with the handshake disabled the worker's shard-level refusal
/// maps back to the same typed error naming both fingerprints.
#[test]
fn tcp_fingerprint_mismatch_is_typed_at_handshake_and_shard_level() {
    let worker_cfg = noisy_config(36);
    let coordinator_cfg = noisy_config(37); // different seed → different physics
    let endpoint = spawn_tcp_fleet(worker_cfg, 1).remove(0);

    // Handshake path: connect() itself names both fingerprints.
    let err = TcpTransport::connect(
        endpoint.clone(),
        coordinator_cfg.fingerprint(),
        fast_tcp(true),
    )
    .unwrap_err();
    assert_eq!(
        err,
        OisaError::FingerprintMismatch {
            coordinator: coordinator_cfg.fingerprint(),
            worker: worker_cfg.fingerprint(),
        }
    );

    // Shard path: with the handshake off, the shard reaches the worker,
    // is refused with a coded ShardRefusal, and the coordinator maps it
    // to the same typed error.
    let transport =
        TcpTransport::deferred(endpoint, coordinator_cfg.fingerprint(), fast_tcp(false));
    let mut backend = ShardedBackend::new(coordinator_cfg, vec![Box::new(transport)]).unwrap();
    assert_eq!(
        backend.run_job(&small_job(3)).unwrap_err(),
        OisaError::FingerprintMismatch {
            coordinator: coordinator_cfg.fingerprint(),
            worker: worker_cfg.fingerprint(),
        }
    );
}

/// A daemon accepts any number of sequential coordinator connections:
/// dropping one backend and dialing again from a fresh one works (the
/// daemon is stateless per shard, so nothing carries over but physics).
#[test]
fn tcp_daemon_serves_consecutive_coordinator_connections() {
    let config = noisy_config(38);
    let kernels = kernel_bank(2, 3);
    let frames = textured_frames(3, 13);
    let endpoint = spawn_tcp_fleet(config, 1).remove(0);
    let mut oracle = OisaAccelerator::new(config).unwrap();
    let looped = sequential_loop(&mut oracle, &frames, &kernels, 3);
    for round in 0..2 {
        let mut backend = tcp_backend(config, std::slice::from_ref(&endpoint));
        let merged = backend
            .run_job(&InferenceJob {
                job_id: round + 1,
                k: 3,
                kernels: kernels.clone(),
                frames: frames.clone(),
            })
            .unwrap();
        assert_eq!(
            merged, looped,
            "round {round}: fresh coordinator, same physics"
        );
        drop(backend); // closes the connection; the daemon keeps accepting
    }
}

/// Raw-socket check that a worker answers a handshake ping with a
/// nonce-echoing pong carrying its fingerprint — the probe any
/// load-balancer or health check can speak.
#[test]
fn tcp_worker_answers_a_raw_handshake_ping() {
    use std::io::Write as _;
    let config = noisy_config(39);
    let endpoint = spawn_tcp_fleet(config, 1).remove(0);
    let mut stream = std::net::TcpStream::connect(&endpoint).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::send(
        &mut stream,
        &wire::WireMessage::Ping(wire::Handshake {
            nonce: 99,
            config_fingerprint: config.fingerprint(),
        }),
    )
    .unwrap();
    stream.flush().unwrap();
    match wire::receive(&mut stream).unwrap() {
        Some(wire::WireMessage::Pong(pong)) => {
            assert_eq!(pong.nonce, 99);
            assert_eq!(pong.config_fingerprint, config.fingerprint());
        }
        other => panic!("expected a pong, got {other:?}"),
    }
}
