//! ADC-less global-shutter CMOS imager and VCSEL Activation Modulator.
//!
//! OISA's front end never digitises a pixel. A conventional
//! 3-transistor/1-photodiode pixel (paper Fig. 3(b)) integrates
//! photocurrent during a global exposure; two sense amplifiers per column
//! then *threshold* the analog value into a ternary code (paper Figs. 3(c)
//! and 8), which directly drives the VCSEL bias ladder (Fig. 3(d)) —
//! activation data leaves the sensor already modulated onto light.
//!
//! Crate layout:
//!
//! * [`frame`] — [`Frame`]: normalised illumination maps (what the scene
//!   delivers) and [`TernaryFrame`]: what the VAM emits.
//! * [`pixel`] — the 3T1PD pixel model, including a netlist builder that
//!   regenerates paper Fig. 8's transient waveforms with [`oisa_spice`].
//! * [`imager`] — the n×n global-shutter array with exposure and energy
//!   accounting.
//! * [`vam`] — dual sense-amplifier thresholding plus the NRZ VCSEL
//!   driver: [`vam::Vam::encode_capture`] is the sensing→photonics boundary.
//!
//! # Examples
//!
//! ```
//! use oisa_sensor::frame::Frame;
//! use oisa_sensor::imager::{Imager, ImagerConfig};
//! use oisa_sensor::vam::{Vam, VamConfig};
//!
//! # fn main() -> Result<(), oisa_sensor::SensorError> {
//! let frame = Frame::constant(8, 8, 0.7)?;
//! let imager = Imager::new(ImagerConfig::paper_default(8, 8))?;
//! let capture = imager.expose(&frame)?;
//! let vam = Vam::new(VamConfig::paper_default())?;
//! let encoded = vam.encode_capture(&capture)?;
//! assert_eq!(encoded.ternary.width(), 8);
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod fault;
pub mod frame;
pub mod imager;
pub mod pixel;
pub mod vam;

pub use frame::{Frame, TernaryFrame};

use std::fmt;

/// Errors from the sensing pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// A dimension or parameter was invalid.
    InvalidParameter(String),
    /// Frame and array dimensions do not agree.
    ShapeMismatch {
        /// What the operation expected.
        expected: (usize, usize),
        /// What it received.
        got: (usize, usize),
    },
    /// A device sub-model failed.
    Device(String),
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            Self::Device(what) => write!(f, "device model error: {what}"),
        }
    }
}

impl std::error::Error for SensorError {}

impl From<oisa_device::DeviceError> for SensorError {
    fn from(e: oisa_device::DeviceError) -> Self {
        Self::Device(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SensorError>;
