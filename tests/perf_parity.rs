//! Cross-crate guarantees of the optimised convolution pipeline:
//! thread-count-independent bit-identical physics, and agreement with
//! the pre-optimisation reference implementation.

use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;

fn textured_frame(side: usize) -> Frame {
    let data: Vec<f64> = (0..side * side)
        .map(|i| {
            let x = (i % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            (0.5 + 0.5 * (8.0 * x).sin() * (6.0 * y).cos()).clamp(0.0, 1.0)
        })
        .collect();
    Frame::new(side, side, data).unwrap()
}

fn kernel_bank(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

/// The headline tentpole property: the parallel pipeline is bit-identical
/// to its sequential twin under a fixed seed — output, energy report and
/// timeline — even when forced onto multiple worker threads.
#[test]
fn parallel_pipeline_bit_identical_to_sequential_reference() {
    rayon::set_num_threads(4);
    let frame = textured_frame(32);
    let kernels = kernel_bank(8, 3);
    let mut cfg = OisaConfig::paper_default(32, 32);
    cfg.noise = NoiseConfig::paper_default();
    cfg.seed = 20_24;

    let mut parallel = OisaAccelerator::new(cfg).unwrap();
    let mut sequential = OisaAccelerator::new(cfg).unwrap();
    let rp = parallel.convolve_frame(&frame, &kernels, 3).unwrap();
    let rs = sequential
        .convolve_frame_sequential(&frame, &kernels, 3)
        .unwrap();

    assert_eq!(rp.output, rs.output, "outputs must be bit-identical");
    assert_eq!(rp.energy, rs.energy, "energy must be bit-identical");
    assert_eq!(rp.timeline, rs.timeline, "timeline must be bit-identical");

    // And a re-run of the parallel path on a fresh accelerator replays
    // exactly (counter-based streams under the same seed).
    let mut replay = OisaAccelerator::new(cfg).unwrap();
    let rr = replay.convolve_frame(&frame, &kernels, 3).unwrap();
    assert_eq!(rp.output, rr.output);
    assert_eq!(rp.energy, rr.energy);
}

/// With noise disabled, the optimised pipeline and the faithful
/// pre-optimisation port must produce exactly the same feature maps.
#[test]
fn optimised_pipeline_reproduces_reference_physics() {
    let frame = textured_frame(24);
    let kernels = kernel_bank(4, 3);
    let mut cfg = OisaConfig::paper_default(24, 24);
    cfg.noise = NoiseConfig::noiseless();
    cfg.seed = 5;

    let mut fast = OisaAccelerator::new(cfg).unwrap();
    let mut reference = OisaAccelerator::new(cfg).unwrap();
    let rf = fast.convolve_frame(&frame, &kernels, 3).unwrap();
    let rr = reference
        .convolve_frame_reference(&frame, &kernels, 3)
        .unwrap();
    assert_eq!(rf.output, rr.output);
}

/// The 5×5 kernel path (multi-arm, VOM-aggregated) holds the same
/// parallel/sequential parity.
#[test]
fn vom_aggregated_kernels_hold_parity() {
    rayon::set_num_threads(4);
    let frame = textured_frame(20);
    let kernels = kernel_bank(3, 5);
    let mut cfg = OisaConfig::paper_default(20, 20);
    cfg.noise = NoiseConfig::paper_default();
    cfg.seed = 99;

    let mut parallel = OisaAccelerator::new(cfg).unwrap();
    let mut sequential = OisaAccelerator::new(cfg).unwrap();
    let rp = parallel.convolve_frame(&frame, &kernels, 5).unwrap();
    let rs = sequential
        .convolve_frame_sequential(&frame, &kernels, 5)
        .unwrap();
    assert_eq!(rp.output, rs.output);
    assert_eq!(rp.energy, rs.energy);
    assert!(rp.energy.aggregation.get() > 0.0, "VOM must be exercised");
}
