//! # OISA — Optical In-Sensor Accelerator (reproduction)
//!
//! Facade crate for the device-to-architecture simulation stack reproducing
//! *OISA: Architecting an Optical In-Sensor Accelerator for Efficient Visual
//! Computing* (DATE 2024). Each subsystem lives in its own crate; this crate
//! re-exports them under one roof so examples and downstream users can write
//! `use oisa::...`.
//!
//! # Quickstart
//!
//! ```
//! use oisa::core::{OisaAccelerator, OisaConfig};
//! use oisa::sensor::Frame;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut accel = OisaAccelerator::new(OisaConfig::default())?; // 16×16 test imager
//! let frame = Frame::constant(16, 16, 0.5)?;
//! let weights = vec![vec![0.5f32; 9]; 4]; // four 3x3 kernels
//! let report = accel.convolve_frame(&frame, &weights, 3)?;
//! assert_eq!(report.output.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Scaling out
//!
//! Execution is abstracted behind [`core::backend::ComputeBackend`]:
//! the serving engine ([`core::serving::ServingEngine`]) batches
//! submissions into [`core::wire::InferenceJob`]s and drives whichever
//! backend it fronts. [`core::backend::LocalBackend`] runs jobs on
//! this host; [`core::backend::ShardedBackend`] splits each job's
//! frames into `(frame, epoch)` ranges, ships them to worker
//! processes over the versioned wire schema ([`core::wire`]) and
//! merges the reports **bit-identically** to one sequential loop —
//! `examples/multi_node.rs` is the runnable coordinator/worker pair.
//!
//! ```
//! use oisa::core::backend::{ComputeBackend, ShardedBackend};
//! use oisa::core::wire::InferenceJob;
//! use oisa::core::OisaConfig;
//! use oisa::sensor::Frame;
//!
//! # fn main() -> Result<(), oisa::core::OisaError> {
//! let mut backend = ShardedBackend::in_process(OisaConfig::small_test(), 2)?;
//! let job = InferenceJob {
//!     job_id: 1,
//!     k: 3,
//!     kernels: vec![vec![0.5f32; 9]],
//!     frames: vec![Frame::constant(16, 16, 0.7)?; 4],
//! };
//! assert_eq!(backend.run_job(&job)?.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Supervised fleets
//!
//! For hands-off operation, wrap the fleet in a
//! [`core::backend::FleetSupervisor`] instead of driving a
//! `ShardedBackend` directly. The supervisor health-checks idle
//! workers on an interval, and when a worker dies mid-job it
//! quarantines the endpoint, promotes a spare (or re-plans the
//! remaining shards across the survivors when the bench is empty) and
//! finishes the job — the merged reports stay bit-identical to the
//! sequential loop, so failover is invisible in the results. With
//! [`core::backend::SupervisorOptions::push_config_to_spares`] set,
//! admission pushes the coordinator's full `OisaConfig` over the wire
//! (schema v3 `Configure`), so spares started with different physics
//! converge instead of refusing shards.
//!
//! ```
//! use oisa::core::backend::{
//!     ComputeBackend, FleetSupervisor, InProcessWorker, ShardTransport, SupervisorOptions,
//! };
//! use oisa::core::wire::InferenceJob;
//! use oisa::core::OisaConfig;
//! use oisa::sensor::Frame;
//!
//! # fn main() -> Result<(), oisa::core::OisaError> {
//! let config = OisaConfig::small_test();
//! let active: Vec<Box<dyn ShardTransport>> = vec![
//!     Box::new(InProcessWorker::new(config)),
//!     Box::new(InProcessWorker::new(config)),
//! ];
//! let spares: Vec<Box<dyn ShardTransport>> = vec![Box::new(InProcessWorker::new(config))];
//! let mut fleet = FleetSupervisor::new(config, active, spares, SupervisorOptions::default())?;
//! let job = InferenceJob {
//!     job_id: 1,
//!     k: 3,
//!     kernels: vec![vec![0.5f32; 9]],
//!     frames: vec![Frame::constant(16, 16, 0.7)?; 4],
//! };
//! assert_eq!(fleet.run_job(&job)?.len(), 4);
//! assert_eq!(fleet.status().spares, 1); // nobody died; the bench is untouched
//! # Ok(())
//! # }
//! ```
//!
//! # Running a whole model
//!
//! One conv pass set per job is the paper's first-layer story; a
//! [`core::program::LayerProgram`] runs a whole edge model. A program
//! is an ordered stage list — conv (the optical path) → quantize →
//! dense ([`core::mlp`]) → activation — validated up front (shape and
//! value-range inference), executed per frame by **any**
//! [`core::backend::ComputeBackend`] via `run_program`, and sharded
//! over the frame axis: inter-stage tensors never cross the wire, and
//! a steady-state prewarm on every shard keeps the merged reports
//! bit-identical to one sequential forward
//! ([`core::program::run_reference`] is the oracle).
//! `examples/autoencoder.rs` is the runnable drill: encode on sharded
//! workers, ship only latent codes, decode at the coordinator.
//!
//! ```
//! use oisa::core::backend::{ComputeBackend, ShardedBackend};
//! use oisa::core::program::{run_reference, LayerProgram};
//! use oisa::core::wire::ProgramJob;
//! use oisa::core::OisaConfig;
//! use oisa::sensor::Frame;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = OisaConfig::small_test();
//! // conv 2×3×3 → ternary quantize → dense → ReLU: a 4-float latent
//! // code per frame instead of feature maps.
//! let program = LayerProgram::autoencoder(16, 16, 2, 4, 7)?;
//! let frames = vec![Frame::constant(16, 16, 0.6)?; 3];
//!
//! let mut backend = ShardedBackend::in_process(config, 2)?;
//! let job = ProgramJob { job_id: 1, program: program.clone(), frames: frames.clone() };
//! let reports = backend.run_program(&job)?;
//!
//! assert_eq!(reports[0].output.len(), 4); // the latent code
//! // Sharding is invisible: bit-identical to one sequential forward.
//! assert_eq!(reports, run_reference(&config, 0, &program, &frames)?);
//! # Ok(())
//! # }
//! ```

//! # Performance notes
//!
//! The convolution hot path is engineered to run at the host's memory
//! and ALU speed; the design decisions live in three layers:
//!
//! * **Counter-based noise streams**
//!   ([`device::noise::NoiseStream`]). Every `(kernel, output position)`
//!   pair owns an addressed stream keyed by
//!   `(seed, frame epoch, slot, position)`; a draw depends only on its
//!   counter, never on evaluation order. This is what makes
//!   [`core::OisaAccelerator::convolve_frame`] (parallel over output
//!   rows) bit-identical to `convolve_frame_sequential` under a fixed
//!   seed, on any thread count. Gaussians come from a 128-layer
//!   ziggurat: the common case is one SplitMix64 finalisation, one
//!   table compare and one multiply.
//! * **Precomputed arm constants + the fixed 4-lane fold**
//!   ([`optics::arm::Arm`]). Inter-channel crosstalk, waveguide loss,
//!   detector full-scale and dwell time depend only on the loaded
//!   weights and geometry, so `Arm::load_weights` folds them into
//!   per-ring gains; `Arm::mac_indexed` is the fused allocation-free
//!   MAC the inner loop calls, and `Arm::mac_reference` keeps the
//!   pre-optimisation cost profile as the benchmark baseline. Every
//!   MAC path accumulates each detector rail into 4 fixed lanes
//!   reduced through one canonical tree — reduction order is part of
//!   the wire-level bit-identity guarantee (see the performance notes
//!   in `optics::arm`). The `simd` cargo feature (default on) enables
//!   runtime-dispatched AVX2/AVX-512 noise-mixing kernels; outputs are
//!   bit-identical with the feature off, on unsupported CPUs, with
//!   `OISA_SIMD_TIER=scalar` pinned, and across mixed-tier sharded
//!   fleets — the feature only moves wall-clock.
//! * **Flat, row-parallel pass buffers with streamed weight staging**
//!   ([`core::OisaAccelerator::convolve_frame`]). Windows gather into a
//!   stack scratch array, each pass writes one flat `[row][slot][x]`
//!   buffer whose rows are distributed over worker threads (a
//!   `std::thread::scope`-backed rayon subset in offline builds), and
//!   per-row energy partials are reduced in row order so reports are
//!   reproducible bit-for-bit. On multi-pass workloads (more kernels
//!   than fabric slots) the parallel engine double-buffers staging:
//!   pass `N + 1` quantises, tunes and snapshots on the calling thread
//!   while pass `N`'s rows drain through the work-stealing pool
//!   (`core::scheduler::execute_overlapped`), with tuning energy still
//!   charged in strict pass order.
//!
//! Benchmarks: `cargo bench -p oisa_bench` runs the microbenchmarks
//! (`arm_mac_indexed_9tap`, `mac_core_{72,256,1024}_rings`,
//! `gaussian_at_lanes`, `staging_overlap_32x32_multipass`,
//! `oisa_convolve_frame_128x128_16k`, …);
//! `cargo run --release -p oisa_bench --bin perf_json` emits one
//! machine-readable `BENCH JSON` line comparing the optimised pipeline
//! against the pre-optimisation reference (≥ 5× on the 128×128,
//! 16-kernel acceptance workload) plus the im2col-vs-naive digital
//! `Conv2d` ratio, so CI can track the perf trajectory.
//!
//! # Checking a working tree
//!
//! The invariants above (bit-identical merges, counter-based
//! determinism, centralized spawning) are enforced structurally by the
//! in-tree checker **oisa-lint v2**
//! (`cargo run --release -p oisa_lint --bin oisa-lint`): on top of the
//! per-file token rules it parses every item, builds an approximate
//! cross-crate call graph, and checks lock-acquisition order, panic
//! reachability from the serving entry points, wall-clock/entropy
//! taint into the wire codec, and the crate layering DAG. See
//! `crates/lint/README.md` for the rule catalogue and analysis model.

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

/// Physical-quantity newtypes (volts, watts, seconds, …).
pub use oisa_units as units;

/// Mini MNA transient circuit simulator used for analog verification.
pub use oisa_spice as spice;

/// Photonic and analog device models (MR, VCSEL, BPD, SA, AWC).
pub use oisa_device as device;

/// ADC-less imager and VCSEL activation modulator.
pub use oisa_sensor as sensor;

/// Optical Processing Core: arms, banks, WDM, VOM.
pub use oisa_optics as optics;

/// CACTI-like SRAM/eDRAM and NVSim-like NVM models.
pub use oisa_memory as memory;

/// Tensor/CNN framework with backprop and quantizers.
pub use oisa_nn as nn;

/// Seeded procedural datasets for accuracy studies.
pub use oisa_datasets as datasets;

/// The paper's contribution: mapping, timing, energy and the end-to-end
/// accelerator.
pub use oisa_core as core;

/// Comparison platforms (Crosslight-like, AppCiP-like, ASIC).
pub use oisa_baselines as baselines;
