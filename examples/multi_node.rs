//! Multi-node IoT scenario (paper Fig. 2): several OISA nodes each
//! capture frames, run the first CNN layer in-sensor, and ship compact
//! feature maps to a cloud aggregator instead of raw pixels.
//!
//! ```sh
//! cargo run --release --example multi_node
//! ```

use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::sensor::Frame;
use oisa::units::Joule;

/// Bytes to ship one frame raw (8-bit pixels) vs as 2×2-pooled 4-bit
/// feature maps (the off-chip processor's next stage pools anyway, and
/// first-layer partial sums need no more precision than the 4-bit
/// weights that produced them).
///
/// Pooling an odd-sized map keeps a ragged last row/column (`ceil`,
/// matching a stride-2 pool with padding), so odd `out` must round the
/// pooled dimension *up* — flooring undercounts the uplink bytes.
fn traffic_bytes(img: usize, out: usize, kernels: usize) -> (usize, usize) {
    let raw = img * img;
    let pooled = out.div_ceil(2);
    let features = (pooled * pooled * kernels).div_ceil(2);
    (raw, features)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: usize = 4;
    const IMG: usize = 16;
    println!("OISA multi-node edge deployment ({NODES} nodes)");
    println!("===============================================\n");

    let kernels: Vec<Vec<f32>> = vec![
        vec![0.0, -0.5, 0.0, -0.5, 2.0, -0.5, 0.0, -0.5, 0.0], // sharpen
        vec![1.0 / 9.0; 9],                                    // blur
        vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],  // sobel-x
    ];

    let mut total_energy = Joule::ZERO;
    let mut total_feature_bytes = 0usize;
    let mut total_raw_bytes = 0usize;
    for node in 0..NODES {
        let mut cfg = OisaConfig::small_test();
        cfg.seed = node as u64;
        let mut accel = OisaAccelerator::new(cfg)?;
        // Each node sees a different scene: a gradient with a node-specific
        // bright band.
        let pixels: Vec<f64> = (0..IMG * IMG)
            .map(|i| {
                let row = i / IMG;
                let base = 0.15 + 0.4 * (row as f64 / IMG as f64);
                if row % NODES == node {
                    (base + 0.4).min(1.0)
                } else {
                    base
                }
            })
            .collect();
        let frame = Frame::new(IMG, IMG, pixels)?;
        let report = accel.convolve_frame(&frame, &kernels, 3)?;
        let (raw, features) = traffic_bytes(IMG, report.out_h, kernels.len());
        total_energy += report.energy.total();
        total_raw_bytes += raw;
        total_feature_bytes += features;
        println!(
            "node {node}: latency {:.3}, energy {:.3}, uplink {} B pooled features (raw: {} B)",
            report.timeline.total(),
            report.energy.total(),
            features,
            raw
        );
    }
    println!("\nfleet totals per frame period:");
    println!("  energy           : {total_energy:.3}");
    println!(
        "  uplink traffic   : {total_feature_bytes} B vs {total_raw_bytes} B raw ({:.1}x)",
        total_raw_bytes as f64 / total_feature_bytes as f64
    );
    println!("  (the cloud node receives first-layer features, not pixels — the paper's");
    println!("   thing-centric shift: conversion and transmission power stay in-sensor)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_bytes_covers_odd_pooled_outputs() {
        // 16×16 input, 3×3 kernel → out = 14 (even): 7×7 pooled, 3
        // maps at 4 bits → ceil(147/2) = 74 B.
        assert_eq!(traffic_bytes(16, 14, 3), (256, 74));
        // 15×15 input, 3×3 kernel → out = 13 (odd): the pool keeps a
        // ragged 7th row/column, so 7×7×3 nibbles again — a floored
        // 6×6 would undercount by 20 bytes.
        assert_eq!(traffic_bytes(15, 13, 3), (225, 74));
        // Degenerate 1×1 output still ships one nibble.
        assert_eq!(traffic_bytes(3, 1, 1), (9, 1));
    }

    #[test]
    fn multi_node_demo_runs() {
        main().expect("multi_node example");
    }
}
