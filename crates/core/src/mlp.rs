//! MLP (fully connected) first-layer execution via the VOM.
//!
//! Paper §III-A: "In the case of the MLP, the number of dot products is
//! enormous. To reduce the complexity of the calculations, the VOM unit
//! … enables OISA to break the intensive MAC operations into smaller
//! parts." A dense row of `n` weights becomes `⌈n / 9⌉` arm-sized
//! chunks; each chunk computes optically and the VOM accumulates and
//! re-modulates the partial sums.
//!
//! Like the convolution pipeline, the dense path draws its noise from
//! counter-based streams — keyed by `(epoch, row, chunk)` — so
//! evaluation order never changes the physics. The whole weight matrix
//! is normalised in one up-front scan (one division per element, no
//! per-chunk staging buffer in the row loop), and two engines share
//! that staging:
//!
//! * [`matvec`] — the serial oracle: chunks round-robin over the shared
//!   fabric via `load_arm`, exactly as the hardware would serialise
//!   them.
//! * [`matvec_parallel`] — rows fan out over the work-stealing
//!   scheduler; each worker re-tunes a *private* scratch arm per chunk
//!   and evaluates an immutable [`ArmSnapshot`](oisa_optics::arm::ArmSnapshot), so no row ever waits
//!   on another's fabric mutation. Output, energy, latency and chunk
//!   count are bit-identical to [`matvec`] under the same seed and
//!   epoch.

use oisa_device::noise::NoiseSource;
use oisa_optics::arm::MacResult;
use oisa_optics::opc::Opc;
use oisa_optics::vom::Vom;
use oisa_optics::weights::WeightMapper;
use oisa_units::{Joule, Second};
use serde::{Deserialize, Serialize};

use crate::{scheduler, CoreError, Result};

/// Elements of a dense row executed per arm (the paper's 3×3-sized
/// chunks: nine weights plus the spare slot).
pub const CHUNK: usize = 9;

/// Result of one dense matrix–vector product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatVecReport {
    /// The output vector, one value per matrix row.
    pub output: Vec<f32>,
    /// Chunks evaluated in total.
    pub chunks: usize,
    /// Total energy (optical + VOM accumulation/re-modulation).
    pub energy: Joule,
    /// Serialized latency over all chunk evaluations.
    pub latency: Second,
}

/// Executes `matrix · input` (row-major `rows × cols` matrix) on the
/// optical fabric, chunking every row across arms and aggregating
/// through the VOM.
///
/// Weights are normalised per call by the joint maximum magnitude;
/// `input` must already be in the VAM's normalised optical domain
/// (`[0, 1]`).
///
/// # Errors
///
/// * [`CoreError::InvalidParameter`] for shape mismatches or
///   out-of-range inputs.
/// * Substrate errors from the optical fabric.
#[allow(clippy::too_many_arguments)]
pub fn matvec(
    opc: &mut Opc,
    vom: &Vom,
    mapper: &WeightMapper,
    matrix: &[f32],
    rows: usize,
    cols: usize,
    input: &[f64],
    noise: &mut NoiseSource,
) -> Result<MatVecReport> {
    validate_matvec(matrix, rows, cols, input)?;
    let (scale, normalised) = normalise_matrix(matrix);
    let arms_per_bank = oisa_optics::bank::ARMS_PER_BANK;
    let epoch = noise.begin_epoch()?;
    let mut output = Vec::with_capacity(rows);
    let mut total_chunks = 0usize;
    let mut energy = Joule::ZERO;
    let mut latency = Second::ZERO;
    let mut partials = Vec::with_capacity(cols.div_ceil(CHUNK));
    for r in 0..rows {
        let row = &normalised[r * cols..(r + 1) * cols];
        let row_stream = noise.slot_stream(epoch, r as u64);
        partials.clear();
        for (ci, (w_chunk, a_chunk)) in row.chunks(CHUNK).zip(input.chunks(CHUNK)).enumerate() {
            // Round-robin chunks over the fabric; each chunk occupies one
            // arm for its evaluation.
            let slot = (total_chunks + ci) % (opc.bank_count() * arms_per_bank);
            let bank = slot / arms_per_bank;
            let arm = slot % arms_per_bank;
            opc.bank_mut(bank)?.load_arm(arm, w_chunk, mapper)?;
            // Counter-based stream per (row, chunk): draws are addressed,
            // not consumed, so chunk evaluation order is immaterial.
            let stream = row_stream.at(ci as u64);
            let result = opc.compute_arm(bank, arm, a_chunk, &mut stream.cursor())?;
            energy += result.optical_energy;
            partials.push(result);
        }
        total_chunks += partials.len();
        let agg = vom.accumulate_and_transmit(&partials)?;
        energy += agg.energy;
        latency += agg.latency;
        output.push((agg.value * f64::from(scale)) as f32);
    }
    Ok(MatVecReport {
        output,
        chunks: total_chunks,
        energy,
        latency,
    })
}

/// Parallel twin of [`matvec`]: rows fan out over the work-stealing
/// scheduler and evaluate against private per-worker arm state instead
/// of serialising on the shared fabric.
///
/// Each worker owns one scratch arm (cloned from the core's arm
/// design). Per chunk it re-tunes that arm, takes an immutable
/// [`oisa_optics::arm::ArmSnapshot`] and evaluates the snapshot through
/// the same `(epoch, row, chunk)` noise stream the serial engine would
/// use — arm state after `load_weights` depends only on the loaded
/// chunk, never on fabric history, so every [`MacResult`] is
/// bit-identical to the serial path's. The final reduction walks rows
/// in order with the serial engine's exact floating-point grouping.
///
/// The consumed noise epoch matches [`matvec`], and the fabric is left
/// in the serial engine's exact exit state (each used arm's final two
/// round-robin loads are replayed, which pins both the ring operating
/// points and the per-arm recorded tuning energy/latency) — so the two
/// engines are drop-in interchangeable under a seed, including for
/// whatever runs on the fabric afterwards.
///
/// # Errors
///
/// Same contract as [`matvec`].
#[allow(clippy::too_many_arguments)]
pub fn matvec_parallel(
    opc: &mut Opc,
    vom: &Vom,
    mapper: &WeightMapper,
    matrix: &[f32],
    rows: usize,
    cols: usize,
    input: &[f64],
    noise: &mut NoiseSource,
) -> Result<MatVecReport> {
    validate_matvec(matrix, rows, cols, input)?;
    let (scale, normalised) = normalise_matrix(matrix);
    let epoch = noise.begin_epoch()?;
    let template = opc.scratch_arm()?;
    let noise_ref: &NoiseSource = noise;
    let normalised_ref = &normalised;
    let row_partials: Vec<Result<Vec<MacResult>>> = scheduler::execute_with(
        (0..rows).collect(),
        || template.clone(),
        |arm, _, r| -> Result<Vec<MacResult>> {
            let row = &normalised_ref[r * cols..(r + 1) * cols];
            let row_stream = noise_ref.slot_stream(epoch, r as u64);
            let mut partials = Vec::with_capacity(cols.div_ceil(CHUNK));
            for (ci, (w_chunk, a_chunk)) in row.chunks(CHUNK).zip(input.chunks(CHUNK)).enumerate() {
                arm.load_weights(w_chunk, mapper)?;
                let snapshot = arm.snapshot();
                let stream = row_stream.at(ci as u64);
                partials.push(snapshot.mac(a_chunk, &mut stream.cursor())?);
            }
            Ok(partials)
        },
    );
    // Ordered reduction with the serial engine's exact grouping: per
    // row, chunk energies first, then the VOM aggregate.
    let mut output = Vec::with_capacity(rows);
    let mut total_chunks = 0usize;
    let mut energy = Joule::ZERO;
    let mut latency = Second::ZERO;
    for partials in row_partials {
        let partials = partials?;
        for p in &partials {
            energy += p.optical_energy;
        }
        total_chunks += partials.len();
        let agg = vom.accumulate_and_transmit(&partials)?;
        energy += agg.energy;
        latency += agg.latency;
        output.push((agg.value * f64::from(scale)) as f32);
    }

    // Leave the shared fabric exactly as the serial engine would, so
    // the two paths stay interchangeable for whatever runs next.
    replay_exit_state(opc, mapper, &normalised, rows, cols)?;

    Ok(MatVecReport {
        output,
        chunks: total_chunks,
        energy,
        latency,
    })
}

/// Reproduces the fabric exit state a serial [`matvec`] over the
/// `rows × cols` matrix `normalised` (already scale-normalised into
/// `[-1, 1]` f64) would leave, without computing anything or consuming
/// noise epochs.
///
/// Ring state after a load depends only on that load's chunk, and an
/// arm's recorded tuning energy/latency only on its previous operating
/// point — so replaying each used arm's final two round-robin loads (in
/// any arm order) reproduces the serial exit state bit-for-bit at a
/// cost bounded by the fabric size, not the chunk count.
///
/// [`matvec_parallel`] runs this after its ordered reduction; the
/// layer-program prewarm
/// ([`OisaAccelerator::prewarm_program`](crate::accelerator::OisaAccelerator::prewarm_program))
/// runs it per dense stage so a shard's first frame sees exactly the
/// steady-state fabric a sequential per-frame loop reaches.
pub(crate) fn replay_exit_state(
    opc: &mut Opc,
    mapper: &WeightMapper,
    normalised: &[f64],
    rows: usize,
    cols: usize,
) -> Result<()> {
    let arms_per_bank = oisa_optics::bank::ARMS_PER_BANK;
    let nslots = opc.bank_count() * arms_per_bank;
    let chunks_per_row = cols.div_ceil(CHUNK);
    let total_chunks = rows * chunks_per_row;
    let chunk_of = |g: usize| {
        let start = (g / chunks_per_row) * cols + (g % chunks_per_row) * CHUNK;
        let end = (g / chunks_per_row) * cols + cols.min((g % chunks_per_row) * CHUNK + CHUNK);
        &normalised[start..end]
    };
    for slot in 0..nslots.min(total_chunks) {
        // Serial chunk `g` (row-major) lands on arm `g % nslots`; the
        // last such `g` fixes this arm's final weights, the one before
        // it the operating point that final tuning was paid from.
        let last = slot + ((total_chunks - 1 - slot) / nslots) * nslots;
        let bank = slot / arms_per_bank;
        let arm = slot % arms_per_bank;
        if last >= nslots {
            opc.bank_mut(bank)?
                .load_arm(arm, chunk_of(last - nslots), mapper)?;
        }
        opc.bank_mut(bank)?.load_arm(arm, chunk_of(last), mapper)?;
    }
    Ok(())
}

/// Shape/range validation shared by both matvec engines; range errors
/// report the offending index before any fabric state changes.
fn validate_matvec(matrix: &[f32], rows: usize, cols: usize, input: &[f64]) -> Result<()> {
    if matrix.len() != rows * cols || rows == 0 || cols == 0 {
        return Err(CoreError::InvalidParameter(format!(
            "matrix {rows}x{cols} does not match {} elements",
            matrix.len()
        )));
    }
    if input.len() != cols {
        return Err(CoreError::InvalidParameter(format!(
            "input length {} != cols {cols}",
            input.len()
        )));
    }
    if let Some(i) = input.iter().position(|a| !(0.0..=1.0).contains(a)) {
        return Err(CoreError::InvalidParameter(format!(
            "input activation {} at index {i} outside [0, 1]",
            input[i]
        )));
    }
    Ok(())
}

/// One scan for the per-tensor scale, one pass normalising the whole
/// matrix — hoisted out of the row loop so neither engine re-stages
/// weights per chunk. Shared with the layer-program dense prewarm so
/// its [`replay_exit_state`] stages the exact bits the engines load.
pub(crate) fn normalise_matrix(matrix: &[f32]) -> (f32, Vec<f64>) {
    let scale = matrix
        .iter()
        .fold(0.0f32, |m, w| m.max(w.abs()))
        .max(f32::MIN_POSITIVE);
    let normalised = matrix.iter().map(|&w| f64::from(w / scale)).collect();
    (scale, normalised)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};
    use oisa_optics::arm::ArmConfig;
    use oisa_optics::opc::OpcConfig;
    use oisa_optics::vom::VomConfig;

    fn fabric() -> (Opc, Vom, WeightMapper) {
        let cfg = OpcConfig {
            banks: 2,
            columns: 1,
            awc_units: 10,
            arm: ArmConfig::no_crosstalk(),
        };
        (
            Opc::new(cfg).unwrap(),
            Vom::new(VomConfig::paper_default()).unwrap(),
            WeightMapper::ideal(4).unwrap(),
        )
    }

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    #[test]
    fn matvec_matches_reference() {
        let (mut opc, vom, mapper) = fabric();
        // 3×12 matrix → each row spans 2 chunks.
        let rows = 3;
        let cols = 12;
        let matrix: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.37).sin()).collect();
        let input: Vec<f64> = (0..cols).map(|i| (i as f64) / cols as f64).collect();
        let report = matvec(
            &mut opc,
            &vom,
            &mapper,
            &matrix,
            rows,
            cols,
            &input,
            &mut quiet(),
        )
        .unwrap();
        assert_eq!(report.output.len(), rows);
        assert_eq!(report.chunks, rows * 2);
        for r in 0..rows {
            let exact: f64 = (0..cols)
                .map(|c| f64::from(matrix[r * cols + c]) * input[c])
                .sum();
            let got = f64::from(report.output[r]);
            assert!(
                (got - exact).abs() < 0.25,
                "row {r}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn large_row_chunk_count() {
        let (mut opc, vom, mapper) = fabric();
        // One 784-wide row (an MNIST-sized MLP input) → 88 chunks.
        let cols = 784;
        let matrix = vec![0.01f32; cols];
        let input = vec![0.5f64; cols];
        let report = matvec(
            &mut opc,
            &vom,
            &mapper,
            &matrix,
            1,
            cols,
            &input,
            &mut quiet(),
        )
        .unwrap();
        assert_eq!(report.chunks, 88);
        let exact = 0.01 * 0.5 * cols as f64;
        assert!(
            (f64::from(report.output[0]) - exact).abs() < 0.4,
            "got {} exact {exact}",
            report.output[0]
        );
    }

    #[test]
    fn energy_and_latency_scale_with_rows() {
        let (mut opc, vom, mapper) = fabric();
        let cols = 18;
        let run = |opc: &mut Opc, rows: usize| {
            let matrix = vec![0.1f32; rows * cols];
            let input = vec![0.5f64; cols];
            matvec(
                opc,
                &vom,
                &mapper,
                &matrix,
                rows,
                cols,
                &input,
                &mut quiet(),
            )
            .unwrap()
        };
        let one = run(&mut opc, 1);
        let four = run(&mut opc, 4);
        assert!(four.energy.get() > 3.0 * one.energy.get());
        assert!(four.latency.get() > 3.0 * one.latency.get());
    }

    #[test]
    fn parallel_matvec_bit_identical_to_serial() {
        // Force real worker threads so the claim is exercised even on
        // single-CPU hosts.
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(4);
        let (mut opc, vom, mapper) = fabric();
        // 7×23: ragged final chunk, rows spanning 3 chunks.
        let rows = 7;
        let cols = 23;
        let matrix: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.13).sin()).collect();
        let input: Vec<f64> = (0..cols)
            .map(|i| (i as f64 * 0.37).sin().abs().min(1.0))
            .collect();
        let mut serial_noise = NoiseSource::seeded(42, NoiseConfig::paper_default());
        let mut parallel_noise = NoiseSource::seeded(42, NoiseConfig::paper_default());
        let serial = matvec(
            &mut opc,
            &vom,
            &mapper,
            &matrix,
            rows,
            cols,
            &input,
            &mut serial_noise,
        )
        .unwrap();
        let mut par_opc = {
            let (opc, _, _) = fabric();
            opc
        };
        let parallel = matvec_parallel(
            &mut par_opc,
            &vom,
            &mapper,
            &matrix,
            rows,
            cols,
            &input,
            &mut parallel_noise,
        )
        .unwrap();
        assert_eq!(serial, parallel, "reports must be bit-identical");
        // And the fabric exits in the serial engine's exact state, so
        // the engines stay interchangeable for whatever runs next.
        assert_eq!(
            opc, par_opc,
            "fabric exit state must match the serial engine"
        );
    }

    #[test]
    fn parallel_matvec_validates_like_serial() {
        let (mut opc, vom, mapper) = fabric();
        let mut noise = quiet();
        assert!(
            matvec_parallel(&mut opc, &vom, &mapper, &[0.1; 6], 2, 4, &[0.5; 4], &mut noise)
                .is_err()
        );
        let mut input = vec![0.5f64; 12];
        input[4] = -0.3;
        let err = matvec_parallel(
            &mut opc, &vom, &mapper, &[0.1; 12], 1, 12, &input, &mut noise,
        )
        .unwrap_err();
        assert!(err.to_string().contains("index 4"));
    }

    #[test]
    fn out_of_range_input_reports_index() {
        let (mut opc, vom, mapper) = fabric();
        let mut input = vec![0.5f64; 12];
        input[7] = 1.7;
        let err = matvec(
            &mut opc,
            &vom,
            &mapper,
            &[0.1; 12],
            1,
            12,
            &input,
            &mut quiet(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("index 7"), "must name the index: {msg}");
    }

    #[test]
    fn shape_validation() {
        let (mut opc, vom, mapper) = fabric();
        let err = matvec(
            &mut opc,
            &vom,
            &mapper,
            &[0.1; 6],
            2,
            4,
            &[0.5; 4],
            &mut quiet(),
        );
        assert!(err.is_err());
        let err = matvec(
            &mut opc,
            &vom,
            &mapper,
            &[0.1; 8],
            2,
            4,
            &[0.5; 3],
            &mut quiet(),
        );
        assert!(err.is_err());
        let err = matvec(&mut opc, &vom, &mapper, &[], 0, 0, &[], &mut quiet());
        assert!(err.is_err());
    }
}
