//! Time-dependent source waveforms.

use serde::{Deserialize, Serialize};

/// The drive waveform of an independent voltage or current source.
///
/// All times are in seconds and all levels in the source's natural unit
/// (volts or amperes).
///
/// # Examples
///
/// ```
/// use oisa_spice::Waveform;
///
/// let clk = Waveform::pulse(0.0, 1.0, 0.0, 1e-10, 1e-10, 4e-9, 8e-9);
/// assert_eq!(clk.value_at(0.0), 0.0);
/// assert!((clk.value_at(2e-9) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant level.
    Dc(f64),
    /// SPICE-style periodic trapezoidal pulse.
    Pulse {
        /// Initial (resting) level.
        low: f64,
        /// Pulsed level.
        high: f64,
        /// Delay before the first rising edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Time spent at `high` (not counting edges), seconds.
        width: f64,
        /// Repetition period, seconds. Non-positive means single-shot.
        period: f64,
    },
    /// Piecewise-linear waveform through `(time, level)` points sorted by
    /// time. Holds the first level before the first point and the last
    /// level after the last point.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant waveform at `level`.
    #[must_use]
    pub fn dc(level: f64) -> Self {
        Self::Dc(level)
    }

    /// Periodic trapezoidal pulse (SPICE `PULSE` semantics).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn pulse(
        low: f64,
        high: f64,
        delay: f64,
        rise: f64,
        fall: f64,
        width: f64,
        period: f64,
    ) -> Self {
        Self::Pulse {
            low,
            high,
            delay,
            rise,
            fall,
            width,
            period,
        }
    }

    /// Piecewise-linear waveform through the given `(time, level)` points.
    /// Points are sorted by time internally.
    #[must_use]
    pub fn pwl<I: IntoIterator<Item = (f64, f64)>>(points: I) -> Self {
        let mut pts: Vec<(f64, f64)> = points.into_iter().collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self::Pwl(pts)
    }

    /// Returns this waveform with every level multiplied by `factor` —
    /// e.g. turning a 0/1 gate pulse into a gated current of amplitude
    /// `factor`.
    #[must_use]
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            Self::Dc(level) => Self::Dc(level * factor),
            Self::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => Self::Pulse {
                low: low * factor,
                high: high * factor,
                delay,
                rise,
                fall,
                width,
                period,
            },
            Self::Pwl(points) => {
                Self::Pwl(points.into_iter().map(|(t, v)| (t, v * factor)).collect())
            }
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    #[must_use]
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Self::Dc(level) => *level,
            Self::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *low;
                }
                let mut local = t - delay;
                if *period > 0.0 {
                    local %= period;
                }
                // Guard against degenerate zero-length edges.
                let rise = rise.max(f64::MIN_POSITIVE);
                let fall = fall.max(f64::MIN_POSITIVE);
                if local < rise {
                    low + (high - low) * (local / rise)
                } else if local < rise + width {
                    *high
                } else if local < rise + width + fall {
                    high - (high - low) * ((local - rise - width) / fall)
                } else {
                    *low
                }
            }
            Self::Pwl(points) => match points.len() {
                0 => 0.0,
                1 => points[0].1,
                _ => {
                    if t <= points[0].0 {
                        return points[0].1;
                    }
                    if t >= points[points.len() - 1].0 {
                        return points[points.len() - 1].1;
                    }
                    let idx = points.partition_point(|&(pt, _)| pt <= t);
                    let (t0, v0) = points[idx - 1];
                    let (t1, v1) = points[idx];
                    if (t1 - t0).abs() < f64::MIN_POSITIVE {
                        v1
                    } else {
                        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(0.8);
        for t in [0.0, 1e-9, 1.0] {
            assert_eq!(w.value_at(t), 0.8);
        }
    }

    #[test]
    fn pulse_edges_and_plateau() {
        let w = Waveform::pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 2e-9, 0.0);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.999e-9), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9); // mid-rise
        assert_eq!(w.value_at(2e-9), 1.0); // plateau
        let mid_fall = w.value_at(1e-9 + 1e-10 + 2e-9 + 0.5e-10);
        assert!((mid_fall - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(10e-9), 0.0); // back to low, single shot
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = Waveform::pulse(0.0, 1.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9);
        assert!((w.value_at(0.5e-9) - 1.0).abs() < 1e-9);
        assert!((w.value_at(2.5e-9) - 1.0).abs() < 1e-9); // second cycle
        assert!(w.value_at(1.7e-9) < 1e-9); // low phase
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::pwl([(1.0, 0.0), (2.0, 1.0), (4.0, -1.0)]);
        assert_eq!(w.value_at(0.0), 0.0); // clamp before first point
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12);
        assert!((w.value_at(3.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.value_at(9.0), -1.0); // clamp after last point
    }

    #[test]
    fn pwl_sorts_input_points() {
        let w = Waveform::pwl([(2.0, 1.0), (0.0, 0.0)]);
        assert!((w.value_at(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pwl_empty_and_single() {
        assert_eq!(Waveform::pwl([]).value_at(1.0), 0.0);
        assert_eq!(Waveform::pwl([(0.0, 3.3)]).value_at(42.0), 3.3);
    }

    #[test]
    fn scaled_multiplies_levels_not_times() {
        let w = Waveform::pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 2e-9, 0.0).scaled(5e-6);
        assert!((w.value_at(2e-9) - 5e-6).abs() < 1e-18);
        assert_eq!(w.value_at(0.0), 0.0);
        let d = Waveform::dc(2.0).scaled(-0.5);
        assert_eq!(d.value_at(7.0), -1.0);
        let p = Waveform::pwl([(0.0, 1.0), (1.0, 3.0)]).scaled(2.0);
        assert!((p.value_at(0.5) - 4.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn pulse_bounded_by_levels(
            t in 0.0..1e-6f64,
            low in -2.0..0.0f64,
            high in 0.0..2.0f64,
        ) {
            let w = Waveform::pulse(low, high, 1e-9, 1e-10, 1e-10, 5e-9, 10e-9);
            let v = w.value_at(t);
            prop_assert!(v >= low - 1e-12 && v <= high + 1e-12);
        }

        #[test]
        fn pwl_bounded_by_extremes(t in -1.0..10.0f64) {
            let w = Waveform::pwl([(0.0, 0.2), (1.0, 0.9), (2.0, -0.4), (3.0, 0.1)]);
            let v = w.value_at(t);
            prop_assert!((-0.4..=0.9).contains(&v));
        }
    }
}
