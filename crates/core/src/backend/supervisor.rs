//! [`FleetSupervisor`] — hands-off operation of a sharded worker
//! fleet: health checks, automatic failover, and mid-job re-planning.
//!
//! The pre-supervisor deployment story required an operator in the
//! loop: a dead worker surfaced as [`OisaError::Transport`], a human
//! called
//! [`ShardedBackend::replace_worker`](super::ShardedBackend::replace_worker),
//! and the job was retried. The supervisor closes that loop. It owns
//! N **active** workers (inside a [`ShardedBackend`]) plus M **spare**
//! transports, and climbs an escalation ladder on every failure:
//!
//! 1. **Quarantine** — the failed endpoint is recorded (label + error)
//!    and never dialed again by this supervisor.
//! 2. **Promote** — a spare is admission-checked (liveness ping, or a
//!    wire-v3 config push when
//!    [`SupervisorOptions::push_config_to_spares`] is set) and swapped
//!    into the failed slot; the failed shard re-runs on it.
//! 3. **Re-plan** — with no admissible spare left, the failed shard's
//!    frame range is re-split across the surviving workers and the
//!    *current job* continues on the shrunken fleet.
//!
//! The ladder never changes results: workers are stateless per shard
//! and shard boundaries never affect the merged stream (see the
//! [backend module docs](super)), so a job that survives any sequence
//! of failovers and re-plans merges **bit-identical** to a
//! single-machine sequential run — the property the supervisor tests
//! pin.
//!
//! Health checks run between jobs, not on a background thread:
//! transports are `Send` but the supervisor is driven from one
//! coordinator thread, so [`FleetSupervisor::run_job`] probes idle
//! workers whenever [`SupervisorOptions::health_interval`] has
//! elapsed, and [`FleetSupervisor::health_check_now`] forces a sweep.
//! A hung worker (accepting but never replying) fails its probe within
//! the transport's bounded `attempts × io_timeout` budget and is
//! quarantined like a dead one.

use std::time::{Duration, Instant};

use crate::accelerator::{ConvolutionReport, OisaConfig};
use crate::error::OisaError;
use crate::program::ProgramFrameReport;
use crate::wire::{InferenceJob, ProgramJob};

use super::{
    probe_transport, push_config_to_transport, BackendResult, ComputeBackend, Recovery,
    ShardTransport, ShardedBackend,
};

/// Operating knobs of a [`FleetSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorOptions {
    /// Probe idle workers when at least this much time has passed
    /// since the last sweep ([`FleetSupervisor::run_job`] checks
    /// lazily before dispatching). `None` disables interval checks;
    /// [`FleetSupervisor::health_check_now`] still works.
    pub health_interval: Option<Duration>,
    /// Admit spares (and newly supervised workers) with a wire-v3
    /// config push instead of a fingerprint-checking ping — required
    /// for heterogeneous fleets whose spares were started with
    /// different physics.
    pub push_config_to_spares: bool,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        Self {
            health_interval: Some(Duration::from_secs(10)),
            push_config_to_spares: false,
        }
    }
}

/// One quarantined endpoint: who failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// The failed worker's [`ShardTransport::endpoint_label`].
    pub label: String,
    /// The rendered failure that triggered the quarantine.
    pub error: String,
}

/// A point-in-time summary of the supervised fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStatus {
    /// Workers currently serving shards.
    pub active: usize,
    /// Spares still available for promotion.
    pub spares: usize,
    /// Endpoints quarantined so far.
    pub quarantined: usize,
    /// Spares promoted into active duty so far.
    pub promotions: u64,
    /// Mid-job re-plans (fleet shrinks) so far.
    pub replans: u64,
}

/// Self-healing front end over a [`ShardedBackend`] (module docs). It
/// is itself a [`ComputeBackend`], so a
/// [`ServingEngine`](crate::serving::ServingEngine) can run on top of
/// a supervised fleet unchanged.
///
/// # Examples
///
/// Supervise two in-process workers with one spare on the bench, run
/// a job and read the fleet counters:
///
/// ```
/// use oisa_core::backend::{
///     ComputeBackend, FleetSupervisor, InProcessWorker, ShardTransport, SupervisorOptions,
/// };
/// use oisa_core::wire::InferenceJob;
/// use oisa_core::OisaConfig;
/// use oisa_sensor::Frame;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = OisaConfig::small_test();
/// let worker = |_| Box::new(InProcessWorker::new(config)) as Box<dyn ShardTransport>;
/// let mut fleet = FleetSupervisor::new(
///     config,
///     (0..2).map(worker).collect(), // active
///     (0..1).map(worker).collect(), // spares
///     SupervisorOptions::default(),
/// )?;
///
/// let job = InferenceJob {
///     job_id: 1,
///     k: 3,
///     kernels: vec![vec![0.25f32; 9]],
///     frames: vec![Frame::constant(16, 16, 0.6)?; 4],
/// };
/// let reports = fleet.run_job(&job)?; // sharded over the active pair
/// assert_eq!(reports.len(), 4);
///
/// let status = fleet.status();
/// assert_eq!((status.active, status.spares), (2, 1)); // nothing failed
/// assert_eq!(status.promotions + status.replans, 0);
/// # Ok(())
/// # }
/// ```
pub struct FleetSupervisor {
    backend: ShardedBackend,
    spares: Vec<Box<dyn ShardTransport>>,
    options: SupervisorOptions,
    quarantined: Vec<QuarantineEvent>,
    promotions: u64,
    replans: u64,
    last_sweep: Option<Instant>,
    nonce: u64,
}

impl std::fmt::Debug for FleetSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSupervisor")
            .field("active", &self.backend.worker_count())
            .field("spares", &self.spares.len())
            .field("quarantined", &self.quarantined)
            .field("promotions", &self.promotions)
            .field("replans", &self.replans)
            .finish_non_exhaustive()
    }
}

impl FleetSupervisor {
    /// Supervises `active` workers with `spares` on the bench, all
    /// executing under `config`. With
    /// [`SupervisorOptions::push_config_to_spares`] set, every active
    /// worker receives a wire-v3 config push up front, so a
    /// heterogeneous fleet converges at admission instead of refusing
    /// the first shard.
    ///
    /// # Errors
    ///
    /// As [`ShardedBackend::new`] (empty fleet, invalid config);
    /// admission-push failures from any active worker.
    pub fn new(
        config: OisaConfig,
        active: Vec<Box<dyn ShardTransport>>,
        spares: Vec<Box<dyn ShardTransport>>,
        options: SupervisorOptions,
    ) -> BackendResult<Self> {
        let backend = ShardedBackend::new(config, active)?;
        let mut supervisor = Self {
            backend,
            spares,
            options,
            quarantined: Vec::new(),
            promotions: 0,
            replans: 0,
            last_sweep: None,
            nonce: 0,
        };
        if options.push_config_to_spares {
            for index in 0..supervisor.backend.worker_count() {
                let nonce = supervisor.next_nonce();
                supervisor.backend.push_config_to_worker(index, nonce)?;
            }
        }
        Ok(supervisor)
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce = self.nonce.wrapping_add(1);
        self.nonce
    }

    /// The current fleet shape and recovery counters.
    #[must_use]
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            active: self.backend.worker_count(),
            spares: self.spares.len(),
            quarantined: self.quarantined.len(),
            promotions: self.promotions,
            replans: self.replans,
        }
    }

    /// Every quarantine recorded so far, oldest first.
    #[must_use]
    pub fn quarantine_log(&self) -> &[QuarantineEvent] {
        &self.quarantined
    }

    /// Read access to the supervised backend (fleet shape, job
    /// counters).
    #[must_use]
    pub fn backend(&self) -> &ShardedBackend {
        &self.backend
    }

    /// Pushes the supervisor's config to every active worker — the
    /// between-jobs physics-update path. Workers rebuild their
    /// accelerators; the next job runs under the new physics on every
    /// node.
    ///
    /// # Errors
    ///
    /// The first failing push (transport, refusal, or a worker that
    /// acknowledged a different fingerprint).
    pub fn push_config_to_fleet(&mut self) -> BackendResult<()> {
        for index in 0..self.backend.worker_count() {
            let nonce = self.next_nonce();
            self.backend.push_config_to_worker(index, nonce)?;
        }
        Ok(())
    }

    /// Probes every active worker now (liveness ping + fingerprint
    /// echo), quarantining failures and back-filling from the spare
    /// bench. Returns how many workers failed this sweep.
    ///
    /// A probe failure is handled, not propagated: the worker is
    /// quarantined and (if possible) replaced. The only error case is
    /// a fleet reduced to zero healthy workers.
    ///
    /// # Errors
    ///
    /// [`OisaError::Backend`] when every worker *and* every spare is
    /// gone — an empty fleet cannot serve.
    pub fn health_check_now(&mut self) -> BackendResult<usize> {
        self.last_sweep = Some(Instant::now());
        let mut failed = 0usize;
        // Descending order: removals never shift a slot still waiting
        // to be probed.
        for index in (0..self.backend.worker_count()).rev() {
            let nonce = self.next_nonce();
            let outcome = self.backend.ping_worker(index, nonce);
            let error = match outcome {
                Ok(_fingerprint) => continue,
                Err(e) => e,
            };
            failed += 1;
            self.quarantine(index, &error);
            match self.promote_spare() {
                Some(spare) => {
                    self.promotions += 1;
                    self.backend.replace_worker(index, spare)?;
                }
                None if self.backend.worker_count() > 1 => {
                    self.backend.remove_worker(index)?;
                }
                None => {
                    return Err(OisaError::Backend(format!(
                        "fleet exhausted: last worker failed its health check ({error})"
                    )));
                }
            }
        }
        Ok(failed)
    }

    /// Records a quarantine for the worker currently at `index`.
    fn quarantine(&mut self, index: usize, error: &OisaError) {
        let label = self
            .backend
            .worker_label(index)
            .unwrap_or_else(|| format!("worker-{index}"));
        self.quarantined.push(QuarantineEvent {
            label,
            error: error.to_string(),
        });
    }

    /// Takes the next admissible spare off the bench: each candidate
    /// is liveness-probed (or config-pushed, per the options); dead
    /// spares are quarantined too and the search continues.
    fn promote_spare(&mut self) -> Option<Box<dyn ShardTransport>> {
        while let Some(mut spare) = self.spares.pop() {
            let nonce = self.next_nonce();
            let admission = if self.options.push_config_to_spares {
                push_config_to_transport(spare.as_mut(), self.backend.config(), nonce)
            } else {
                probe_transport(spare.as_mut(), self.backend.config().fingerprint(), nonce)
                    .map(|_fingerprint| ())
            };
            match admission {
                Ok(()) => return Some(spare),
                Err(error) => self.quarantined.push(QuarantineEvent {
                    label: spare.endpoint_label(),
                    error: format!("spare failed admission: {error}"),
                }),
            }
        }
        None
    }

    /// Runs the interval sweep if it is due.
    fn maybe_sweep(&mut self) -> BackendResult<()> {
        let Some(interval) = self.options.health_interval else {
            return Ok(());
        };
        let due = self.last_sweep.is_none_or(|at| at.elapsed() >= interval);
        if due {
            self.health_check_now()?;
        }
        Ok(())
    }
}

impl ComputeBackend for FleetSupervisor {
    fn config(&self) -> &OisaConfig {
        self.backend.config()
    }

    /// [`ShardedBackend::run_job`] behind the escalation ladder: a
    /// worker lost mid-job is quarantined and its shard re-runs on a
    /// promoted spare, or — spares exhausted — its frame range is
    /// re-planned across the survivors. Either way the merged report
    /// stream is bit-identical to the no-failure run.
    fn run_job(&mut self, job: &InferenceJob) -> BackendResult<Vec<ConvolutionReport>> {
        self.maybe_sweep()?;
        // Split borrows: the recovery closure may not touch
        // `self.backend` (mutably borrowed by the call), so promotion
        // candidates and bookkeeping live in locals.
        let config_fingerprint = self.backend.config().fingerprint();
        let push_config = self
            .options
            .push_config_to_spares
            .then(|| *self.backend.config());
        let spares = &mut self.spares;
        let quarantined = &mut self.quarantined;
        let promotions = &mut self.promotions;
        let replans = &mut self.replans;
        let nonce = &mut self.nonce;
        let backend = &mut self.backend;
        backend.run_job_with_recovery(job, &mut |label, error| {
            escalate(
                spares,
                quarantined,
                promotions,
                replans,
                nonce,
                push_config.as_ref(),
                config_fingerprint,
                label,
                error,
            )
        })
    }

    /// [`ShardedBackend::run_program`](ComputeBackend::run_program)
    /// behind the same escalation ladder as [`run_job`]: layer-program
    /// shards lost to a dead worker re-run on promoted spares or
    /// re-plan across the survivors, and the merged per-frame report
    /// stream stays bit-identical to the no-failure run.
    ///
    /// [`run_job`]: ComputeBackend::run_job
    fn run_program(&mut self, job: &ProgramJob) -> BackendResult<Vec<ProgramFrameReport>> {
        self.maybe_sweep()?;
        // Same split-borrow discipline as `run_job`.
        let config_fingerprint = self.backend.config().fingerprint();
        let push_config = self
            .options
            .push_config_to_spares
            .then(|| *self.backend.config());
        let spares = &mut self.spares;
        let quarantined = &mut self.quarantined;
        let promotions = &mut self.promotions;
        let replans = &mut self.replans;
        let nonce = &mut self.nonce;
        let backend = &mut self.backend;
        backend.run_program_with_recovery(job, &mut |label, error| {
            escalate(
                spares,
                quarantined,
                promotions,
                replans,
                nonce,
                push_config.as_ref(),
                config_fingerprint,
                label,
                error,
            )
        })
    }
}

/// The escalation ladder shared by every supervised job kind (conv
/// jobs and layer programs): quarantine the failed endpoint, admit a
/// spare if one passes its admission check (promote), otherwise fall
/// back to re-planning the lost range across the survivors (shrink).
#[allow(clippy::too_many_arguments)]
fn escalate(
    spares: &mut Vec<Box<dyn ShardTransport>>,
    quarantined: &mut Vec<QuarantineEvent>,
    promotions: &mut u64,
    replans: &mut u64,
    nonce: &mut u64,
    push_config: Option<&OisaConfig>,
    config_fingerprint: u64,
    label: &str,
    error: &OisaError,
) -> Recovery {
    quarantined.push(QuarantineEvent {
        label: label.to_string(),
        error: error.to_string(),
    });
    while let Some(mut spare) = spares.pop() {
        *nonce = nonce.wrapping_add(1);
        let admission = match push_config {
            Some(config) => push_config_to_transport(spare.as_mut(), config, *nonce),
            None => {
                probe_transport(spare.as_mut(), config_fingerprint, *nonce).map(|_fingerprint| ())
            }
        };
        match admission {
            Ok(()) => {
                *promotions += 1;
                return Recovery::Promote(spare);
            }
            Err(admission_error) => quarantined.push(QuarantineEvent {
                label: spare.endpoint_label(),
                error: format!("spare failed admission: {admission_error}"),
            }),
        }
    }
    *replans += 1;
    Recovery::Shrink
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::tcp::{TcpTransport, TcpTransportConfig, TcpWorker};
    use crate::backend::{InProcessWorker, LocalBackend};
    use crate::wire::{self, WireMessage};
    use oisa_device::noise::NoiseConfig;
    use oisa_sensor::frame::Frame;

    fn cfg(seed: u64) -> OisaConfig {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = seed;
        cfg
    }

    fn frames(count: usize) -> Vec<Frame> {
        (0..count)
            .map(|f| {
                let data: Vec<f64> = (0..256)
                    .map(|i| ((i * (f + 5)) % 23) as f64 / 23.0)
                    .collect();
                Frame::new(16, 16, data).unwrap()
            })
            .collect()
    }

    fn job(frames_n: usize) -> InferenceJob {
        InferenceJob {
            job_id: 77,
            k: 3,
            kernels: vec![vec![0.5f32; 9], vec![-0.125f32; 9]],
            frames: frames(frames_n),
        }
    }

    /// A worker that serves correctly until it has accepted
    /// `shards_before_death` shards, then dies and stays dead — every
    /// later round trip (shards *and* pings) fails like a crashed
    /// process would.
    struct DoomedWorker {
        inner: InProcessWorker,
        shards_before_death: u64,
        served: u64,
        dead: bool,
        label: String,
    }

    impl DoomedWorker {
        fn new(config: OisaConfig, shards_before_death: u64, label: &str) -> Self {
            Self {
                inner: InProcessWorker::new(config),
                shards_before_death,
                served: 0,
                dead: false,
                label: label.to_string(),
            }
        }
    }

    impl ShardTransport for DoomedWorker {
        fn round_trip(&mut self, message: &[u8]) -> BackendResult<Vec<u8>> {
            if !self.dead
                && matches!(
                    wire::decode(message),
                    Ok(WireMessage::Shard(_) | WireMessage::ProgramShard(_))
                )
            {
                if self.served >= self.shards_before_death {
                    self.dead = true;
                } else {
                    self.served += 1;
                }
            }
            if self.dead {
                return Err(OisaError::Transport {
                    endpoint: self.label.clone(),
                    attempts: 1,
                    cause: "injected worker death".into(),
                });
            }
            self.inner.round_trip(message)
        }

        fn endpoint_label(&self) -> String {
            self.label.clone()
        }
    }

    fn oracle(config: OisaConfig, the_job: &InferenceJob) -> Vec<ConvolutionReport> {
        let mut local = LocalBackend::new(config).unwrap();
        local.run_job(the_job).unwrap()
    }

    fn program_job(frames_n: usize) -> ProgramJob {
        ProgramJob {
            job_id: 78,
            program: crate::program::LayerProgram::autoencoder(16, 16, 2, 4, 11).unwrap(),
            frames: frames(frames_n),
        }
    }

    /// Layer programs ride the same escalation ladder as conv jobs: a
    /// worker death mid-program promotes the spare, a second death
    /// re-plans, and the merged per-frame reports stay bit-identical
    /// to a local sequential forward.
    #[test]
    fn program_failover_promotes_then_replans_bit_identically() {
        let config = cfg(45);
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(config)),
            Box::new(DoomedWorker::new(config, 0, "doomed-prog")),
        ];
        // The spare pings fine but dies on its first program shard:
        // the ladder must climb promote → re-plan, like for conv jobs.
        let spares: Vec<Box<dyn ShardTransport>> =
            vec![Box::new(DoomedWorker::new(config, 0, "doomed-prog-spare"))];
        let mut supervisor =
            FleetSupervisor::new(config, active, spares, SupervisorOptions::default()).unwrap();
        let the_job = program_job(6);
        let reports = supervisor.run_program(&the_job).unwrap();
        let mut local = LocalBackend::new(config).unwrap();
        assert_eq!(
            reports,
            local.run_program(&the_job).unwrap(),
            "program failover must not change results"
        );
        let status = supervisor.status();
        assert_eq!(status.promotions, 1, "{status:?}");
        assert_eq!(status.replans, 1, "{status:?}");
        assert_eq!(status.quarantined, 2, "{status:?}");
    }

    #[test]
    fn worker_death_mid_job_promotes_a_spare_bit_identically() {
        let config = cfg(40);
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(config)),
            Box::new(DoomedWorker::new(config, 0, "doomed-1")),
            Box::new(InProcessWorker::new(config)),
        ];
        let spares: Vec<Box<dyn ShardTransport>> = vec![Box::new(InProcessWorker::new(config))];
        let mut supervisor =
            FleetSupervisor::new(config, active, spares, SupervisorOptions::default()).unwrap();
        let the_job = job(9);
        let reports = supervisor.run_job(&the_job).unwrap();
        assert_eq!(
            reports,
            oracle(config, &the_job),
            "failover must not change results"
        );
        let status = supervisor.status();
        assert_eq!(status.promotions, 1, "{status:?}");
        assert_eq!(status.replans, 0, "{status:?}");
        assert_eq!(status.active, 3, "spare took the dead slot: {status:?}");
        assert_eq!(status.spares, 0, "{status:?}");
        assert_eq!(supervisor.quarantine_log().len(), 1);
        assert_eq!(supervisor.quarantine_log()[0].label, "doomed-1");
    }

    #[test]
    fn spare_exhaustion_replans_across_survivors_bit_identically() {
        let config = cfg(41);
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(config)),
            Box::new(DoomedWorker::new(config, 0, "doomed-a")),
            Box::new(DoomedWorker::new(config, 0, "doomed-b")),
        ];
        let mut supervisor =
            FleetSupervisor::new(config, active, Vec::new(), SupervisorOptions::default()).unwrap();
        let the_job = job(11);
        let reports = supervisor.run_job(&the_job).unwrap();
        assert_eq!(
            reports,
            oracle(config, &the_job),
            "re-plan must not change results"
        );
        let status = supervisor.status();
        assert_eq!(status.promotions, 0, "{status:?}");
        assert_eq!(status.replans, 2, "{status:?}");
        assert_eq!(status.active, 1, "two of three quarantined: {status:?}");
        assert_eq!(status.quarantined, 2, "{status:?}");
    }

    #[test]
    fn promotion_then_replan_when_the_spare_dies_too() {
        let config = cfg(42);
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(config)),
            Box::new(DoomedWorker::new(config, 0, "doomed-active")),
        ];
        // The spare passes admission (pings fine) but dies on its
        // first shard: the ladder must climb promote → re-plan.
        let spares: Vec<Box<dyn ShardTransport>> =
            vec![Box::new(DoomedWorker::new(config, 0, "doomed-spare"))];
        let mut supervisor =
            FleetSupervisor::new(config, active, spares, SupervisorOptions::default()).unwrap();
        let the_job = job(6);
        let reports = supervisor.run_job(&the_job).unwrap();
        assert_eq!(reports, oracle(config, &the_job));
        let status = supervisor.status();
        assert_eq!(status.promotions, 1, "{status:?}");
        assert_eq!(status.replans, 1, "{status:?}");
        assert_eq!(status.active, 1, "{status:?}");
        assert_eq!(status.quarantined, 2, "{status:?}");
    }

    #[test]
    fn losing_every_worker_is_a_typed_error_and_a_retry_succeeds() {
        let config = cfg(43);
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(DoomedWorker::new(config, 0, "doomed-a")),
            Box::new(DoomedWorker::new(config, 0, "doomed-b")),
        ];
        let mut supervisor =
            FleetSupervisor::new(config, active, Vec::new(), SupervisorOptions::default()).unwrap();
        let the_job = job(4);
        let err = supervisor.run_job(&the_job).unwrap_err();
        assert!(
            matches!(err, OisaError::Backend(ref what) if what.contains("fleet exhausted")),
            "{err}"
        );
        // No state advanced on failure; a repaired fleet retries the
        // job bit-identically.
        assert_eq!(supervisor.backend().jobs_run(), 0);
    }

    #[test]
    fn health_check_quarantines_a_hung_tcp_worker_within_a_time_bound() {
        let config = cfg(44);
        let live = TcpWorker::bind(config, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        // Accepts connections, never replies: a hung worker.
        let hung = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let hung_addr = hung.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((stream, _)) = hung.accept() {
                held.push(stream);
            }
        });
        let options = TcpTransportConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Some(Duration::from_millis(200)),
            attempts: 2,
            backoff: Duration::from_millis(5),
            handshake: false, // the health probe itself must find the hang
        };
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(
                TcpTransport::connect(live.endpoint(), config.fingerprint(), options).unwrap(),
            ),
            Box::new(TcpTransport::deferred(
                hung_addr.clone(),
                config.fingerprint(),
                options,
            )),
        ];
        let mut supervisor =
            FleetSupervisor::new(config, active, Vec::new(), SupervisorOptions::default()).unwrap();
        let started = std::time::Instant::now();
        let failed = supervisor.health_check_now().unwrap();
        let elapsed = started.elapsed();
        assert_eq!(failed, 1, "exactly the hung worker fails");
        assert!(
            elapsed < Duration::from_secs(5),
            "quarantine took {elapsed:?}, probe is not bounded"
        );
        let status = supervisor.status();
        assert_eq!(status.active, 1, "{status:?}");
        assert_eq!(status.quarantined, 1, "{status:?}");
        assert!(
            supervisor.quarantine_log()[0].label.contains(&hung_addr),
            "{:?}",
            supervisor.quarantine_log()
        );
    }

    #[test]
    fn config_push_admits_a_mismatched_tcp_spare_bit_identically() {
        let coordinator_cfg = cfg(45);
        let spare_cfg = cfg(46); // different physics on the spare daemon
        assert_ne!(coordinator_cfg.fingerprint(), spare_cfg.fingerprint());
        let spare_daemon = TcpWorker::bind(spare_cfg, "127.0.0.1:0")
            .unwrap()
            .spawn()
            .unwrap();
        let options = TcpTransportConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(10)),
            attempts: 2,
            backoff: Duration::from_millis(5),
            handshake: false, // admission happens via the supervisor's push
        };
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(coordinator_cfg)),
            Box::new(DoomedWorker::new(coordinator_cfg, 0, "doomed")),
        ];
        let spares: Vec<Box<dyn ShardTransport>> = vec![Box::new(TcpTransport::deferred(
            spare_daemon.endpoint(),
            coordinator_cfg.fingerprint(),
            options,
        ))];
        let mut supervisor = FleetSupervisor::new(
            coordinator_cfg,
            active,
            spares,
            SupervisorOptions {
                push_config_to_spares: true,
                ..SupervisorOptions::default()
            },
        )
        .unwrap();
        let the_job = job(6);
        let reports = supervisor.run_job(&the_job).unwrap();
        assert_eq!(
            reports,
            oracle(coordinator_cfg, &the_job),
            "a config-pushed spare must serve the coordinator's physics"
        );
        let status = supervisor.status();
        assert_eq!(status.promotions, 1, "{status:?}");
        assert_eq!(status.replans, 0, "{status:?}");
    }

    #[test]
    fn push_config_to_fleet_reaches_every_active_worker() {
        let config = cfg(47);
        let daemons: Vec<_> = (0..2)
            .map(|_| {
                TcpWorker::bind(cfg(99), "127.0.0.1:0")
                    .unwrap()
                    .spawn()
                    .unwrap()
            })
            .collect();
        let options = TcpTransportConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Some(Duration::from_secs(10)),
            attempts: 2,
            backoff: Duration::from_millis(5),
            handshake: false,
        };
        let active: Vec<Box<dyn ShardTransport>> = daemons
            .iter()
            .map(|d| {
                Box::new(TcpTransport::deferred(
                    d.endpoint(),
                    config.fingerprint(),
                    options,
                )) as Box<dyn ShardTransport>
            })
            .collect();
        let mut supervisor =
            FleetSupervisor::new(config, active, Vec::new(), SupervisorOptions::default()).unwrap();
        // Both daemons run different physics; the between-jobs push
        // converges them, after which a job serves with parity.
        supervisor.push_config_to_fleet().unwrap();
        let the_job = job(4);
        let reports = supervisor.run_job(&the_job).unwrap();
        assert_eq!(reports, oracle(config, &the_job));
        assert_eq!(supervisor.status().quarantined, 0);
    }
}
