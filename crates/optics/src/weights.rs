//! Weight quantisation through the AWC → microring chain.
//!
//! A signed weight `w ∈ [−1, 1]` reaches a ring as follows (paper Fig. 2,
//! step ①):
//!
//! 1. its magnitude is quantised to an n-bit code (`n ≤ 4`),
//! 2. the AWC ladder converts the code to a tuning current — with the
//!    ladder's mismatch and compression errors,
//! 3. the ring is calibrated so *ideal* currents land on evenly spaced
//!    transmissions; the *actual* current therefore produces a slightly
//!    wrong transmission, and
//! 4. the sign selects the positive or negative waveguide of the arm.
//!
//! [`WeightMapper::quantize`] collapses the chain into the *effective
//! weight* the optical MAC will apply — the quantity both the OPC
//! simulation and the neural-network quantiser (for Table II) must share,
//! so they live here once.

use oisa_device::awc::{AwcLadder, AwcParams};
use serde::{Deserialize, Serialize};

use crate::{OpticsError, Result};

/// A quantised, sign-split weight ready for mapping onto an arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappedWeight {
    /// Digital code the kernel bank stores.
    pub code: u16,
    /// Effective magnitude the ring will transmit (ideally
    /// `code / (2^bits − 1)`, distorted by the AWC).
    pub magnitude: f64,
    /// `true` → negative waveguide.
    pub negative: bool,
}

impl MappedWeight {
    /// The signed effective weight.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.negative {
            -self.magnitude
        } else {
            self.magnitude
        }
    }
}

/// Quantises weights through a concrete AWC instance.
///
/// # Examples
///
/// ```
/// use oisa_optics::weights::WeightMapper;
///
/// # fn main() -> Result<(), oisa_optics::OpticsError> {
/// let mapper = WeightMapper::ideal(2)?; // 2-bit: levels 0, ⅓, ⅔, 1
/// let w = mapper.quantize(0.30)?;
/// assert_eq!(w.code, 1);
/// assert!((w.value() - 1.0 / 3.0).abs() < 1e-9);
/// let neg = mapper.quantize(-0.9)?;
/// assert!(neg.negative);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightMapper {
    ladder: AwcLadder,
    bits: u8,
    /// Precomputed effective magnitudes per code.
    effective: Vec<f64>,
}

impl WeightMapper {
    /// A mapper backed by an ideal (DAC-like) ladder at `bits` resolution.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for unsupported bit
    /// widths.
    pub fn ideal(bits: u8) -> Result<Self> {
        let ladder = AwcLadder::ideal(AwcParams::ideal(bits))?;
        Self::from_ladder(ladder)
    }

    /// A mapper backed by the paper's mismatch model at `bits` resolution
    /// (nominal legs, systematic compression active).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] for unsupported bit
    /// widths.
    pub fn paper(bits: u8) -> Result<Self> {
        let params = AwcParams {
            bits,
            ..AwcParams::paper_default()
        };
        let ladder = AwcLadder::ideal(params)?;
        Self::from_ladder(ladder)
    }

    /// Wraps a fabricated ladder instance.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::Device`] when a ladder level cannot be
    /// evaluated.
    pub fn from_ladder(ladder: AwcLadder) -> Result<Self> {
        let bits = ladder.params().bits;
        let full_scale =
            ladder.params().lsb_current.get() * f64::from(ladder.params().level_count() - 1);
        let effective = ladder
            .levels()
            .iter()
            .map(|i| i.get() / full_scale)
            .collect();
        Ok(Self {
            ladder,
            bits,
            effective,
        })
    }

    /// Bit resolution.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The backing ladder.
    #[must_use]
    pub fn ladder(&self) -> &AwcLadder {
        &self.ladder
    }

    /// Effective magnitude of each code, in code order.
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.effective
    }

    /// Quantises a signed weight.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] when `|w| > 1` or `w` is
    /// not finite.
    pub fn quantize(&self, w: f64) -> Result<MappedWeight> {
        if !w.is_finite() || w.abs() > 1.0 + 1e-12 {
            return Err(OpticsError::InvalidParameter(format!(
                "weight {w} outside [-1, 1]"
            )));
        }
        let levels = f64::from((1u16 << self.bits) - 1);
        let code = (w.abs().min(1.0) * levels).round() as u16;
        Ok(MappedWeight {
            code,
            magnitude: self.effective[code as usize],
            negative: w < 0.0,
        })
    }

    /// Quantises a whole kernel, preserving order.
    ///
    /// # Errors
    ///
    /// Propagates the first per-element failure.
    pub fn quantize_all(&self, weights: &[f64]) -> Result<Vec<MappedWeight>> {
        weights.iter().map(|&w| self.quantize(w)).collect()
    }

    /// Worst-case absolute quantisation error over a dense sweep of
    /// `[−1, 1]` — a diagnostic the design-space example uses.
    #[must_use]
    pub fn worst_case_error(&self) -> f64 {
        let mut worst = 0.0f64;
        let steps = 2001;
        for k in 0..steps {
            let w = -1.0 + 2.0 * k as f64 / (steps - 1) as f64;
            if let Ok(m) = self.quantize(w) {
                worst = worst.max((m.value() - w).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::awc::AwcModel;
    use proptest::prelude::*;

    #[test]
    fn ideal_levels_evenly_spaced() {
        let m = WeightMapper::ideal(4).unwrap();
        let levels = m.levels();
        assert_eq!(levels.len(), 16);
        for (c, l) in levels.iter().enumerate() {
            assert!((l - c as f64 / 15.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let m = WeightMapper::ideal(2).unwrap();
        // Levels 0, 1/3, 2/3, 1.
        assert_eq!(m.quantize(0.16).unwrap().code, 0);
        assert_eq!(m.quantize(0.17).unwrap().code, 1);
        assert_eq!(m.quantize(0.5).unwrap().code, 2); // 0.5·3 = 1.5 → 2
        assert_eq!(m.quantize(1.0).unwrap().code, 3);
    }

    #[test]
    fn sign_split() {
        let m = WeightMapper::ideal(3).unwrap();
        let pos = m.quantize(0.7).unwrap();
        let neg = m.quantize(-0.7).unwrap();
        assert!(!pos.negative);
        assert!(neg.negative);
        assert_eq!(pos.code, neg.code);
        assert!((pos.value() + neg.value()).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        let m = WeightMapper::ideal(4).unwrap();
        assert!(m.quantize(1.5).is_err());
        assert!(m.quantize(f64::NAN).is_err());
        assert!(m.quantize(f64::INFINITY).is_err());
    }

    #[test]
    fn paper_mapper_compresses_high_codes() {
        let ideal = WeightMapper::ideal(4).unwrap();
        let paper = WeightMapper::paper(4).unwrap();
        let wi = ideal.quantize(1.0).unwrap().magnitude;
        let wp = paper.quantize(1.0).unwrap().magnitude;
        assert!(wp < wi, "compressed full-scale {wp} < ideal {wi}");
        // Low codes nearly untouched.
        let li = ideal.quantize(0.1).unwrap().magnitude;
        let lp = paper.quantize(0.1).unwrap().magnitude;
        assert!((li - lp).abs() < 0.01);
    }

    #[test]
    fn fourth_bit_buys_little_under_mismatch() {
        // The mechanism behind Table II's [4:2] ≤ [3:2]: with an ideal
        // converter the 4th bit roughly halves the worst-case error, but
        // under AWC compression it buys almost nothing — the extra levels
        // sit where the ladder cannot separate them.
        let e3 = WeightMapper::paper(3).unwrap().worst_case_error();
        let e4 = WeightMapper::paper(4).unwrap().worst_case_error();
        let i3 = WeightMapper::ideal(3).unwrap().worst_case_error();
        let i4 = WeightMapper::ideal(4).unwrap().worst_case_error();
        let ideal_gain = (i3 - i4) / i3; // ≈ 53%
        let paper_gain = (e3 - e4) / e3; // ≈ 11%
        assert!(i4 < i3, "ideal 4-bit must improve on ideal 3-bit");
        assert!(
            paper_gain < 0.5 * ideal_gain,
            "mismatch should erase most of the 4th bit's benefit: \
             paper gain {paper_gain:.3} vs ideal gain {ideal_gain:.3}"
        );
    }

    #[test]
    fn quantize_all_preserves_order() {
        let m = WeightMapper::ideal(4).unwrap();
        let ws = [0.1, -0.5, 0.9];
        let mapped = m.quantize_all(&ws).unwrap();
        assert_eq!(mapped.len(), 3);
        for (w, q) in ws.iter().zip(&mapped) {
            assert!((q.value() - w).abs() < 0.05);
        }
    }

    #[test]
    fn one_bit_mapper_is_binary() {
        let m = WeightMapper::ideal(1).unwrap();
        assert_eq!(m.levels(), &[0.0, 1.0]);
        assert_eq!(m.quantize(0.4).unwrap().code, 0);
        assert_eq!(m.quantize(0.6).unwrap().code, 1);
    }

    #[test]
    fn fabricated_mapper_close_to_nominal() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let ladder = AwcLadder::fabricate(
            AwcParams {
                bits: 4,
                model: AwcModel::paper_mismatch(),
                ..AwcParams::paper_default()
            },
            &mut rng,
        )
        .unwrap();
        let fab = WeightMapper::from_ladder(ladder).unwrap();
        let nom = WeightMapper::paper(4).unwrap();
        for code in 0..16usize {
            assert!((fab.levels()[code] - nom.levels()[code]).abs() < 0.1);
        }
    }

    proptest! {
        #[test]
        fn quantisation_error_bounded_for_ideal(w in -1.0..=1.0f64, bits in 1u8..=4) {
            let m = WeightMapper::ideal(bits).unwrap();
            let q = m.quantize(w).unwrap();
            let lsb = 1.0 / f64::from((1u16 << bits) - 1);
            prop_assert!((q.value() - w).abs() <= 0.5 * lsb + 1e-12);
        }

        #[test]
        fn magnitudes_in_unit_interval(w in -1.0..=1.0f64, bits in 1u8..=4) {
            let m = WeightMapper::paper(bits).unwrap();
            let q = m.quantize(w).unwrap();
            prop_assert!((0.0..=1.0).contains(&q.magnitude));
        }
    }
}
