//! Illumination frames and their ternary-encoded counterparts.

use oisa_device::vcsel::TernaryLevel;
use serde::{Deserialize, Serialize};

use crate::{Result, SensorError};

/// A normalised illumination map: one `f64 ∈ [0, 1]` per pixel, row-major.
///
/// `0.0` is darkness, `1.0` saturates the photodiode within the exposure.
/// Conventional 8-bit images convert via [`Frame::from_bytes`].
///
/// # Examples
///
/// ```
/// use oisa_sensor::Frame;
///
/// # fn main() -> Result<(), oisa_sensor::SensorError> {
/// let f = Frame::from_bytes(2, 2, &[0, 128, 255, 64])?;
/// assert!((f.get(0, 1) - 128.0 / 255.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Frame {
    /// Builds a frame from row-major samples.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] when the dimensions are
    /// zero, don't match the data length, or any sample falls outside
    /// `[0, 1]`.
    pub fn new(width: usize, height: usize, data: Vec<f64>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(SensorError::InvalidParameter(
                "frame dimensions must be positive".into(),
            ));
        }
        if data.len() != width * height {
            return Err(SensorError::InvalidParameter(format!(
                "expected {} samples, got {}",
                width * height,
                data.len()
            )));
        }
        if let Some(bad) = data.iter().find(|v| !(0.0..=1.0).contains(*v)) {
            return Err(SensorError::InvalidParameter(format!(
                "illumination {bad} outside [0, 1]"
            )));
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// A uniform frame at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for invalid dimensions or
    /// `level` outside `[0, 1]`.
    pub fn constant(width: usize, height: usize, level: f64) -> Result<Self> {
        Self::new(width, height, vec![level; width * height])
    }

    /// Converts an 8-bit grayscale image (`0..=255`, row-major).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] when the dimensions don't
    /// match the byte count.
    pub fn from_bytes(width: usize, height: usize, bytes: &[u8]) -> Result<Self> {
        let data = bytes.iter().map(|&b| f64::from(b) / 255.0).collect();
        Self::new(width, height, data)
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Illumination at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.data[row * self.width + col]
    }

    /// Row-major samples.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mean illumination.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }
}

/// A ternary-encoded frame: the VAM's output, one [`TernaryLevel`] per
/// pixel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TernaryFrame {
    width: usize,
    height: usize,
    data: Vec<TernaryLevel>,
}

impl TernaryFrame {
    /// Builds from row-major levels.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::InvalidParameter`] for inconsistent
    /// dimensions.
    pub fn new(width: usize, height: usize, data: Vec<TernaryLevel>) -> Result<Self> {
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(SensorError::InvalidParameter(
                "ternary frame dimensions inconsistent".into(),
            ));
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Level at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> TernaryLevel {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.data[row * self.width + col]
    }

    /// Row-major levels.
    #[must_use]
    pub fn as_slice(&self) -> &[TernaryLevel] {
        &self.data
    }

    /// Numeric view (0/1/2 per pixel) for the behavioural NN path.
    #[must_use]
    pub fn to_values(&self) -> Vec<u8> {
        self.data.iter().map(|l| l.value()).collect()
    }

    /// Histogram of levels `(zeros, ones, twos)`.
    #[must_use]
    pub fn histogram(&self) -> (usize, usize, usize) {
        let mut h = (0, 0, 0);
        for l in &self.data {
            match l {
                TernaryLevel::Zero => h.0 += 1,
                TernaryLevel::One => h.1 += 1,
                TernaryLevel::Two => h.2 += 1,
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_construction_validates() {
        assert!(Frame::new(0, 4, vec![]).is_err());
        assert!(Frame::new(2, 2, vec![0.0; 3]).is_err());
        assert!(Frame::new(2, 2, vec![0.0, 0.5, 1.0, 1.5]).is_err());
        assert!(Frame::new(2, 2, vec![0.0, 0.5, 1.0, -0.1]).is_err());
        assert!(Frame::new(2, 2, vec![0.0, 0.5, 1.0, 1.0]).is_ok());
    }

    #[test]
    fn byte_conversion_scales() {
        let f = Frame::from_bytes(1, 3, &[0, 255, 51]).unwrap();
        assert_eq!(f.get(0, 0), 0.0);
        assert_eq!(f.get(1, 0), 1.0);
        assert!((f.get(2, 0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn indexing_is_row_major() {
        let f = Frame::new(3, 2, vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
        assert!((f.get(0, 2) - 0.2).abs() < 1e-12);
        assert!((f.get(1, 0) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn out_of_bounds_panics() {
        let f = Frame::constant(2, 2, 0.5).unwrap();
        let _ = f.get(2, 0);
    }

    #[test]
    fn mean_of_constant() {
        let f = Frame::constant(4, 4, 0.25).unwrap();
        assert!((f.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ternary_frame_histogram() {
        use TernaryLevel::{One, Two, Zero};
        let t = TernaryFrame::new(2, 2, vec![Zero, One, Two, Two]).unwrap();
        assert_eq!(t.histogram(), (1, 1, 2));
        assert_eq!(t.to_values(), vec![0, 1, 2, 2]);
    }

    #[test]
    fn ternary_frame_validates() {
        assert!(TernaryFrame::new(2, 2, vec![TernaryLevel::Zero; 3]).is_err());
        assert!(TernaryFrame::new(0, 2, vec![]).is_err());
    }

    proptest! {
        #[test]
        fn from_bytes_round_trip_bounds(bytes in proptest::collection::vec(0u8..=255, 16)) {
            let f = Frame::from_bytes(4, 4, &bytes).unwrap();
            for v in f.as_slice() {
                prop_assert!((0.0..=1.0).contains(v));
            }
            prop_assert!((f.mean() - bytes.iter().map(|&b| f64::from(b) / 255.0).sum::<f64>() / 16.0).abs() < 1e-9);
        }
    }
}
