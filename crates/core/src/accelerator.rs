//! The end-to-end accelerator: imager → VAM → OPC → VOM.
//!
//! [`OisaAccelerator::convolve_frame`] runs the *physical* path the paper
//! describes: expose the frame, threshold each pixel into a ternary VCSEL
//! drive, multiply against ring-held weights wavelength-by-wavelength,
//! subtract on the balanced photodetectors, and (for 5×5/7×7 kernels)
//! re-aggregate per-arm partial sums in the VOM. Everything is energy-
//! and latency-accounted through the controller and mapping plan.

use oisa_device::awc::{AwcModel, AwcParams};
use oisa_device::noise::{NoiseConfig, NoiseSource};
use oisa_memory::bank::KernelBank;
use oisa_optics::opc::{KernelSize, Opc, OpcConfig};
use oisa_optics::vom::{Vom, VomConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;
use oisa_sensor::imager::{Imager, ImagerConfig};
use oisa_sensor::vam::{Vam, VamConfig};
use oisa_units::Joule;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, ControllerTiming, Timeline};
use crate::mapping::{assign_slots, ConvWorkload, MappingPlan};
use crate::{CoreError, Result};

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OisaConfig {
    /// Imager (dimensions + pixel design + frame rate).
    pub imager: ImagerConfig,
    /// Optical core structure.
    pub opc: OpcConfig,
    /// Activation modulator.
    pub vam: VamConfig,
    /// Output modulator.
    pub vom: VomConfig,
    /// Controller timing.
    pub timing: ControllerTiming,
    /// Weight bit-width (1–4).
    pub weight_bits: u8,
    /// AWC fidelity (ideal vs. mismatch).
    pub awc_model: AwcModel,
    /// Optical noise intensities.
    pub noise: NoiseConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl OisaConfig {
    /// The paper configuration at `width × height` pixels.
    #[must_use]
    pub fn paper_default(width: usize, height: usize) -> Self {
        Self {
            imager: ImagerConfig::paper_default(width, height),
            opc: OpcConfig::paper_default(),
            vam: VamConfig::paper_default(),
            vom: VomConfig::paper_default(),
            timing: ControllerTiming::paper_default(),
            weight_bits: 4,
            awc_model: AwcModel::paper_mismatch(),
            noise: NoiseConfig::paper_default(),
            seed: 0,
        }
    }

    /// A small, fast configuration for tests and doctests: 16×16 imager,
    /// 4-bank OPC, noiseless, ideal AWC.
    #[must_use]
    pub fn small_test() -> Self {
        let mut cfg = Self::paper_default(16, 16);
        cfg.opc.banks = 4;
        cfg.opc.columns = 2;
        cfg.opc.awc_units = 10;
        cfg.noise = NoiseConfig::noiseless();
        cfg.awc_model = AwcModel::Ideal;
        cfg
    }
}

impl Default for OisaConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// Energy breakdown of one convolved frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Pixel exposure and readout.
    pub sensing: Joule,
    /// Sense-amplifier decisions plus VCSEL symbols.
    pub encoding: Joule,
    /// Ring tuning (weight mapping), all passes.
    pub tuning: Joule,
    /// Optical compute (light absorbed at the detectors) plus ring hold.
    pub compute: Joule,
    /// VOM aggregation and re-modulation.
    pub aggregation: Joule,
    /// Kernel-bank accesses.
    pub memory: Joule,
}

impl EnergyReport {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> Joule {
        self.sensing + self.encoding + self.tuning + self.compute + self.aggregation + self.memory
    }
}

/// Output of [`OisaAccelerator::convolve_frame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvolutionReport {
    /// One feature map per kernel, row-major `out_h × out_w`.
    pub output: Vec<Vec<f32>>,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
    /// The placement used.
    pub plan: MappingPlan,
    /// Phase latencies.
    pub timeline: Timeline,
    /// Energy breakdown.
    pub energy: EnergyReport,
}

/// The assembled accelerator.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct OisaAccelerator {
    config: OisaConfig,
    imager: Imager,
    vam: Vam,
    opc: Opc,
    vom: Vom,
    bank: KernelBank,
    mapper: WeightMapper,
    noise: NoiseSource,
    controller: Controller,
}

impl OisaAccelerator {
    /// Builds the accelerator from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates substrate construction failures.
    pub fn new(config: OisaConfig) -> Result<Self> {
        let awc_params = AwcParams {
            bits: config.weight_bits,
            model: config.awc_model,
            ..AwcParams::paper_default()
        };
        let ladder = oisa_device::awc::AwcLadder::ideal(awc_params)?;
        let mapper = WeightMapper::from_ladder(ladder)?;
        Ok(Self {
            imager: Imager::new(config.imager)?,
            vam: Vam::new(config.vam)?,
            opc: Opc::new(config.opc)?,
            vom: Vom::new(config.vom)?,
            bank: KernelBank::new(45, config.weight_bits, config.opc.total_rings())?,
            mapper,
            noise: NoiseSource::seeded(config.seed, config.noise),
            controller: Controller::new(config.timing),
            config,
        })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &OisaConfig {
        &self.config
    }

    /// The weight mapper (AWC → ring level tables) in use — shared with
    /// the behavioural deployment path so both quantise identically.
    #[must_use]
    pub fn mapper(&self) -> &WeightMapper {
        &self.mapper
    }

    /// Convolves a captured frame with `kernels` (each `k²` weights,
    /// row-major) at stride 1, running the full optical path.
    ///
    /// Kernels may use any float range; they are normalised per call by
    /// the joint maximum magnitude (per-tensor scaling, as the deployment
    /// path does) and the outputs are scaled back.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for empty/ill-sized kernels.
    /// * [`CoreError::Unmappable`] for unsupported kernel sizes.
    /// * Substrate errors from the optical fabric.
    pub fn convolve_frame(
        &mut self,
        frame: &Frame,
        kernels: &[Vec<f32>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        if kernels.is_empty() {
            return Err(CoreError::InvalidParameter("no kernels supplied".into()));
        }
        if kernels.iter().any(|kn| kn.len() != k * k) {
            return Err(CoreError::InvalidParameter(format!(
                "every kernel must have {} weights",
                k * k
            )));
        }
        let ks = KernelSize::from_k(k).map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: frame.height(),
            input_w: frame.width(),
            stride: 1,
        };
        let plan = MappingPlan::compute(&workload, &self.config.opc)?;
        let (oh, ow) = workload.output_size();

        // Sense + encode.
        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;

        // Per-kernel weight normalisation: each kernel's arm carries
        // its own receiver gain, so every kernel uses its full dynamic
        // range (this is what keeps 1-bit weights usable).
        let scales: Vec<f32> = kernels
            .iter()
            .map(|kn| {
                kn.iter()
                    .fold(0.0f32, |m, w| m.max(w.abs()))
                    .max(f32::MIN_POSITIVE)
            })
            .collect();

        let mut energy = EnergyReport {
            sensing: capture.energy,
            encoding: encoded.total_energy(),
            ..EnergyReport::default()
        };
        let mut output = vec![vec![0.0f32; oh * ow]; kernels.len()];

        let slots_per_pass = plan.slots_per_pass;
        let mut kernel_index = 0usize;
        while kernel_index < kernels.len() {
            let pass_kernels =
                &kernels[kernel_index..(kernel_index + slots_per_pass).min(kernels.len())];
            let slots = assign_slots(pass_kernels.len(), ks, &self.config.opc)?;
            // Map this pass's weights (bank store + ring tuning).
            for (pk, (kn, &(bank, first_arm))) in
                pass_kernels.iter().zip(&slots).enumerate()
            {
                let scale = scales[kernel_index + pk];
                let normalised: Vec<f64> = kn.iter().map(|&w| f64::from(w / scale)).collect();
                let codes: Vec<u16> = normalised
                    .iter()
                    .map(|&w| self.mapper.quantize(w).map(|m| m.code))
                    .collect::<oisa_optics::Result<Vec<u16>>>()?;
                let offset = (bank * oisa_optics::bank::RINGS_PER_BANK
                    + first_arm * oisa_optics::arm::RINGS_PER_ARM)
                    % self.bank.len();
                self.bank.store(offset, &codes)?;
                self.opc.load_kernel(bank, first_arm, &normalised, &self.mapper)?;
            }
            energy.tuning += self.opc.tuning_energy();

            // Compute all positions for this pass's kernels (slots are in
            // kernel order).
            for oy in 0..oh {
                for ox in 0..ow {
                    let window = gather_window(&encoded.optical, frame.width(), oy, ox, k);
                    for (slot_idx, &(bank, first_arm)) in slots.iter().enumerate() {
                        let value =
                            self.evaluate_kernel(bank, first_arm, &window, ks, &mut energy)?;
                        output[kernel_index + slot_idx][oy * ow + ox] =
                            (value * f64::from(scales[kernel_index + slot_idx])) as f32;
                    }
                }
            }
            kernel_index += pass_kernels.len();
        }

        // Kernel-bank access energy.
        energy.memory = self.bank.total_energy();
        self.bank.reset_counters();

        // Timeline from the controller program.
        let program = self
            .controller
            .frame_program(&plan, (oh * ow * kernels.len()) as u64);
        let timeline = self.controller.execute(&program)?;

        Ok(ConvolutionReport {
            output,
            out_h: oh,
            out_w: ow,
            plan,
            timeline,
            energy,
        })
    }

    /// Convolves a multi-channel input (e.g. RGB): one [`Frame`] per
    /// input channel, one kernel *plane* per (output, input) channel
    /// pair. Per-channel partial feature maps are accumulated through
    /// the VOM, as the paper's first-layer mapping does for
    /// multi-channel CNNs.
    ///
    /// `kernels[oc][ic]` holds the `k²` weights of output channel `oc`
    /// applied to input channel `ic`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for empty inputs or mismatched
    ///   channel counts/shapes.
    /// * Substrate errors from the optical fabric.
    pub fn convolve_channels(
        &mut self,
        frames: &[Frame],
        kernels: &[Vec<Vec<f32>>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        if frames.is_empty() || kernels.is_empty() {
            return Err(CoreError::InvalidParameter(
                "need at least one input channel and one kernel".into(),
            ));
        }
        let in_ch = frames.len();
        if kernels.iter().any(|planes| planes.len() != in_ch) {
            return Err(CoreError::InvalidParameter(format!(
                "every kernel needs {in_ch} planes (one per input channel)"
            )));
        }
        let mut combined: Option<ConvolutionReport> = None;
        for (ic, frame) in frames.iter().enumerate() {
            let planes: Vec<Vec<f32>> = kernels.iter().map(|kn| kn[ic].clone()).collect();
            let partial = self.convolve_frame(frame, &planes, k)?;
            combined = Some(match combined {
                None => partial,
                Some(mut acc) => {
                    // Electrical accumulation of per-channel partial maps
                    // in the VOM.
                    for (dst, src) in acc.output.iter_mut().zip(&partial.output) {
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += *s;
                        }
                    }
                    acc.energy.sensing += partial.energy.sensing;
                    acc.energy.encoding += partial.energy.encoding;
                    acc.energy.tuning += partial.energy.tuning;
                    acc.energy.compute += partial.energy.compute;
                    acc.energy.memory += partial.energy.memory;
                    // One VOM accumulation per output value per extra
                    // channel.
                    let adds = acc.output.len() * acc.out_h * acc.out_w;
                    acc.energy.aggregation += partial.energy.aggregation
                        + self.vom.config().accumulate_energy * adds as f64;
                    acc.timeline.capture += partial.timeline.capture;
                    acc.timeline.mapping += partial.timeline.mapping;
                    acc.timeline.compute += partial.timeline.compute;
                    acc.timeline.transmit += partial.timeline.transmit;
                    acc.timeline.control += partial.timeline.control;
                    acc
                }
            });
        }
        combined.ok_or_else(|| CoreError::InvalidParameter("no channels convolved".into()))
    }

    /// Executes a dense (MLP) first layer on a captured frame: the frame
    /// is sensed and ternary-encoded, then each of the `rows × (w·h)`
    /// weight rows is chunked across arms and VOM-aggregated (paper
    /// §III-A's MLP path).
    ///
    /// # Errors
    ///
    /// Propagates sensing, shape and fabric failures.
    pub fn dense_layer(
        &mut self,
        frame: &Frame,
        matrix: &[f32],
        rows: usize,
    ) -> Result<crate::mlp::MatVecReport> {
        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;
        let cols = encoded.optical.len();
        crate::mlp::matvec(
            &mut self.opc,
            &self.vom,
            &self.mapper,
            matrix,
            rows,
            cols,
            &encoded.optical,
            &mut self.noise,
        )
    }

    /// Evaluates one kernel (possibly spanning several arms) on one
    /// activation window.
    fn evaluate_kernel(
        &mut self,
        bank: usize,
        first_arm: usize,
        window: &[f64],
        ks: KernelSize,
        energy: &mut EnergyReport,
    ) -> Result<f64> {
        let arms = ks.arms_per_kernel();
        if arms == 1 {
            let result = self
                .opc
                .compute_arm(bank, first_arm, window, &mut self.noise)?;
            energy.compute += result.optical_energy;
            Ok(result.value)
        } else {
            let mut partials = Vec::with_capacity(arms);
            for (i, chunk) in window.chunks(oisa_optics::arm::RINGS_PER_ARM).enumerate() {
                let r = self
                    .opc
                    .compute_arm(bank, first_arm + i, chunk, &mut self.noise)?;
                energy.compute += r.optical_energy;
                partials.push(r);
            }
            let agg = self.vom.accumulate(&partials)?;
            energy.aggregation += agg.energy;
            Ok(agg.value)
        }
    }
}

/// Extracts the `k×k` activation window at output position `(oy, ox)`
/// from a row-major optical frame.
fn gather_window(optical: &[f64], width: usize, oy: usize, ox: usize, k: usize) -> Vec<f64> {
    let mut window = Vec::with_capacity(k * k);
    for dy in 0..k {
        let row = (oy + dy) * width + ox;
        window.extend_from_slice(&optical[row..row + k]);
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> OisaAccelerator {
        OisaAccelerator::new(OisaConfig::small_test()).unwrap()
    }

    /// Reference float convolution with the same ternary front end.
    fn reference_conv(
        frame: &Frame,
        kernel: &[f32],
        k: usize,
        vam: &Vam,
        imager: &Imager,
    ) -> Vec<f32> {
        let capture = imager.expose(frame).unwrap();
        let encoded = vam.encode_capture(&capture).unwrap();
        let w = frame.width();
        let oh = frame.height() - k + 1;
        let ow = w - k + 1;
        let mut out = vec![0.0f32; oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f64;
                for dy in 0..k {
                    for dx in 0..k {
                        let a = encoded.optical[(oy + dy) * w + ox + dx];
                        acc += a * f64::from(kernel[dy * k + dx]);
                    }
                }
                out[oy * ow + ox] = acc as f32;
            }
        }
        out
    }

    #[test]
    fn optical_conv_matches_reference_3x3() {
        let mut accel = accel();
        let mut data = vec![0.2; 256];
        for (i, v) in data.iter_mut().enumerate() {
            *v = (0.2 + 0.75 * ((i % 7) as f64 / 7.0)).min(1.0);
        }
        let frame = Frame::new(16, 16, data).unwrap();
        let kernel: Vec<f32> = vec![0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let report = accel.convolve_frame(&frame, &[kernel.clone()], 3).unwrap();
        let reference = reference_conv(
            &frame,
            &kernel,
            3,
            &Vam::new(VamConfig::paper_default()).unwrap(),
            &Imager::new(ImagerConfig::paper_default(16, 16)).unwrap(),
        );
        assert_eq!(report.output[0].len(), reference.len());
        let max_dev = report.output[0]
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // 4-bit quantisation over a 9-element window.
        assert!(max_dev < 0.35, "max deviation {max_dev}");
    }

    #[test]
    fn multiple_kernels_produce_independent_maps() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.9).unwrap();
        let pos = vec![1.0f32; 9];
        let neg = vec![-1.0f32; 9];
        let report = accel.convolve_frame(&frame, &[pos, neg], 3).unwrap();
        assert_eq!(report.output.len(), 2);
        assert!(report.output[0][0] > 7.0);
        assert!(report.output[1][0] < -7.0);
    }

    #[test]
    fn five_by_five_kernel_uses_vom() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.9).unwrap();
        let kernel = vec![0.5f32; 25];
        let report = accel.convolve_frame(&frame, &[kernel], 5).unwrap();
        // Σ 0.5 × 1.0 over 25 taps ≈ 12.5 (ternary encode of 0.9 → 1.0).
        let v = report.output[0][0];
        assert!((v - 12.5).abs() < 1.5, "got {v}");
        assert!(report.energy.aggregation.get() > 0.0, "VOM must be used");
    }

    #[test]
    fn energy_report_phases_populated() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        let report = accel
            .convolve_frame(&frame, &[vec![0.5f32; 9]], 3)
            .unwrap();
        assert!(report.energy.sensing.get() > 0.0);
        assert!(report.energy.encoding.get() > 0.0);
        assert!(report.energy.tuning.get() > 0.0);
        assert!(report.energy.compute.get() > 0.0);
        assert!(report.energy.memory.get() > 0.0);
        assert!(report.energy.total().get() > report.energy.compute.get());
        assert!(report.timeline.total().get() > 0.0);
    }

    #[test]
    fn kernel_validation() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        assert!(accel.convolve_frame(&frame, &[], 3).is_err());
        assert!(accel
            .convolve_frame(&frame, &[vec![0.5f32; 8]], 3)
            .is_err());
        assert!(accel
            .convolve_frame(&frame, &[vec![0.5f32; 16]], 4)
            .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let frame = Frame::constant(16, 16, 0.7).unwrap();
        let kernel = vec![0.3f32; 9];
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 42;
        let mut a = OisaAccelerator::new(cfg).unwrap();
        let mut b = OisaAccelerator::new(cfg).unwrap();
        let ra = a.convolve_frame(&frame, &[kernel.clone()], 3).unwrap();
        let rb = b.convolve_frame(&frame, &[kernel], 3).unwrap();
        assert_eq!(ra.output, rb.output);
    }

    #[test]
    fn multichannel_convolution_sums_planes() {
        let mut accel = accel();
        // Two constant channels; kernels that sum each channel's window.
        let bright = Frame::constant(16, 16, 0.9).unwrap();
        let dark = Frame::constant(16, 16, 0.1).unwrap();
        // One output channel: plane 0 all +1, plane 1 all −1.
        let kernels = vec![vec![vec![1.0f32; 9], vec![-1.0f32; 9]]];
        let report = accel
            .convolve_channels(&[bright.clone(), dark], &kernels, 3)
            .unwrap();
        // Channel encodings: 0.9 → 1.0 optical, 0.1 → floor ≈ 0.022.
        // Output ≈ 9·1.0 − 9·0.022 ≈ 8.8.
        let v = report.output[0][0];
        assert!((v - 8.8).abs() < 0.5, "got {v}");
        // Aggregation energy must include the cross-channel adds.
        assert!(report.energy.aggregation.get() > 0.0);

        // Single-channel sanity: same kernels on one channel only.
        let single = accel
            .convolve_frame(&bright, &[vec![1.0f32; 9]], 3)
            .unwrap();
        assert!(single.output[0][0] > 8.0);
    }

    #[test]
    fn multichannel_validation() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        // Kernel with wrong plane count.
        let kernels = vec![vec![vec![1.0f32; 9]]]; // 1 plane for 2 channels
        assert!(accel
            .convolve_channels(&[frame.clone(), frame.clone()], &kernels, 3)
            .is_err());
        assert!(accel.convolve_channels(&[], &[], 3).is_err());
    }

    #[test]
    fn multi_pass_when_kernels_exceed_slots() {
        // small_test has 4 banks × 5 arms = 20 slots; 25 kernels → 2
        // passes.
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.6).unwrap();
        let kernels: Vec<Vec<f32>> = (0..25)
            .map(|i| vec![(i as f32 / 25.0) - 0.5; 9])
            .collect();
        let report = accel.convolve_frame(&frame, &kernels, 3).unwrap();
        assert_eq!(report.plan.passes, 2);
        assert_eq!(report.output.len(), 25);
        // Kernel 0 (all −0.5) and kernel 24 (all +0.46) must differ in
        // sign.
        assert!(report.output[0][0] < 0.0);
        assert!(report.output[24][0] > 0.0);
    }
}
