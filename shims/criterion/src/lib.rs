//! Offline shim for `criterion`.
//!
//! The workspace builds without network access, so the real `criterion`
//! is unavailable. This shim keeps `cargo bench` working with the same
//! bench sources: it runs each benchmark long enough to estimate a
//! median iteration time and prints one line per benchmark. There are no
//! statistical reports, plots or baselines — use `perf_json` (in the
//! `oisa-bench` crate) for machine-readable numbers.

use std::time::{Duration, Instant};

/// How a batched setup's cost relates to the measured routine (ignored
/// by the shim beyond API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate a batch size so one sample takes ≥ ~1 ms.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.samples.push(elapsed / batch as u32);
                break;
            }
            batch *= 4;
        }
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Benchmark registry/driver (mirrors the used `criterion::Criterion`
/// API).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let median = bencher.median();
        println!("bench: {name:<40} median {median:>12.3?}");
        self
    }
}

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group (both the struct-config and plain forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
