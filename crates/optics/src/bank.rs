//! A bank: five arms, fifty microrings (paper Fig. 6).

use oisa_device::noise::NoiseModel;
use oisa_units::{Joule, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::arm::{Arm, ArmConfig, ArmSnapshot, MacResult, RINGS_PER_ARM};
use crate::weights::WeightMapper;
use crate::{OpticsError, Result};

/// Arms per bank (paper §III-B).
pub const ARMS_PER_BANK: usize = 5;

/// Microrings per bank.
pub const RINGS_PER_BANK: usize = ARMS_PER_BANK * RINGS_PER_ARM;

/// A bank of five arms sharing a column's optical distribution network.
///
/// # Examples
///
/// ```
/// use oisa_optics::bank::{Bank, ARMS_PER_BANK};
/// use oisa_optics::arm::ArmConfig;
/// use oisa_optics::weights::WeightMapper;
///
/// # fn main() -> Result<(), oisa_optics::OpticsError> {
/// let mut bank = Bank::new(ArmConfig::paper_default())?;
/// let mapper = WeightMapper::ideal(4)?;
/// bank.load_arm(0, &[0.5; 9], &mapper)?;
/// assert_eq!(bank.loaded_arm_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bank {
    arms: Vec<Arm>,
    loaded: Vec<bool>,
}

impl Bank {
    /// Builds a bank of [`ARMS_PER_BANK`] idle arms.
    ///
    /// # Errors
    ///
    /// Propagates arm construction failures.
    pub fn new(config: ArmConfig) -> Result<Self> {
        let arms = (0..ARMS_PER_BANK)
            .map(|_| Arm::new(config))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            arms,
            loaded: vec![false; ARMS_PER_BANK],
        })
    }

    /// Shared arm reference.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index.
    pub fn arm(&self, index: usize) -> Result<&Arm> {
        self.arms
            .get(index)
            .ok_or_else(|| OpticsError::IndexOutOfRange(format!("arm {index}")))
    }

    /// Immutable snapshot of arm `index` (see [`Arm::snapshot`]): the
    /// captured state keeps evaluating bit-identically even after the
    /// arm is re-tuned for a later pass.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index.
    pub fn snapshot_arm(&self, index: usize) -> Result<ArmSnapshot> {
        Ok(self.arm(index)?.snapshot())
    }

    /// Loads `weights` into arm `index`.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index and
    /// propagates arm-level failures.
    pub fn load_arm(&mut self, index: usize, weights: &[f64], mapper: &WeightMapper) -> Result<()> {
        let arm = self
            .arms
            .get_mut(index)
            .ok_or_else(|| OpticsError::IndexOutOfRange(format!("arm {index}")))?;
        arm.load_weights(weights, mapper)?;
        self.loaded[index] = true;
        Ok(())
    }

    /// Marks an arm idle (weights cleared at next load; rings keep their
    /// tuning until then, as in hardware).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::IndexOutOfRange`] for an invalid index.
    pub fn unload_arm(&mut self, index: usize) -> Result<()> {
        if index >= ARMS_PER_BANK {
            return Err(OpticsError::IndexOutOfRange(format!("arm {index}")));
        }
        self.loaded[index] = false;
        Ok(())
    }

    /// Number of arms currently holding kernels.
    #[must_use]
    pub fn loaded_arm_count(&self) -> usize {
        self.loaded.iter().filter(|&&l| l).count()
    }

    /// Evaluates every loaded arm against its slice of `activations`
    /// (one activation vector per loaded arm, in arm order).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] when the number of
    /// activation vectors differs from the loaded arm count.
    pub fn compute<N: NoiseModel>(
        &self,
        activations: &[Vec<f64>],
        noise: &mut N,
    ) -> Result<Vec<MacResult>> {
        let loaded_indices: Vec<usize> = (0..ARMS_PER_BANK).filter(|&i| self.loaded[i]).collect();
        if activations.len() != loaded_indices.len() {
            return Err(OpticsError::InvalidParameter(format!(
                "{} activation vectors for {} loaded arms",
                activations.len(),
                loaded_indices.len()
            )));
        }
        loaded_indices
            .iter()
            .zip(activations)
            .map(|(&i, a)| self.arms[i].mac(a, noise))
            .collect()
    }

    /// Static heater power of all arms.
    #[must_use]
    pub fn holding_power(&self) -> Watt {
        self.arms.iter().map(Arm::holding_power).sum()
    }

    /// Total tuning energy of the most recent loads.
    #[must_use]
    pub fn tuning_energy(&self) -> Joule {
        self.arms.iter().map(Arm::tuning_energy).sum()
    }

    /// Worst-case tuning latency across arms (they settle in parallel).
    #[must_use]
    pub fn tuning_latency(&self) -> Second {
        self.arms
            .iter()
            .map(Arm::tuning_latency)
            .fold(Second::ZERO, Second::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};

    fn mapper() -> WeightMapper {
        WeightMapper::ideal(4).unwrap()
    }

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    #[test]
    fn bank_has_five_arms_and_fifty_rings() {
        assert_eq!(ARMS_PER_BANK, 5);
        assert_eq!(RINGS_PER_BANK, 50);
    }

    #[test]
    fn load_and_compute_multiple_kernels() {
        let mut bank = Bank::new(ArmConfig::paper_default()).unwrap();
        let m = mapper();
        bank.load_arm(0, &[1.0; 9], &m).unwrap();
        bank.load_arm(2, &[-1.0; 9], &m).unwrap();
        assert_eq!(bank.loaded_arm_count(), 2);
        let acts = vec![vec![1.0; 9], vec![1.0; 9]];
        let out = bank.compute(&acts, &mut quiet()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].value > 8.0); // Σ 1·1 over 9 channels ≈ 9
        assert!(out[1].value < -8.0);
    }

    #[test]
    fn activation_count_must_match_loaded_arms() {
        let mut bank = Bank::new(ArmConfig::paper_default()).unwrap();
        bank.load_arm(0, &[0.5; 9], &mapper()).unwrap();
        let err = bank.compute(&[], &mut quiet()).unwrap_err();
        assert!(matches!(err, OpticsError::InvalidParameter(_)));
    }

    #[test]
    fn invalid_arm_index_rejected() {
        let mut bank = Bank::new(ArmConfig::paper_default()).unwrap();
        assert!(bank.load_arm(5, &[0.5; 9], &mapper()).is_err());
        assert!(bank.arm(5).is_err());
        assert!(bank.unload_arm(9).is_err());
    }

    #[test]
    fn unload_reduces_loaded_count() {
        let mut bank = Bank::new(ArmConfig::paper_default()).unwrap();
        bank.load_arm(1, &[0.5; 9], &mapper()).unwrap();
        bank.unload_arm(1).unwrap();
        assert_eq!(bank.loaded_arm_count(), 0);
    }

    #[test]
    fn power_and_energy_aggregate_over_arms() {
        let mut bank = Bank::new(ArmConfig::paper_default()).unwrap();
        let m = mapper();
        bank.load_arm(0, &[1.0; 9], &m).unwrap();
        let p1 = bank.holding_power();
        bank.load_arm(1, &[1.0; 9], &m).unwrap();
        let p2 = bank.holding_power();
        assert!(p2.get() > p1.get());
        assert!(bank.tuning_energy().get() > 0.0);
        assert!(bank.tuning_latency().get() > 0.0);
    }
}
