//! Experiment drivers behind the table/figure harness binaries.
//!
//! Each paper artefact has a binary in `src/bin/` that prints the same
//! rows/series the paper reports; the logic lives here so integration
//! tests can run reduced versions of the same experiments.
//!
//! | artefact | binary | driver |
//! |---|---|---|
//! | Fig. 1 (MR spectra) | `fig1_mr_spectrum` | [`fig1::spectrum_series`] |
//! | Fig. 4(b) (AWC transient) | `fig4b_awc_transient` | [`fig4b::awc_staircase`] |
//! | Fig. 8 (VAM thresholding) | `fig8_vam_transient` | [`fig8::vam_waveforms`] |
//! | Fig. 9 (power comparison) | `fig9_power` | [`fig9::power_sweep`] |
//! | Table I | `table1_comparison` | [`table1::build_table`] |
//! | Table II | `table2_accuracy` | [`table2::run_dataset`] |
//! | §IV throughput text | `throughput_efficiency` | [`headline::headline_numbers`] |
//! | design ablations | `ablation` | [`ablation::run_all`] |

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

pub mod ablation;
pub mod fig1;
pub mod fig4b;
pub mod fig8;
pub mod fig9;
pub mod gate;
pub mod headline;
pub mod table1;
pub mod table2;

/// Formats a Watt quantity as engineering text for table cells.
#[must_use]
pub fn fmt_watts(w: oisa_units::Watt) -> String {
    format!("{w:.3}")
}

/// Renders a simple ASCII horizontal bar scaled to `max`.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(0.01, 10.0, 10), "#");
    }

    #[test]
    fn fmt_watts_engineering() {
        assert_eq!(fmt_watts(oisa_units::Watt::from_milli(1.5)), "1.500 mW");
    }
}
