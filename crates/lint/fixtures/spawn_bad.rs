// Fixture: a bare thread::spawn outside the scheduler/backend layer.
use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {});
}
