// Fixture: the two float leaks the wire path must never contain —
// a tolerance-free float comparison and decimal text formatting.
pub fn merge_equal(x: f64) -> bool {
    x == 1.5
}

pub fn render(x: f64) -> String {
    format!("{x:.6}")
}
