//! A minimal transient circuit simulator for verifying OISA's analog blocks.
//!
//! The OISA paper validates its pixel front-end, sense-amplifier
//! thresholding and Approximate Weight Converter (AWC) with Cadence
//! Spectre/HSPICE transient simulations (paper Figs. 4(b) and 8). This crate
//! re-implements the minimum viable subset of such a simulator:
//!
//! * **Modified nodal analysis (MNA)** with dense LU factorisation —
//!   adequate for the <50-node circuits in the paper.
//! * **Backward-Euler** transient integration (A-stable, no ringing on the
//!   switched circuits used here) with **Newton–Raphson** iteration for the
//!   nonlinear square-law MOSFET model.
//! * Element library: resistors, capacitors, independent voltage/current
//!   sources (DC, pulse, piecewise-linear), voltage-controlled switches and
//!   level-1 MOSFETs.
//!
//! # Examples
//!
//! An RC low-pass driven by a step, checked against the analytic response:
//!
//! ```
//! use oisa_spice::{Circuit, TransientAnalysis, Waveform};
//! use oisa_units::{Farad, Ohm, Second};
//!
//! # fn main() -> Result<(), oisa_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.vsource("VIN", vin, Circuit::GND, Waveform::dc(1.0))?;
//! ckt.resistor("R1", vin, vout, Ohm::from_kilo(1.0))?;
//! ckt.capacitor("C1", vout, Circuit::GND, Farad::from_nano(1.0))?;
//!
//! let trace = TransientAnalysis::new(Second::from_micro(5.0), Second::from_nano(10.0))
//!     .run(&ckt)?;
//! let final_v = trace.voltage("out")?.last().copied().unwrap();
//! assert!((final_v - 1.0).abs() < 1e-2); // ≈ fully charged after 5 τ
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

mod circuit;
mod dc;
mod elements;
mod linalg;
mod trace;
mod transient;
mod waveform;

pub use circuit::{Circuit, NodeId};
pub use dc::{dc_operating_point, dc_sweep, OperatingPoint};
pub use elements::{MosParams, MosType, SwitchParams};
pub use trace::Trace;
pub use transient::TransientAnalysis;
pub use waveform::Waveform;

use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// An element parameter was non-physical (negative resistance, zero
    /// timestep, …). Carries a human-readable description.
    InvalidParameter(String),
    /// A node name was referenced that has never been declared.
    UnknownNode(String),
    /// Two elements were registered under the same name.
    DuplicateElement(String),
    /// The MNA matrix was singular — usually a floating node or a loop of
    /// ideal voltage sources.
    SingularMatrix,
    /// Newton iteration failed to converge at the given simulation time
    /// (seconds).
    NonConvergent { time: f64 },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            Self::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            Self::DuplicateElement(name) => write!(f, "duplicate element `{name}`"),
            Self::SingularMatrix => write!(f, "singular MNA matrix (floating node?)"),
            Self::NonConvergent { time } => {
                write!(f, "newton iteration failed to converge at t = {time:.3e} s")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpiceError>;
