//! One OPC arm: ten microrings, two waveguides, one balanced
//! photodetector.
//!
//! The arm is the unit of computation (paper Fig. 5(c)): the nine weights
//! of a 3×3 kernel occupy nine rings (the tenth is a spare / bias slot),
//! each ring weighting one WDM channel. Positive-sign rings sit on one
//! waveguide, negative-sign rings on the other; the BPD at the arm's end
//! subtracts the two accumulated powers, so the photocurrent *is* the
//! signed dot product.
//!
//! # Performance notes: the lane-accumulator determinism contract
//!
//! Every MAC path in this module — [`Arm::mac_indexed`] (the fused
//! fast path), [`Arm::mac`] (general [`NoiseModel`] evaluation) and
//! [`Arm::mac_reference`] (the pre-optimisation port) — accumulates
//! each detector rail into **[`LANES`] fixed lanes** (element `i`
//! lands in lane `i mod LANES`) and reduces them through one canonical
//! tree: `(l0 + l2) + (l1 + l3)`. Floating-point addition is not
//! associative, so the fold order is part of the wire-level
//! bit-identity guarantee: the parallel, sequential, batched, sharded,
//! TCP and serving engines all replay this exact tree and therefore
//! the exact same bits. Do not "simplify" the fold back to a single
//! accumulator, and never let a host vector width dictate a different
//! lane count — [`LANES`] is a contract constant, not a tuning knob.
//!
//! # Where vectorisation pays (and where it doesn't)
//!
//! Two MAC kernels share the lane contract:
//!
//! * **Per-window** ([`ArmSnapshot::mac_indexed`]): one output
//!   position, scalar SplitMix64 mixing, `activation == 0` skipped by
//!   an early `continue`. A zero's counters are positional (element
//!   `i` always owns `base + 2i`/`base + 2i + 1`), so skipping draws
//!   is bit-identical to drawing and multiplying by zero.
//! * **Across-window ×4** ([`ArmSnapshot::mac_indexed_x4`]): [`LANES`]
//!   consecutive output positions evaluate in lockstep against one
//!   [`StreamQuad`] — same counters, same weights, the streams differ
//!   only in key, so one batched key-pair mix
//!   (`mix64_key_pairs`, AVX2/AVX-512 dispatched when the `simd`
//!   cargo feature is on) yields both draws for all four windows. The
//!   vector kernels are pure integer code and the per-lane ziggurat
//!   finish performs the identical IEEE operations in the identical
//!   order as the scalar fallback, so toggling the feature, pinning
//!   `OISA_SIMD_TIER`, or mixing vector tiers across a sharded fleet
//!   never changes a single output bit — only wall-clock.
//!
//! Measured on the bench host (Skylake-SP-class, AVX-512 tier, paper
//! noise config, `cargo bench -p oisa_bench`): a 9-tap per-window MAC
//! runs ≈ 80–110 ns and the chained fold sits at ≈ 11 ns/ring
//! (`mac_core_{72,256,1024}_rings`, `perf_json`'s `mac_ns_per_ring`
//! block). The honest finding: **vector integer mixing does not beat
//! scalar mixing here.** A batch of 4 draws costs ≈ 42 ns vectorised
//! vs ≈ 15–23 ns as 4 scalar draws (`gaussian_at_lanes` vs
//! `gaussian_at_4_scalar`), because 64-bit vector multiplies are
//! microcoded/emulated on this tier while the three scalar `imul`s per
//! draw pipeline perfectly across 14+ independent draws, and the
//! scalar ziggurat finish dominates either way. At the frame level the
//! ×4 kernel also gives up the zero-skip (ternary windows are full of
//! exact zeros), so the engines stay on the per-window fold and ×4
//! measured ≈ 110–127 ns/window vs 78–110 ns — the batched kernel
//! remains available, tested bit-identical, for hosts with fast
//! `vpmullq`. Regenerate `bench/baseline.json` with `perf_json` after
//! touching anything in this file.

use oisa_device::mr::{Microring, MrDesign};
use oisa_device::noise::{NoiseModel, NoiseStream, StreamQuad};
use oisa_device::photodiode::{BalancedPhotodetector, PhotodiodeParams};
use oisa_device::simd::LANES;
use oisa_device::waveguide::{ChannelPlan, LossBudget, OpticalPath};
use oisa_units::{Joule, Meter, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::weights::{MappedWeight, WeightMapper};
use crate::{OpticsError, Result};

/// Number of microrings per arm (paper §III-B).
pub const RINGS_PER_ARM: usize = 10;

/// Arm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmConfig {
    /// Ring design used for every MR in the arm.
    pub ring: MrDesign,
    /// Detector at the arm output.
    pub detector: PhotodiodeParams,
    /// Loss budget for the waveguide run.
    pub losses: LossBudget,
    /// Physical arm length (sets propagation loss and time of flight).
    pub length: Meter,
    /// Per-channel optical input power at full activation.
    pub channel_power: Watt,
    /// Model inter-channel crosstalk: each ring's Lorentzian tail also
    /// attenuates its spectral neighbours. Costs one extra transmission
    /// evaluation per adjacent-channel pair.
    pub crosstalk: bool,
}

impl ArmConfig {
    /// Paper defaults: paper ring + detector + losses over a 500 µm arm
    /// with 200 µW per channel; crosstalk modelling on.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ring: MrDesign::paper_default(),
            detector: PhotodiodeParams::paper_default(),
            losses: LossBudget::paper_default(),
            length: Meter::from_micro(500.0),
            channel_power: Watt::from_micro(200.0),
            crosstalk: true,
        }
    }

    /// Paper defaults with crosstalk disabled (ideal-isolation ablation).
    #[must_use]
    pub fn no_crosstalk() -> Self {
        Self {
            crosstalk: false,
            ..Self::paper_default()
        }
    }
}

/// Result of one arm-level MAC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacResult {
    /// The signed dot product, in weight·activation units (loss-
    /// normalised).
    pub value: f64,
    /// BPD difference current before normalisation, amperes.
    pub raw_current: f64,
    /// Optical + detection latency of the evaluation.
    pub latency: Second,
    /// Optical energy consumed by this arm for one symbol.
    pub optical_energy: Joule,
}

/// Immutable snapshot of everything an arm-level MAC consumes: the
/// mapped weights, the precomputed per-ring gains, the detector and the
/// full-scale / dwell constants.
///
/// A snapshot is what lets evaluation outlive fabric mutation: the
/// batched convolution engine snapshots every pass's arms before the
/// next pass re-tunes the same physical rings, and the parallel dense
/// path evaluates rows against snapshots instead of serialising on
/// [`Bank::load_arm`](crate::bank::Bank::load_arm). Both MAC entry
/// points are bit-identical to their [`Arm`] counterparts — they share
/// the same inner evaluation, not a re-implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSnapshot {
    weights: Vec<MappedWeight>,
    ring_gain: Vec<f64>,
    detector: BalancedPhotodetector,
    per_channel_full: f64,
    channel_power: f64,
    dwell: Second,
}

impl ArmSnapshot {
    /// The weights captured by this snapshot.
    #[must_use]
    pub fn weights(&self) -> &[MappedWeight] {
        &self.weights
    }

    /// Fused fast-path MAC over counter-addressed noise — bit-identical
    /// to [`Arm::mac_indexed`] on the arm this snapshot was taken from.
    ///
    /// Activations must already be validated to `[0, 1]` by the caller.
    #[must_use]
    pub fn mac_indexed(&self, activations: &[f64], stream: &NoiseStream, base: u64) -> (f64, f64) {
        debug_assert!(activations.len() <= self.weights.len());
        mac_indexed_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.channel_power,
            self.dwell.get(),
            activations,
            stream,
            base,
        )
    }

    /// Across-window fused MAC: evaluates this snapshot's weight
    /// window against [`LANES`] activation windows in lockstep, one
    /// per lane of `quad` — bit-identical per window to
    /// [`ArmSnapshot::mac_indexed`] with `quad.lane(l)` as the stream.
    ///
    /// `activations` is element-major: `activations[i * LANES + l]`
    /// holds element `i` of window `l`, with `m` elements per window
    /// (`activations.len() == m * LANES`). Adjacent convolution output
    /// windows make this layout a cheap gather — element `i` of
    /// [`LANES`] consecutive windows are [`LANES`] consecutive frame
    /// pixels.
    ///
    /// Returns the per-window `(values, optical energies)`.
    #[must_use]
    pub fn mac_indexed_x4(
        &self,
        activations: &[f64],
        m: usize,
        quad: &StreamQuad,
        base: u64,
    ) -> ([f64; LANES], [f64; LANES]) {
        debug_assert_eq!(activations.len(), m * LANES);
        debug_assert!(m <= self.weights.len());
        mac_indexed_x4_core(&MacX4Args {
            weights: &self.weights,
            ring_gain: &self.ring_gain,
            detector: &self.detector,
            per_channel_full: self.per_channel_full,
            channel_power_w: self.channel_power,
            dwell_s: self.dwell.get(),
            activations,
            m,
            quad,
            base,
        })
    }

    /// General MAC through any [`NoiseModel`] — bit-identical to
    /// [`Arm::mac`] on the arm this snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Same contract as [`Arm::mac`].
    pub fn mac<N: NoiseModel>(&self, activations: &[f64], noise: &mut N) -> Result<MacResult> {
        validate_activation_window(self.weights.len(), activations)?;
        Ok(mac_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.channel_power,
            self.dwell,
            activations,
            noise,
        ))
    }
}

/// A single arm with its loaded weights.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    config: ArmConfig,
    rings: Vec<Microring>,
    weights: Vec<MappedWeight>,
    plan: ChannelPlan,
    detector: BalancedPhotodetector,
    /// Cached waveguide transmission from input to detector.
    path_transmission: f64,
    /// Total tuning energy spent loading the current weights.
    tuning_energy: Joule,
    /// Worst-case tuning latency of the last load.
    tuning_latency: Second,
    /// Per-ring crosstalk × waveguide gain, precomputed at
    /// [`Arm::load_weights`] time (it depends only on the loaded weights
    /// and the channel plan, never on activations).
    ring_gain: Vec<f64>,
    /// Full-scale photocurrent of one channel at weight and activation 1
    /// (`P_in · T_path · R`), precomputed at construction.
    per_channel_full: f64,
    /// Optical dwell per symbol: time of flight plus detector settling.
    dwell: Second,
}

impl Arm {
    /// Builds an idle arm with all rings parked (weight 0).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::Device`] when a sub-device rejects its
    /// parameters.
    pub fn new(config: ArmConfig) -> Result<Self> {
        // Spread the ten channels across the ring's free spectral range:
        // the spacing must exceed the worst-case weight detuning
        // (≈ 0.67 nm) plus guard band, or a fully-detuned ring parks on
        // its neighbour's channel.
        let plan = ChannelPlan::new(
            config.ring.resonance_wavelength,
            Meter::new(config.ring.free_spectral_range().get() / RINGS_PER_ARM as f64),
            RINGS_PER_ARM as u16,
        )?;
        let rings = (0..RINGS_PER_ARM)
            .map(|_| Microring::new(config.ring))
            .collect::<oisa_device::Result<Vec<_>>>()?;
        let detector = BalancedPhotodetector::new(config.detector)?;
        let path = OpticalPath::new(config.losses)?
            .with_length(config.length)
            .with_ring_passes((RINGS_PER_ARM - 1) as u32)
            .with_splitters(1);
        let path_transmission = path.transmission();
        let per_channel_full =
            config.channel_power.get() * path_transmission * config.detector.responsivity_a_per_w;
        let velocity = oisa_units::SPEED_OF_LIGHT_M_PER_S / config.ring.group_index;
        let dwell = Second::new(config.length.get() / velocity) + detector.settling_time();
        Ok(Self {
            config,
            rings,
            weights: Vec::new(),
            plan,
            detector,
            path_transmission,
            tuning_energy: Joule::ZERO,
            tuning_latency: Second::ZERO,
            ring_gain: Vec::new(),
            per_channel_full,
            dwell,
        })
    }

    /// Arm configuration.
    #[must_use]
    pub fn config(&self) -> &ArmConfig {
        &self.config
    }

    /// Currently loaded weights.
    #[must_use]
    pub fn weights(&self) -> &[MappedWeight] {
        &self.weights
    }

    /// Tuning energy spent by the last [`Arm::load_weights`].
    #[must_use]
    pub fn tuning_energy(&self) -> Joule {
        self.tuning_energy
    }

    /// Worst-case settling latency of the last load (rings tune in
    /// parallel).
    #[must_use]
    pub fn tuning_latency(&self) -> Second {
        self.tuning_latency
    }

    /// Static heater power holding the current weights.
    #[must_use]
    pub fn holding_power(&self) -> Watt {
        self.rings.iter().map(Microring::holding_power).sum()
    }

    /// Quantises `weights` through `mapper` and maps them onto the rings.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::CapacityExceeded`] when more than
    /// [`RINGS_PER_ARM`] weights are supplied, or a quantisation error.
    pub fn load_weights(&mut self, weights: &[f64], mapper: &WeightMapper) -> Result<()> {
        if weights.len() > RINGS_PER_ARM {
            return Err(OpticsError::CapacityExceeded {
                capacity: RINGS_PER_ARM,
                requested: weights.len(),
            });
        }
        let mapped = mapper.quantize_all(weights)?;
        let mut energy = Joule::ZERO;
        let mut latency = Second::ZERO;
        for (i, ring) in self.rings.iter_mut().enumerate() {
            let magnitude = mapped.get(i).map_or(0.0, |m| m.magnitude);
            // Ring transmission encodes the magnitude; parked rings
            // (weight 0) sit on resonance and block their channel.
            let floor = ring.design().intrinsic_loss;
            let target = floor + (0.95 - floor) * magnitude;
            let detuning = ring.detuning_for_transmission(target)?;
            let outcome = ring.apply_detuning(detuning);
            energy += outcome.energy;
            latency = latency.max(outcome.latency);
        }
        self.weights = mapped;
        self.tuning_energy = energy;
        self.tuning_latency = latency;
        // Crosstalk and waveguide attenuation depend only on the loaded
        // weights (ring detunings) and the channel spacing, so fold them
        // into one per-ring gain here instead of re-evaluating two
        // Lorentzian tails per channel on every MAC.
        let spacing = self.plan.spacing();
        self.ring_gain = (0..self.weights.len())
            .map(|i| {
                let mut xt = 1.0;
                if self.config.crosstalk {
                    if i > 0 {
                        xt *= self.rings[i - 1].crosstalk_transmission(spacing);
                    }
                    if i + 1 < self.weights.len() {
                        xt *= self.rings[i + 1].crosstalk_transmission(-spacing);
                    }
                }
                xt * self.path_transmission
            })
            .collect();
        Ok(())
    }

    /// Evaluates the signed dot product of the loaded weights with
    /// `activations` (normalised optical amplitudes in `[0, 1]`, one per
    /// loaded weight).
    ///
    /// The chain models: VCSEL RIN on each channel → ring transmission
    /// (with drift) → waveguide losses → accumulation on the +/−
    /// waveguides → BPD subtraction with detector noise → loss-normalised
    /// signed result. Crosstalk and waveguide attenuation come from the
    /// per-ring gains precomputed at [`Arm::load_weights`] time.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] when activation count
    /// exceeds the loaded weight count or values leave `[0, 1]`; all
    /// activations are validated up front, so the error names the first
    /// offending index and no partial evaluation happens.
    pub fn mac<N: NoiseModel>(&self, activations: &[f64], noise: &mut N) -> Result<MacResult> {
        self.validate_activations(activations)?;
        Ok(mac_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.config.channel_power.get(),
            self.dwell,
            activations,
            noise,
        ))
    }

    /// Captures the compute-relevant state of this arm as an immutable
    /// [`ArmSnapshot`]: the mapped weights, the precomputed per-ring
    /// gains and the detector / full-scale / dwell constants. Evaluating
    /// the snapshot is bit-identical to evaluating the arm, and stays
    /// valid after the arm is re-tuned with new weights.
    #[must_use]
    pub fn snapshot(&self) -> ArmSnapshot {
        ArmSnapshot {
            weights: self.weights.clone(),
            ring_gain: self.ring_gain.clone(),
            detector: self.detector,
            per_channel_full: self.per_channel_full,
            channel_power: self.config.channel_power.get(),
            dwell: self.dwell,
        }
    }

    /// Fused fast-path MAC for the accelerator's inner loop: draws are
    /// addressed on `stream` by explicit counters starting at `base`
    /// (channel `i` uses `base + 2i` / `base + 2i + 1`, the detector
    /// `base + 2m` where `m = activations.len()`), nonzero elements
    /// are compacted and evaluated [`LANES`] at a time with batched
    /// Gaussian draws and branchless rail masks (a zero activation
    /// would contribute an exact `+0.0`, and its counters stay
    /// addressed to it, so skipping it changes no output bit), and no
    /// [`MacResult`] is built.
    ///
    /// Returns `(value, optical_energy_joules)`. Activations must
    /// already be validated to `[0, 1]` by the caller — the accelerator
    /// validates each encoded frame once instead of once per window.
    ///
    /// Bit-identical to [`Arm::mac`] driven by a
    /// [`oisa_device::noise::StreamCursor`] over the same stream and
    /// base counter 0.
    #[must_use]
    pub fn mac_indexed(&self, activations: &[f64], stream: &NoiseStream, base: u64) -> (f64, f64) {
        debug_assert!(activations.len() <= self.weights.len());
        mac_indexed_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.config.channel_power.get(),
            self.dwell.get(),
            activations,
            stream,
            base,
        )
    }

    /// Counter stride one MAC of `m` activations consumes on a stream:
    /// two draws per channel plus the detector draw.
    #[must_use]
    pub fn counter_stride(m: usize) -> u64 {
        2 * m as u64 + 1
    }

    /// Faithful port of the pre-optimisation MAC: validates inside the
    /// loop, re-derives both crosstalk Lorentzians per channel from ring
    /// state, recomputes the full-scale and time-of-flight terms per
    /// call. Kept as the wall-clock baseline for the performance
    /// benchmarks and as a physics cross-check (it produces the same
    /// values as [`Arm::mac`] given the same noise draws).
    ///
    /// # Errors
    ///
    /// Same contract as [`Arm::mac`], but the range error reports no
    /// index (the historical message).
    pub fn mac_reference<N: NoiseModel>(
        &self,
        activations: &[f64],
        noise: &mut N,
    ) -> Result<MacResult> {
        if activations.len() > self.weights.len() {
            return Err(OpticsError::InvalidParameter(format!(
                "{} activations for {} loaded weights",
                activations.len(),
                self.weights.len()
            )));
        }
        // The rail fold follows the canonical lane order (module docs):
        // the reference port must stay bit-equal to the optimised paths.
        let mut pos = [0.0f64; LANES];
        let mut neg = [0.0f64; LANES];
        let p_in = self.config.channel_power.get();
        let spacing = self.plan.spacing();
        for (i, (a, w)) in activations.iter().zip(&self.weights).enumerate() {
            if !(0.0..=1.0).contains(a) {
                return Err(OpticsError::InvalidParameter(format!(
                    "activation {a} outside [0, 1]"
                )));
            }
            let launched = noise.vcsel(p_in * a);
            let t = noise.mr_transmission(w.magnitude);
            let mut xt = 1.0;
            if self.config.crosstalk {
                if i > 0 {
                    xt *= self.rings[i - 1].crosstalk_transmission(spacing);
                }
                if i + 1 < self.weights.len() {
                    xt *= self.rings[i + 1].crosstalk_transmission(-spacing);
                }
            }
            let arrived = launched * t * (xt * self.path_transmission);
            if w.negative {
                neg[i % LANES] += arrived;
            } else {
                pos[i % LANES] += arrived;
            }
        }
        let p_pos = reduce_lanes(pos);
        let p_neg = reduce_lanes(neg);
        let diff = self
            .detector
            .difference_current(Watt::new(p_pos), Watt::new(p_neg));
        let full_scale = self.config.channel_power.get()
            * self.path_transmission
            * self.config.detector.responsivity_a_per_w
            * activations.len().max(1) as f64;
        let noisy = noise.detector(diff.get(), full_scale);
        let per_channel_full = self.config.channel_power.get()
            * self.path_transmission
            * self.config.detector.responsivity_a_per_w;
        let value = noisy / per_channel_full;
        let latency = self.time_of_flight() + self.detector.settling_time();
        let optical_energy =
            Watt::new(p_pos + p_neg) * (self.time_of_flight() + self.detector.settling_time());
        Ok(MacResult {
            value,
            raw_current: noisy,
            latency,
            optical_energy,
        })
    }

    /// Checks activation count and range, reporting the first offending
    /// index.
    fn validate_activations(&self, activations: &[f64]) -> Result<()> {
        validate_activation_window(self.weights.len(), activations)
    }

    /// Optical time of flight along the arm (group velocity c/n_g).
    #[must_use]
    pub fn time_of_flight(&self) -> Second {
        let v = oisa_units::SPEED_OF_LIGHT_M_PER_S / self.config.ring.group_index;
        Second::new(self.config.length.get() / v)
    }

    /// The WDM channel plan used by this arm.
    #[must_use]
    pub fn channel_plan(&self) -> &ChannelPlan {
        &self.plan
    }
}

/// Checks activation count against `loaded` weights and the `[0, 1]`
/// range, reporting the first offending index — shared by [`Arm`] and
/// [`ArmSnapshot`] so both reject identically.
fn validate_activation_window(loaded: usize, activations: &[f64]) -> Result<()> {
    if activations.len() > loaded {
        return Err(OpticsError::InvalidParameter(format!(
            "{} activations for {loaded} loaded weights",
            activations.len(),
        )));
    }
    if let Some(i) = activations.iter().position(|a| !(0.0..=1.0).contains(a)) {
        return Err(OpticsError::InvalidParameter(format!(
            "activation {} at index {i} outside [0, 1]",
            activations[i]
        )));
    }
    Ok(())
}

/// The general MAC evaluation shared bit-for-bit by [`Arm::mac`] and
/// [`ArmSnapshot::mac`]: VCSEL RIN → ring transmission (with drift) →
/// precomputed per-ring gain → rail accumulation → BPD subtraction with
/// detector noise → loss-normalised signed result.
#[allow(clippy::too_many_arguments)]
fn mac_core<N: NoiseModel>(
    weights: &[MappedWeight],
    ring_gain: &[f64],
    detector: &BalancedPhotodetector,
    per_channel_full: f64,
    channel_power_w: f64,
    dwell: Second,
    activations: &[f64],
    noise: &mut N,
) -> MacResult {
    // Draw order stays strictly element-sequential (VCSEL then drift,
    // element by element) for `StreamCursor` counter compatibility;
    // only the rail accumulation uses the canonical lane fold.
    let mut pos = [0.0f64; LANES];
    let mut neg = [0.0f64; LANES];
    for (i, (a, w)) in activations.iter().zip(weights).enumerate() {
        let launched = noise.vcsel(channel_power_w * a);
        let t = noise.mr_transmission(w.magnitude);
        let arrived = launched * t * ring_gain[i];
        if w.negative {
            neg[i % LANES] += arrived;
        } else {
            pos[i % LANES] += arrived;
        }
    }
    let p_pos = reduce_lanes(pos);
    let p_neg = reduce_lanes(neg);
    let diff = detector.difference_current(Watt::new(p_pos), Watt::new(p_neg));
    // Full scale: all channels at activation 1 with weight magnitude 1
    // on one waveguide.
    let full_scale = per_channel_full * activations.len().max(1) as f64;
    let noisy = noise.detector(diff.get(), full_scale);
    // Loss-normalised value in weight·activation units.
    let value = noisy / per_channel_full;
    MacResult {
        value,
        raw_current: noisy,
        latency: dwell,
        optical_energy: Watt::new(p_pos + p_neg) * dwell,
    }
}

/// Reduces the lane accumulators through the one canonical tree:
/// fold the high half onto the low half (`l0+l2`, `l1+l3`), then add
/// the halves — the order a 256-bit register split produces. Every MAC
/// path commits to this exact tree; see the module-level performance
/// notes for why the order is load-bearing.
#[inline]
fn reduce_lanes(acc: [f64; LANES]) -> f64 {
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

/// The fused counter-addressed MAC shared bit-for-bit by
/// [`Arm::mac_indexed`] and [`ArmSnapshot::mac_indexed`]: channel `i`
/// draws counters `base + 2i` / `base + 2i + 1`, the detector draws
/// `base + 2m` where `m = activations.len()` — including when the
/// activation window is shorter than the loaded weights.
///
/// Element `i` accumulates into rail lane `i mod LANES` and the lanes
/// reduce through [`reduce_lanes`] — the canonical fold every MAC path
/// replays. The four rails are a speed feature as much as a
/// determinism contract: they give the core four independent
/// floating-point add chains where the historical single accumulator
/// serialised every element on one. Zero activations skip both their
/// draws; counters are positional (`base + 2i` belongs to element `i`
/// whether or not it draws), so the skip is bit-identical to drawing
/// and discarding (a zero's contribution is an exact `±0.0` into a
/// non-negative accumulator, which can never change its bits).
///
/// The per-element draws stay deliberately scalar here: paper-shaped
/// windows (9 taps on a 10-ring arm) are too short for within-window
/// mixing batches to pay — the batched multiply chain's latency lands
/// on the critical path, where the scalar interleaving hides it. The
/// vector win on convolution comes from [`mac_indexed_x4_core`]
/// evaluating adjacent windows in lockstep instead.
#[allow(clippy::too_many_arguments)]
fn mac_indexed_core(
    weights: &[MappedWeight],
    ring_gain: &[f64],
    detector: &BalancedPhotodetector,
    per_channel_full: f64,
    channel_power_w: f64,
    dwell_s: f64,
    activations: &[f64],
    stream: &NoiseStream,
    base: u64,
) -> (f64, f64) {
    let m = activations.len();
    // Historical zip semantics: evaluate only elements that have a
    // loaded weight, but keep full-scale and the detector counter on
    // the activation count (see the short-window contract test).
    let n = m.min(weights.len());
    let cfg = stream.config();
    let sv = cfg.vcsel_rin;
    let sm = cfg.mr_drift;
    let mut pos = [0.0f64; LANES];
    let mut neg = [0.0f64; LANES];
    for i in 0..n {
        let a = activations[i];
        if a == 0.0 {
            continue;
        }
        let w = &weights[i];
        let c = base + 2 * i as u64;
        let launched = (channel_power_w * a * (1.0 + sv * stream.gaussian_at(c))).max(0.0);
        let t = (w.magnitude * (1.0 + sm * stream.gaussian_at(c + 1))).clamp(0.0, 1.0);
        let arrived = launched * t * ring_gain[i];
        if w.negative {
            neg[i % LANES] += arrived;
        } else {
            pos[i % LANES] += arrived;
        }
    }
    let p_pos = reduce_lanes(pos);
    let p_neg = reduce_lanes(neg);
    let diff = detector.difference_current(Watt::new(p_pos), Watt::new(p_neg));
    let full_scale = per_channel_full * m.max(1) as f64;
    let noisy = stream.detector_at(base + 2 * m as u64, diff.get(), full_scale);
    (noisy / per_channel_full, (p_pos + p_neg) * dwell_s)
}

/// Arguments shared by every tier specialisation of the across-window
/// MAC. `activations` is element-major — `activations[i * LANES + l]`
/// is element `i` of window `l` — and `m` is the per-window length.
struct MacX4Args<'a> {
    weights: &'a [MappedWeight],
    ring_gain: &'a [f64],
    detector: &'a BalancedPhotodetector,
    per_channel_full: f64,
    channel_power_w: f64,
    dwell_s: f64,
    activations: &'a [f64],
    m: usize,
    quad: &'a StreamQuad,
    base: u64,
}

/// The across-window fused MAC: one weight window against [`LANES`]
/// activation windows in lockstep, bit-identical per window to
/// [`mac_indexed_core`] on that window's own stream.
///
/// This is where the vector units finally pay on paper-shaped (short)
/// windows. Adjacent convolution output positions consume the *same*
/// counters and weights and differ only in stream key, so channel
/// `i`'s (VCSEL, drift) draw pair batches across the four windows with
/// per-lane keys — one scalar counter spread feeding a vectorised
/// finaliser (see [`StreamQuad::gaussian_pair_at`]) — and the MAC
/// arithmetic itself runs element-by-element over four independent
/// window values.
///
/// Bit-identity per window holds by construction: element `i` of
/// window `l` performs the identical IEEE operations on the identical
/// draws as the per-window path, folding into rail `i mod LANES` of
/// window `l`'s own accumulators (`pos[rail][l]`), and windows never
/// mix. The only difference from four separate calls is that zero
/// activations draw-and-discard instead of skipping — which the
/// per-window path's own contract already proves bit-equivalent (an
/// exact `±0.0` into a non-negative accumulator), and which is forced
/// here anyway because the *other* windows still need the batch.
///
/// Generic over the pair-draw so [`mac_indexed_x4_core`] can compile
/// one `#[target_feature]`-specialised copy per mixing tier, letting
/// the vector kernel inline into the loop instead of paying an
/// out-of-line call per channel.
#[inline(always)]
fn mac_indexed_x4_body<D: Fn(&StreamQuad, u64) -> ([f64; LANES], [f64; LANES])>(
    a: &MacX4Args<'_>,
    draw_pairs: D,
) -> ([f64; LANES], [f64; LANES]) {
    let m = a.m;
    let n = m.min(a.weights.len());
    let cfg = a.quad.config();
    let sv = cfg.vcsel_rin;
    let sm = cfg.mr_drift;
    let mut pos = [[0.0f64; LANES]; LANES];
    let mut neg = [[0.0f64; LANES]; LANES];
    for i in 0..n {
        let w = &a.weights[i];
        let gain = a.ring_gain[i];
        let (g_vcsel, g_drift) = draw_pairs(a.quad, a.base + 2 * i as u64);
        let acts = &a.activations[i * LANES..(i + 1) * LANES];
        let rail = i % LANES;
        // The sign branch hoists above the window loop (the weight is
        // shared), so the inner body is branch-free and vectorises.
        if w.negative {
            for l in 0..LANES {
                let launched = (a.channel_power_w * acts[l] * (1.0 + sv * g_vcsel[l])).max(0.0);
                let t = (w.magnitude * (1.0 + sm * g_drift[l])).clamp(0.0, 1.0);
                neg[rail][l] += launched * t * gain;
            }
        } else {
            for l in 0..LANES {
                let launched = (a.channel_power_w * acts[l] * (1.0 + sv * g_vcsel[l])).max(0.0);
                let t = (w.magnitude * (1.0 + sm * g_drift[l])).clamp(0.0, 1.0);
                pos[rail][l] += launched * t * gain;
            }
        }
    }
    let full_scale = a.per_channel_full * m.max(1) as f64;
    let mut diffs = [0.0f64; LANES];
    let mut p_sum = [0.0f64; LANES];
    for l in 0..LANES {
        let p_pos = reduce_lanes([pos[0][l], pos[1][l], pos[2][l], pos[3][l]]);
        let p_neg = reduce_lanes([neg[0][l], neg[1][l], neg[2][l], neg[3][l]]);
        diffs[l] = a
            .detector
            .difference_current(Watt::new(p_pos), Watt::new(p_neg))
            .get();
        p_sum[l] = p_pos + p_neg;
    }
    let noisy = a.quad.detector_at(a.base + 2 * m as u64, diffs, full_scale);
    let mut values = [0.0f64; LANES];
    let mut energies = [0.0f64; LANES];
    for l in 0..LANES {
        values[l] = noisy[l] / a.per_channel_full;
        energies[l] = p_sum[l] * a.dwell_s;
    }
    (values, energies)
}

/// Portable specialisation of the across-window MAC: scalar mixing,
/// compiled without any vector feature. Also the only body on
/// non-x86_64 targets or with the `simd` feature disabled.
fn mac_indexed_x4_scalar(a: &MacX4Args<'_>) -> ([f64; LANES], [f64; LANES]) {
    mac_indexed_x4_body(a, |q, c| q.gaussian_pair_at_scalar(c))
}

/// AVX2 specialisation: the whole across-window loop is compiled with
/// AVX2 enabled so the vector mixing kernel inlines into it. Safe
/// `#[target_feature]` fn: the dispatcher wraps the call in `unsafe`
/// after runtime detection; the draw closure inherits this fn's AVX2
/// context, so the pair-draw call needs no `unsafe` of its own.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
fn mac_indexed_x4_avx2(a: &MacX4Args<'_>) -> ([f64; LANES], [f64; LANES]) {
    mac_indexed_x4_body(a, |q, c| q.gaussian_pair_at_avx2(c))
}

/// AVX-512 specialisation (see [`mac_indexed_x4_avx2`]).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512dq,avx512vl")]
fn mac_indexed_x4_avx512(a: &MacX4Args<'_>) -> ([f64; LANES], [f64; LANES]) {
    mac_indexed_x4_body(a, |q, c| q.gaussian_pair_at_avx512(c))
}

/// Tier dispatch for the across-window MAC: one cached-tier check per
/// window quad, then a fully-inlined specialised loop. Every tier
/// returns identical bits (integer mixing is exact; the floating-point
/// pipeline is the same code in each specialisation).
fn mac_indexed_x4_core(a: &MacX4Args<'_>) -> ([f64; LANES], [f64; LANES]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use oisa_device::simd::Tier;
        match oisa_device::simd::tier() {
            // SAFETY: the tier is only reported after the matching
            // target features were runtime-detected on this CPU.
            Tier::Avx512 => return unsafe { mac_indexed_x4_avx512(a) },
            Tier::Avx2 => return unsafe { mac_indexed_x4_avx2(a) },
            Tier::Scalar => {}
        }
    }
    mac_indexed_x4_scalar(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};
    use proptest::prelude::*;

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    fn loaded_arm_with(config: ArmConfig, weights: &[f64], bits: u8) -> Arm {
        let mapper = WeightMapper::ideal(bits).unwrap();
        let mut arm = Arm::new(config).unwrap();
        arm.load_weights(weights, &mapper).unwrap();
        arm
    }

    fn loaded_arm(weights: &[f64], bits: u8) -> Arm {
        loaded_arm_with(ArmConfig::paper_default(), weights, bits)
    }

    #[test]
    fn mac_matches_exact_dot_product_noiselessly() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.0, 1.0];
        let arm = loaded_arm_with(ArmConfig::no_crosstalk(), &w, 4);
        let out = arm.mac(&a, &mut quiet()).unwrap();
        let exact: f64 = w.iter().zip(&a).map(|(w, a)| w * a).sum();
        // 4-bit quantisation bounds the per-element error to 1/30.
        assert!(
            (out.value - exact).abs() < 9.0 / 30.0 + 1e-6,
            "got {} exact {exact}",
            out.value
        );
    }

    #[test]
    fn positive_and_negative_weights_cancel() {
        let arm = loaded_arm_with(ArmConfig::no_crosstalk(), &[1.0, -1.0], 4);
        let out = arm.mac(&[1.0, 1.0], &mut quiet()).unwrap();
        assert!(out.value.abs() < 1e-9, "got {}", out.value);
    }

    #[test]
    fn crosstalk_shaves_a_few_percent() {
        let w = [0.8; 9];
        let a = [1.0; 9];
        let clean = loaded_arm_with(ArmConfig::no_crosstalk(), &w, 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        let with_xt = loaded_arm(&w, 4).mac(&a, &mut quiet()).unwrap().value;
        let loss = (clean - with_xt) / clean;
        assert!(loss > 0.0, "crosstalk must attenuate, got gain {loss}");
        assert!(
            loss < 0.15,
            "crosstalk loss {loss} too large for the paper channel plan"
        );
    }

    #[test]
    fn detuned_neighbours_leak_toward_next_channel() {
        // Weight detuning shifts a ring's resonance *toward* the next
        // channel, so fully-detuned neighbours attenuate the centre
        // channel more than parked ones — the physical reason the
        // channel plan spreads over the whole FSR.
        let a = [0.0, 1.0, 0.0];
        let parked = loaded_arm(&[0.0, 0.8, 0.0], 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        let detuned = loaded_arm(&[1.0, 0.8, 1.0], 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        assert!(
            detuned < parked,
            "detuned neighbours should attenuate the centre channel more: {detuned} vs {parked}"
        );
        // But with the FSR-wide plan the effect stays small.
        assert!((parked - detuned) / parked < 0.05);
    }

    #[test]
    fn all_zero_weights_give_zero() {
        let arm = loaded_arm(&[0.0; 9], 4);
        let out = arm.mac(&[1.0; 9], &mut quiet()).unwrap();
        assert!(out.value.abs() < 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let mapper = WeightMapper::ideal(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        let too_many = vec![0.1; RINGS_PER_ARM + 1];
        assert!(matches!(
            arm.load_weights(&too_many, &mapper),
            Err(OpticsError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn activation_validation() {
        let arm = loaded_arm(&[0.5; 9], 4);
        assert!(arm.mac(&[1.5; 9], &mut quiet()).is_err());
        assert!(arm.mac(&[1.0; 10], &mut quiet()).is_err());
    }

    #[test]
    fn tuning_costs_accounted() {
        let arm = loaded_arm(&[0.9; 9], 4);
        assert!(arm.tuning_energy().get() > 0.0);
        assert!(arm.tuning_latency().get() > 0.0);
        assert!(arm.holding_power().get() > 0.0);
    }

    #[test]
    fn holding_power_within_architecture_budget() {
        // Full-magnitude weights are the worst case; the paper's power
        // budget requires an arm to hold well under 10 × 0.3 mW.
        let arm = loaded_arm(&[1.0; 9], 4);
        let p = arm.holding_power();
        assert!(p.as_milli() < 3.0, "arm holding power {p}");
    }

    #[test]
    fn latency_dominated_by_flight_plus_detector() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let out = arm.mac(&[1.0; 9], &mut quiet()).unwrap();
        // 500 µm at c/4.2 ≈ 7 ps, BPD ≈ 8.3 ps → ~15 ps.
        assert!(
            out.latency.as_pico() > 5.0 && out.latency.as_pico() < 60.0,
            "latency {}",
            out.latency
        );
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.0, 1.0];
        let arm = loaded_arm(&w, 4);
        let mut noisy = NoiseSource::seeded(42, NoiseConfig::paper_default());
        let exact: f64 = w.iter().zip(&a).map(|(w, a)| w * a).sum();
        let runs: Vec<f64> = (0..64)
            .map(|_| arm.mac(&a, &mut noisy).unwrap().value)
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        assert!((mean - exact).abs() < 0.4, "mean {mean} vs exact {exact}");
        let spread = runs.iter().map(|r| (r - mean).abs()).fold(0.0f64, f64::max);
        assert!(spread > 0.0, "noise must perturb results");
        assert!(spread < 0.5, "noise out of calibration: {spread}");
    }

    #[test]
    fn indexed_reference_and_general_macs_are_bit_identical() {
        // Same stream, three evaluation strategies: the fused fast path
        // (explicit counters, zero-skip), the general path behind a
        // sequential cursor, and the pre-optimisation reference port.
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 0.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.022, 1.0]; // ternary-ish, with zeros
        let arm = loaded_arm(&w, 4);
        let source = NoiseSource::seeded(99, NoiseConfig::paper_default());
        let stream = source.stream(0, 3, 17);

        let (fast_value, fast_energy) = arm.mac_indexed(&a, &stream, 0);
        let general = arm.mac(&a, &mut stream.cursor()).unwrap();
        let reference = arm.mac_reference(&a, &mut stream.cursor()).unwrap();

        assert_eq!(fast_value, general.value);
        assert_eq!(fast_value, reference.value);
        assert_eq!(fast_energy, general.optical_energy.get());
        assert_eq!(fast_energy, reference.optical_energy.get());
        assert_eq!(general.raw_current, reference.raw_current);
    }

    #[test]
    fn short_window_detector_counter_follows_activation_count() {
        // The contract: the detector draw sits at `base + 2·m` where
        // `m = activations.len()`, even when the activation window is
        // shorter than the loaded weights. All three MAC paths agree on
        // it, and the counter depends on the window length, never on
        // the loaded weight count.
        let w10 = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5, 0.3];
        let arm10 = loaded_arm(&w10, 4);
        let arm9 = loaded_arm(&w10[..9], 4);
        let source = NoiseSource::seeded(13, NoiseConfig::paper_default());
        let stream = source.stream(0, 1, 9);
        for m in [0usize, 1, 2, 3, 5, 8, 9] {
            let a: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin().abs()).collect();
            let (fast, fast_energy) = arm10.mac_indexed(&a, &stream, 0);
            let general = arm10.mac(&a, &mut stream.cursor()).unwrap();
            let reference = arm10.mac_reference(&a, &mut stream.cursor()).unwrap();
            assert_eq!(fast, general.value, "m={m}");
            assert_eq!(fast, reference.value, "m={m}");
            assert_eq!(fast_energy, general.optical_energy.get(), "m={m}");
            // The same short window on an arm holding fewer weights
            // replays the same draws: if the detector counter tracked
            // `weights.len()`, these would diverge. (m ≤ 8 keeps the
            // last evaluated ring's crosstalk neighbourhood identical
            // between the 9- and 10-weight arms.)
            if m <= 8 {
                assert_eq!(fast, arm9.mac_indexed(&a, &stream, 0).0, "m={m}");
            }
        }
    }

    #[test]
    fn snapshot_macs_bit_identical_to_arm() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 0.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.022, 1.0];
        let arm = loaded_arm(&w, 4);
        let snap = arm.snapshot();
        let source = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let stream = source.stream(1, 2, 33);

        assert_eq!(
            arm.mac_indexed(&a, &stream, 5),
            snap.mac_indexed(&a, &stream, 5)
        );
        assert_eq!(
            arm.mac(&a, &mut stream.cursor()).unwrap(),
            snap.mac(&a, &mut stream.cursor()).unwrap()
        );
        assert_eq!(snap.weights(), arm.weights());
    }

    #[test]
    fn snapshot_outlives_arm_retuning() {
        let mapper = WeightMapper::ideal(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        arm.load_weights(&[0.8; 9], &mapper).unwrap();
        let snap = arm.snapshot();
        let a = [1.0; 9];
        let before = snap.mac(&a, &mut quiet()).unwrap();
        // Re-tune the physical arm; the snapshot must keep replaying the
        // old weights.
        arm.load_weights(&[-0.8; 9], &mapper).unwrap();
        let after_snap = snap.mac(&a, &mut quiet()).unwrap();
        let after_arm = arm.mac(&a, &mut quiet()).unwrap();
        assert_eq!(before, after_snap);
        assert!(after_arm.value < 0.0 && after_snap.value > 0.0);
    }

    #[test]
    fn snapshot_validates_like_arm() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let snap = arm.snapshot();
        assert!(snap.mac(&[1.5; 9], &mut quiet()).is_err());
        assert!(snap.mac(&[1.0; 10], &mut quiet()).is_err());
    }

    #[test]
    fn validation_reports_offending_index() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let mut acts = [0.5; 9];
        acts[6] = 1.5;
        let err = arm.mac(&acts, &mut quiet()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("index 6"),
            "message must name the index: {msg}"
        );
        assert!(msg.contains("1.5"), "message must name the value: {msg}");
    }

    proptest! {
        #[test]
        fn mac_bounded_by_operand_count(
            seed in 0u64..100,
            n in 1usize..=9,
        ) {
            let mut src = NoiseSource::seeded(seed, NoiseConfig::noiseless());
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed as f64 + i as f64) * 0.37).sin())
                .collect();
            let activations: Vec<f64> = (0..n)
                .map(|i| (((seed + 3) as f64 + i as f64) * 0.21).sin().abs())
                .collect();
            let arm = loaded_arm(&weights, 4);
            let out = arm.mac(&activations, &mut src).unwrap();
            prop_assert!(out.value.abs() <= n as f64 + 1e-9);
        }
    }
}
