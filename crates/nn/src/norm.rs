//! Batch normalisation over channels (NCHW).

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, UpdateRule};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// BatchNorm2d: per-channel normalisation with learnable scale/shift and
/// running statistics for inference.
///
/// # Examples
///
/// ```
/// use oisa_nn::norm::BatchNorm2d;
/// use oisa_nn::layer::Layer;
/// use oisa_nn::Tensor;
///
/// # fn main() -> Result<(), oisa_nn::NnError> {
/// let mut bn = BatchNorm2d::new(4)?;
/// let y = bn.forward(&Tensor::zeros(vec![2, 4, 3, 3]), true)?;
/// assert_eq!(y.shape(), &[2, 4, 3, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    channels: usize,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    /// Cache: (normalised input, batch std per channel, input shape).
    cache: Option<(Tensor, Vec<f32>)>,
    momentum_g: Vec<f32>,
    momentum_b: Vec<f32>,
}

impl BatchNorm2d {
    /// Builds a batch-norm layer over `channels`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for zero channels.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidParameter(
                "batchnorm channels must be positive".into(),
            ));
        }
        Ok(Self {
            channels,
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            cache: None,
            momentum_g: Vec::new(),
            momentum_b: Vec::new(),
        })
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_shape(&self, s: &[usize]) -> Result<()> {
        if s.len() != 4 || s[1] != self.channels {
            return Err(NnError::ShapeMismatch {
                expected: format!("NCHW with C = {}", self.channels),
                got: s.to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        self.check_shape(input.shape())?;
        let s = input.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let count = (n * h * w) as f32;
        let mut out = Tensor::zeros(s.to_vec());
        if training {
            let mut normalised = Tensor::zeros(s.to_vec());
            let mut stds = vec![0.0f32; c];
            for (ci, std_slot) in stds.iter_mut().enumerate() {
                let mut mean = 0.0f32;
                for ni in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            mean += input.at4(ni, ci, y, x);
                        }
                    }
                }
                mean /= count;
                let mut var = 0.0f32;
                for ni in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            let d = input.at4(ni, ci, y, x) - mean;
                            var += d * d;
                        }
                    }
                }
                var /= count;
                let std = (var + self.eps).sqrt();
                *std_slot = std;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                for ni in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            let xn = (input.at4(ni, ci, y, x) - mean) / std;
                            *normalised.at4_mut(ni, ci, y, x) = xn;
                            *out.at4_mut(ni, ci, y, x) = self.gamma[ci] * xn + self.beta[ci];
                        }
                    }
                }
            }
            self.cache = Some((normalised, stds));
        } else {
            for ci in 0..c {
                let std = (self.running_var[ci] + self.eps).sqrt();
                let mean = self.running_mean[ci];
                for ni in 0..n {
                    for y in 0..h {
                        for x in 0..w {
                            let xn = (input.at4(ni, ci, y, x) - mean) / std;
                            *out.at4_mut(ni, ci, y, x) = self.gamma[ci] * xn + self.beta[ci];
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (normalised, stds) = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("batchnorm backward before forward".into()))?;
        self.check_shape(grad_output.shape())?;
        let s = grad_output.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let count = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(s.to_vec());
        debug_assert_eq!(stds.len(), c);
        for (ci, &std) in stds.iter().enumerate() {
            // Standard batch-norm backward:
            // dx = γ/σ · (dy − mean(dy) − x̂ · mean(dy·x̂))
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xn = 0.0f32;
            for ni in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_output.at4(ni, ci, y, x);
                        let xn = normalised.at4(ni, ci, y, x);
                        sum_dy += dy;
                        sum_dy_xn += dy * xn;
                    }
                }
            }
            self.grad_beta[ci] += sum_dy;
            self.grad_gamma[ci] += sum_dy_xn;
            let scale = self.gamma[ci] / std;
            for ni in 0..n {
                for y in 0..h {
                    for x in 0..w {
                        let dy = grad_output.at4(ni, ci, y, x);
                        let xn = normalised.at4(ni, ci, y, x);
                        *grad_in.at4_mut(ni, ci, y, x) =
                            scale * (dy - sum_dy / count - xn * sum_dy_xn / count);
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn apply_gradients(&mut self, update: &mut UpdateRule) {
        update(&mut self.gamma, &self.grad_gamma, &mut self.momentum_g);
        update(&mut self.beta, &self.grad_beta, &mut self.momentum_b);
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn parameter_count(&self) -> usize {
        2 * self.channels
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn export_parameters(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(&self.gamma);
        out.extend_from_slice(&self.beta);
        out.extend_from_slice(&self.running_mean);
        out.extend_from_slice(&self.running_var);
    }

    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        let (g, rest) = crate::layer::take(input, self.channels)?;
        self.gamma.copy_from_slice(g);
        let (b, rest) = crate::layer::take(rest, self.channels)?;
        self.beta.copy_from_slice(b);
        let (m, rest) = crate::layer::take(rest, self.channels)?;
        self.running_mean.copy_from_slice(m);
        let (v, rest) = crate::layer::take(rest, self.channels)?;
        self.running_var.copy_from_slice(v);
        Ok(rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_normalises_batch() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let x = Tensor::from_vec(vec![2, 1, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = y.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-2, "var {var}");
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        // Train on many batches so running stats converge.
        let x = Tensor::from_vec(vec![2, 1, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, true).unwrap();
        }
        let y = bn.forward(&x, false).unwrap();
        // Mean ≈ 2.5, var ≈ 1.25: (1 − 2.5)/√1.25 ≈ −1.34.
        assert!(
            (y.as_slice()[0] + 1.34).abs() < 0.05,
            "got {}",
            y.as_slice()[0]
        );
    }

    #[test]
    fn gradient_check_gamma_beta() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::he_normal(vec![2, 2, 2, 2], 4, 3);
        let y = bn.forward(&x, true).unwrap();
        let ones = Tensor::full(y.shape().to_vec(), 1.0);
        let _ = bn.backward(&ones).unwrap();
        // dβ = Σ dy = count per channel.
        assert!((bn.grad_beta[0] - 8.0).abs() < 1e-4);
        // dγ = Σ dy·x̂ ≈ 0 for a normalised batch.
        assert!(bn.grad_gamma[0].abs() < 1e-3);
    }

    #[test]
    fn gradient_check_input_numerical() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![0.5, -0.3, 0.8, 0.1]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        // Loss: weighted sum with distinct weights so the gradient isn't
        // trivially zero.
        let w = [0.7f32, -0.2, 0.5, 1.1];
        let g = Tensor::from_vec(vec![1, 1, 2, 2], w.to_vec()).unwrap();
        let grad_in = bn.backward(&g).unwrap();
        let loss = |t: &Tensor| -> f32 { t.as_slice().iter().zip(&w).map(|(a, b)| a * b).sum() };
        let _ = loss(&y);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut bn2 = BatchNorm2d::new(1).unwrap();
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let plus = loss(&bn2.forward(&xp, true).unwrap());
            let mut bn3 = BatchNorm2d::new(1).unwrap();
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let minus = loss(&bn3.forward(&xm, true).unwrap());
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (grad_in.as_slice()[idx] - numeric).abs() < 2e-2,
                "dx[{idx}]: analytic {} vs numeric {numeric}",
                grad_in.as_slice()[idx]
            );
        }
    }

    #[test]
    fn shape_validation() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        assert!(bn.forward(&Tensor::zeros(vec![1, 2, 2, 2]), true).is_err());
        assert!(bn.backward(&Tensor::zeros(vec![1, 3, 2, 2])).is_err());
        assert!(BatchNorm2d::new(0).is_err());
    }

    #[test]
    fn parameter_count() {
        assert_eq!(BatchNorm2d::new(16).unwrap().parameter_count(), 32);
    }
}
