//! Multi-node deployment: a coordinator shards inference jobs across
//! OISA worker **processes** over the versioned wire protocol.
//!
//! This is the paper's Fig. 2 scenario grown up: instead of four
//! independent nodes each printing their own numbers, one coordinator
//! process runs a [`ShardedBackend`] whose workers are separate OS
//! processes (this same binary, re-executed with `--worker`). Shards
//! travel as length-prefixed [`oisa::core::wire`] messages over the
//! workers' stdin/stdout; every worker aligns its noise epochs and
//! fabric entry state from the shard message, so the merged reports
//! are **bit-identical** to one sequential per-frame loop — which the
//! example verifies before printing anything (it exits non-zero on any
//! mismatch, making it a CI check).
//!
//! ```sh
//! cargo run --release --example multi_node            # coordinator + 4 worker processes
//! cargo run --release --example multi_node -- --worker # (what the coordinator spawns)
//! ```

use std::io::Write;
use std::process::{Child, Command, Stdio};

use oisa::core::backend::{ComputeBackend, InProcessWorker, ShardTransport, ShardedBackend};
use oisa::core::wire::{self, InferenceJob};
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig, OisaError};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;
use oisa::units::Joule;

const WORKERS: usize = 4;
const IMG: usize = 16;

/// The deployment configuration every process must agree on: shards
/// carry its fingerprint and workers refuse mismatches. In a real
/// fleet this ships with the deployment, out-of-band.
fn node_config() -> OisaConfig {
    OisaConfig::builder()
        .imager_dims(IMG, IMG)
        .opc_shape(4, 2, 10)
        .noise(NoiseConfig::paper_default())
        .seed(2024)
        .build()
        .expect("deployment config validates")
}

/// First-layer kernel set, fixed for the deployment.
fn kernel_bank() -> Vec<Vec<f32>> {
    vec![
        vec![0.0, -0.5, 0.0, -0.5, 2.0, -0.5, 0.0, -0.5, 0.0], // sharpen
        vec![1.0 / 9.0; 9],                                    // blur
        vec![-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0],  // sobel-x
    ]
}

/// Frame `t` of the sensor burst: a gradient with a moving bright band.
fn capture(t: usize) -> Frame {
    let pixels: Vec<f64> = (0..IMG * IMG)
        .map(|i| {
            let row = i / IMG;
            let base = 0.15 + 0.4 * (row as f64 / IMG as f64);
            if row % 5 == t % 5 {
                (base + 0.4).min(1.0)
            } else {
                base
            }
        })
        .collect();
    Frame::new(IMG, IMG, pixels).expect("valid frame")
}

/// Bytes to ship one frame raw (8-bit pixels) vs as 2×2-pooled 4-bit
/// feature maps (the off-chip processor's next stage pools anyway, and
/// first-layer partial sums need no more precision than the 4-bit
/// weights that produced them).
///
/// Pooling an odd-sized map keeps a ragged last row/column (`ceil`,
/// matching a stride-2 pool with padding), so odd `out` must round the
/// pooled dimension *up* — flooring undercounts the uplink bytes.
fn traffic_bytes(img: usize, out: usize, kernels: usize) -> (usize, usize) {
    let raw = img * img;
    let pooled = out.div_ceil(2);
    let features = (pooled * pooled * kernels).div_ceil(2);
    (raw, features)
}

/// One worker process: a child of this binary speaking the wire
/// protocol over its stdin/stdout.
struct ProcessWorker {
    child: Child,
}

impl ProcessWorker {
    fn spawn() -> std::io::Result<Self> {
        let exe = std::env::current_exe()?;
        let child = Command::new(exe)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        Ok(Self { child })
    }
}

impl ShardTransport for ProcessWorker {
    fn round_trip(&mut self, message: &[u8]) -> Result<Vec<u8>, OisaError> {
        let stdin = self
            .child
            .stdin
            .as_mut()
            .ok_or_else(|| OisaError::Backend("worker stdin already closed".into()))?;
        wire::write_frame(stdin, message)?;
        stdin
            .flush()
            .map_err(|e| OisaError::Backend(format!("worker stdin broke: {e}")))?;
        let stdout = self
            .child
            .stdout
            .as_mut()
            .ok_or_else(|| OisaError::Backend("worker stdout already closed".into()))?;
        wire::read_frame(stdout)?
            .ok_or_else(|| OisaError::Backend("worker exited without replying".into()))
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        // Closing stdin lets the worker's serve loop see clean EOF and
        // exit; then reap it so no zombie outlives the coordinator.
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

/// How the coordinator reaches its workers.
enum Fleet {
    /// Spawn `--worker` child processes (the real deployment shape).
    Processes,
    /// In-process workers over the same wire path — used by the unit
    /// test, where `current_exe` is the test harness, not this example.
    InProcess,
}

fn run_coordinator(fleet: &Fleet) -> Result<(), Box<dyn std::error::Error>> {
    let config = node_config();
    let kernels = kernel_bank();
    let workers: Vec<Box<dyn ShardTransport>> = match fleet {
        Fleet::Processes => (0..WORKERS)
            .map(|_| ProcessWorker::spawn().map(|w| Box::new(w) as Box<dyn ShardTransport>))
            .collect::<std::io::Result<_>>()?,
        Fleet::InProcess => (0..WORKERS)
            .map(|_| Box::new(InProcessWorker::new(config)) as Box<dyn ShardTransport>)
            .collect(),
    };
    let mode = match fleet {
        Fleet::Processes => "worker processes",
        Fleet::InProcess => "in-process workers",
    };
    let mut backend = ShardedBackend::new(config, workers)?;

    println!("OISA multi-node coordinator ({WORKERS} {mode})");
    println!("==============================================\n");
    println!(
        "deployment: {IMG}x{IMG} imager, {} kernels, config fingerprint {:#018x}\n",
        kernels.len(),
        config.fingerprint()
    );

    // Two bursts, so the second job exercises epoch/fabric continuation
    // across jobs — each shard of each burst lands on a different
    // worker with nothing but its wire message.
    let bursts: [Vec<Frame>; 2] = [
        (0..10).map(capture).collect(),
        (10..16).map(capture).collect(),
    ];
    let mut oracle = OisaAccelerator::new(config)?;
    let mut total_energy = Joule::ZERO;
    let mut total_raw = 0usize;
    let mut total_features = 0usize;
    for (b, frames) in bursts.iter().enumerate() {
        let job = InferenceJob {
            job_id: b as u64 + 1,
            k: 3,
            kernels: kernels.clone(),
            frames: frames.clone(),
        };
        let merged = backend.run_job(&job)?;

        // The acceptance check: merged shards must equal one
        // sequential per-frame loop, bit for bit.
        let looped: Vec<ConvolutionReport> = frames
            .iter()
            .map(|f| oracle.convolve_frame_sequential(f, &kernels, 3))
            .collect::<Result<_, _>>()?;
        assert_eq!(
            merged, looped,
            "burst {b}: sharded reports must be bit-identical to the sequential loop"
        );

        let energy: Joule = merged.iter().map(|r| r.energy.total()).sum();
        total_energy += energy;
        for report in &merged {
            let (raw, features) = traffic_bytes(IMG, report.out_h, kernels.len());
            total_raw += raw;
            total_features += features;
        }
        println!(
            "burst {b}: {} frames over {} shards -> {} reports, energy {energy:.3} \
             (bit-identical to the sequential loop)",
            frames.len(),
            WORKERS.min(frames.len()),
            merged.len()
        );
    }

    println!("\nfleet totals:");
    println!("  jobs merged      : {}", backend.jobs_run());
    println!("  energy           : {total_energy:.3}");
    println!(
        "  uplink traffic   : {total_features} B pooled features vs {total_raw} B raw ({:.1}x)",
        total_raw as f64 / total_features as f64
    );
    println!("  (workers ship first-layer features, not pixels — the paper's thing-centric");
    println!("   shift: conversion and transmission power stay in-sensor)");
    println!("\ndeterminism: all merged reports bit-identical to the sequential loop");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--worker") {
        // Worker mode: speak the wire protocol over stdio until the
        // coordinator closes the pipe. Nothing else may touch stdout.
        let config = node_config();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        oisa::core::backend::serve_worker(&config, &mut stdin.lock(), &mut stdout.lock())?;
        return Ok(());
    }
    let fleet = if std::env::args().any(|a| a == "--in-process") {
        Fleet::InProcess
    } else {
        Fleet::Processes
    };
    run_coordinator(&fleet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_bytes_covers_odd_pooled_outputs() {
        // 16×16 input, 3×3 kernel → out = 14 (even): 7×7 pooled, 3
        // maps at 4 bits → ceil(147/2) = 74 B.
        assert_eq!(traffic_bytes(16, 14, 3), (256, 74));
        // 15×15 input, 3×3 kernel → out = 13 (odd): the pool keeps a
        // ragged 7th row/column, so 7×7×3 nibbles again — a floored
        // 6×6 would undercount by 20 bytes.
        assert_eq!(traffic_bytes(15, 13, 3), (225, 74));
        // Degenerate 1×1 output still ships one nibble.
        assert_eq!(traffic_bytes(3, 1, 1), (9, 1));
    }

    /// The coordinator's full pipeline — shard, dispatch over the wire,
    /// merge, verify parity — with in-process workers (the test
    /// harness binary cannot re-exec itself as `--worker`; CI runs the
    /// example binary itself for the real multi-process path).
    #[test]
    fn coordinator_demo_runs_and_verifies() {
        run_coordinator(&Fleet::InProcess).expect("multi_node coordinator");
    }
}
