//! Model containers and the reduced-scale model zoo.
//!
//! The paper evaluates LeNet (MNIST), ResNet18 (SVHN, CIFAR-10) and VGG16
//! (CIFAR-100). Training full-scale ResNet18/VGG16 offline in pure Rust is
//! out of budget, so the zoo provides **topology-faithful reduced models**
//! — same layer patterns (residual blocks with projection shortcuts,
//! stacked 3×3 VGG groups), fewer channels/blocks. DESIGN.md records this
//! substitution; the Table II experiment compares *relative* accuracy
//! across quantisation configurations, which the reduced models preserve.

use crate::conv::Conv2d;
use crate::layer::{Flatten, GlobalAvgPool, Layer, MaxPool2, Relu, UpdateRule};
use crate::linear::Linear;
use crate::norm::BatchNorm2d;
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// A sequential stack of layers, itself a [`Layer`].
///
/// # Examples
///
/// See the crate-level example.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// An empty container.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the container holds no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Mutable access to the first [`Conv2d`] in the stack — the layer
    /// OISA executes optically.
    pub fn first_conv_mut(&mut self) -> Option<&mut Conv2d> {
        self.layers
            .iter_mut()
            .find_map(|l| l.as_any_mut()?.downcast_mut::<Conv2d>())
    }

    /// Index of the first [`Conv2d`] in the stack, if any — the layer the
    /// deployment path swaps for its quantised wrapper.
    pub fn index_of_first_conv(&mut self) -> Option<usize> {
        self.layers
            .iter_mut()
            .position(|l| matches!(l.as_any_mut(), Some(a) if a.is::<Conv2d>()))
    }

    /// Replaces the layer at `index` (used to swap the first conv for its
    /// quantised deployment wrapper).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an out-of-range index.
    pub fn replace_layer(&mut self, index: usize, layer: Box<dyn Layer>) -> Result<()> {
        if index >= self.layers.len() {
            return Err(NnError::InvalidParameter(format!(
                "layer index {index} out of range ({} layers)",
                self.layers.len()
            )));
        }
        self.layers[index] = layer;
        Ok(())
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Snapshots every parameter (and batch-norm running statistic) into
    /// one flat vector — a checkpoint that [`Sequential::load_state`]
    /// restores into an identically-shaped model.
    #[must_use]
    pub fn save_state(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for layer in &self.layers {
            layer.export_parameters(&mut out);
        }
        out
    }

    /// Restores a snapshot produced by [`Sequential::save_state`] on a
    /// model with the same architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the snapshot does not
    /// match this model's parameter layout exactly.
    pub fn load_state(&mut self, state: &[f32]) -> Result<()> {
        let mut rest = state;
        for layer in &mut self.layers {
            rest = layer.import_parameters(rest)?;
        }
        if !rest.is_empty() {
            return Err(NnError::ShapeMismatch {
                expected: "exactly consumed snapshot".into(),
                got: vec![rest.len()],
            });
        }
        Ok(())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn apply_gradients(&mut self, update: &mut UpdateRule) {
        for layer in &mut self.layers {
            layer.apply_gradients(update);
        }
    }

    fn parameter_count(&self) -> usize {
        Sequential::parameter_count(self)
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn export_parameters(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.export_parameters(out);
        }
    }

    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        let mut rest = input;
        for layer in &mut self.layers {
            rest = layer.import_parameters(rest)?;
        }
        Ok(rest)
    }
}

/// A ResNet basic block: conv-bn-relu-conv-bn plus a (possibly projected)
/// shortcut, then ReLU.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    projection: Option<(Conv2d, BatchNorm2d)>,
    /// Cached post-sum pre-ReLU activations for the output ReLU backward.
    out_mask: Option<Vec<bool>>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("projected", &self.projection.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Builds a block mapping `in_ch → out_ch` at `stride`. A projection
    /// shortcut (1×1 conv + BN) is added automatically when the shapes
    /// change.
    ///
    /// # Errors
    ///
    /// Propagates constructor failures of the inner layers.
    pub fn new(in_ch: usize, out_ch: usize, stride: usize, seed: u64) -> Result<Self> {
        let projection = if stride != 1 || in_ch != out_ch {
            Some((
                Conv2d::with_seed(in_ch, out_ch, 1, stride, 0, seed ^ 0xABCD)?,
                BatchNorm2d::new(out_ch)?,
            ))
        } else {
            None
        };
        Ok(Self {
            conv1: Conv2d::with_seed(in_ch, out_ch, 3, stride, 1, seed)?,
            bn1: BatchNorm2d::new(out_ch)?,
            relu1: Relu::new(),
            conv2: Conv2d::with_seed(out_ch, out_ch, 3, 1, 1, seed ^ 0x1234)?,
            bn2: BatchNorm2d::new(out_ch)?,
            projection,
            out_mask: None,
        })
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, training: bool) -> Result<Tensor> {
        let main = self.conv1.forward(input, training)?;
        let main = self.bn1.forward(&main, training)?;
        let main = self.relu1.forward(&main, training)?;
        let main = self.conv2.forward(&main, training)?;
        let main = self.bn2.forward(&main, training)?;
        let skip = match &mut self.projection {
            Some((conv, bn)) => {
                let s = conv.forward(input, training)?;
                bn.forward(&s, training)?
            }
            None => input.clone(),
        };
        let sum = main.add(&skip)?;
        if training {
            self.out_mask = Some(sum.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        Ok(sum.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .out_mask
            .as_ref()
            .ok_or_else(|| NnError::InvalidState("residual backward before forward".into()))?;
        let mut g = grad_output.clone();
        for (v, &keep) in g.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        // Main path.
        let gm = self.bn2.backward(&g)?;
        let gm = self.conv2.backward(&gm)?;
        let gm = self.relu1.backward(&gm)?;
        let gm = self.bn1.backward(&gm)?;
        let gm = self.conv1.backward(&gm)?;
        // Shortcut path.
        let gs = match &mut self.projection {
            Some((conv, bn)) => {
                let t = bn.backward(&g)?;
                conv.backward(&t)?
            }
            None => g,
        };
        gm.add(&gs)
    }

    fn apply_gradients(&mut self, update: &mut UpdateRule) {
        self.conv1.apply_gradients(update);
        self.bn1.apply_gradients(update);
        self.conv2.apply_gradients(update);
        self.bn2.apply_gradients(update);
        if let Some((conv, bn)) = &mut self.projection {
            conv.apply_gradients(update);
            bn.apply_gradients(update);
        }
    }

    fn parameter_count(&self) -> usize {
        self.conv1.parameter_count()
            + self.bn1.parameter_count()
            + self.conv2.parameter_count()
            + self.bn2.parameter_count()
            + self
                .projection
                .as_ref()
                .map_or(0, |(c, b)| c.parameter_count() + b.parameter_count())
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn export_parameters(&self, out: &mut Vec<f32>) {
        self.conv1.export_parameters(out);
        self.bn1.export_parameters(out);
        self.conv2.export_parameters(out);
        self.bn2.export_parameters(out);
        if let Some((conv, bn)) = &self.projection {
            conv.export_parameters(out);
            bn.export_parameters(out);
        }
    }

    fn import_parameters<'a>(&mut self, input: &'a [f32]) -> Result<&'a [f32]> {
        let mut rest = self.conv1.import_parameters(input)?;
        rest = self.bn1.import_parameters(rest)?;
        rest = self.conv2.import_parameters(rest)?;
        rest = self.bn2.import_parameters(rest)?;
        if let Some((conv, bn)) = &mut self.projection {
            rest = conv.import_parameters(rest)?;
            rest = bn.import_parameters(rest)?;
        }
        Ok(rest)
    }
}

/// LeNet-style model for `img`-sized grayscale inputs (paper: MNIST).
///
/// # Errors
///
/// Propagates layer construction failures.
pub fn lenet(in_channels: usize, img: usize, classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new();
    m.push(Conv2d::with_seed(in_channels, 6, 3, 1, 1, seed)?);
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Conv2d::with_seed(6, 16, 3, 1, 1, seed + 1)?);
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Flatten::new());
    let spatial = img / 4;
    m.push(Linear::with_seed(16 * spatial * spatial, 64, seed + 2)?);
    m.push(Relu::new());
    m.push(Linear::with_seed(64, classes, seed + 3)?);
    Ok(m)
}

/// ResNet-style reduced model (paper: ResNet18 on SVHN / CIFAR-10).
///
/// Stem conv + three residual stages (one block each, 16→32→64 channels,
/// strides 1/2/2) + global average pooling + classifier.
///
/// # Errors
///
/// Propagates layer construction failures.
pub fn resnet_lite(in_channels: usize, classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new();
    m.push(Conv2d::with_seed(in_channels, 16, 3, 1, 1, seed)?);
    m.push(BatchNorm2d::new(16)?);
    m.push(Relu::new());
    m.push(ResidualBlock::new(16, 16, 1, seed + 10)?);
    m.push(ResidualBlock::new(16, 32, 2, seed + 20)?);
    m.push(ResidualBlock::new(32, 64, 2, seed + 30)?);
    m.push(GlobalAvgPool::new());
    m.push(Linear::with_seed(64, classes, seed + 40)?);
    Ok(m)
}

/// A plain MLP: flatten, then `hidden` dense+ReLU stages, then the
/// classifier — the workload class whose first layer OISA executes
/// through the VOM's chunked dot products (paper §III-A).
///
/// # Errors
///
/// Propagates layer construction failures.
pub fn mlp(
    in_channels: usize,
    img: usize,
    hidden: &[usize],
    classes: usize,
    seed: u64,
) -> Result<Sequential> {
    let mut m = Sequential::new();
    m.push(Flatten::new());
    let mut width = in_channels * img * img;
    for (i, &h) in hidden.iter().enumerate() {
        m.push(Linear::with_seed(width, h, seed + i as u64)?);
        m.push(Relu::new());
        width = h;
    }
    m.push(Linear::with_seed(
        width,
        classes,
        seed + hidden.len() as u64,
    )?);
    Ok(m)
}

/// VGG-style reduced model (paper: VGG16 on CIFAR-100).
///
/// Two stacked-3×3 groups with max-pooling, then the dense head.
///
/// # Errors
///
/// Propagates layer construction failures.
pub fn vgg_lite(in_channels: usize, img: usize, classes: usize, seed: u64) -> Result<Sequential> {
    let mut m = Sequential::new();
    m.push(Conv2d::with_seed(in_channels, 16, 3, 1, 1, seed)?);
    m.push(Relu::new());
    m.push(Conv2d::with_seed(16, 16, 3, 1, 1, seed + 1)?);
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Conv2d::with_seed(16, 32, 3, 1, 1, seed + 2)?);
    m.push(Relu::new());
    m.push(Conv2d::with_seed(32, 32, 3, 1, 1, seed + 3)?);
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Flatten::new());
    let spatial = img / 4;
    m.push(Linear::with_seed(32 * spatial * spatial, 128, seed + 4)?);
    m.push(Relu::new());
    m.push(Linear::with_seed(128, classes, seed + 5)?);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_forward_backward_chain() {
        let mut m = Sequential::new();
        m.push(Linear::with_seed(4, 3, 0).unwrap());
        m.push(Relu::new());
        m.push(Linear::with_seed(3, 2, 1).unwrap());
        let x = Tensor::he_normal(vec![2, 4], 4, 5);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        let g = m.backward(&Tensor::full(vec![2, 2], 1.0)).unwrap();
        assert_eq!(g.shape(), &[2, 4]);
    }

    #[test]
    fn first_conv_accessible() {
        let mut m = lenet(1, 28, 10, 0).unwrap();
        let conv = m.first_conv_mut().expect("lenet starts with conv");
        assert_eq!(conv.out_channels(), 6);
    }

    #[test]
    fn lenet_shapes() {
        let mut m = lenet(1, 28, 10, 0).unwrap();
        let y = m
            .forward(&Tensor::zeros(vec![2, 1, 28, 28]), false)
            .unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        assert!(m.parameter_count() > 1000);
    }

    #[test]
    fn resnet_lite_shapes() {
        let mut m = resnet_lite(3, 10, 0).unwrap();
        let y = m
            .forward(&Tensor::zeros(vec![1, 3, 32, 32]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn vgg_lite_shapes() {
        let mut m = vgg_lite(3, 32, 100, 0).unwrap();
        let y = m
            .forward(&Tensor::zeros(vec![1, 3, 32, 32]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 100]);
    }

    #[test]
    fn mlp_shapes_and_training() {
        let mut m = mlp(1, 8, &[32, 16], 4, 3).unwrap();
        let y = m.forward(&Tensor::zeros(vec![2, 1, 8, 8]), false).unwrap();
        assert_eq!(y.shape(), &[2, 4]);
        // Dense stack must be trainable end-to-end.
        let x = Tensor::he_normal(vec![2, 1, 8, 8], 64, 1);
        let out = m.forward(&x, true).unwrap();
        let g = m
            .backward(&Tensor::full(out.shape().to_vec(), 0.1))
            .unwrap();
        assert_eq!(g.shape(), &[2, 1, 8, 8]);
        // No hidden layers: flatten straight into the classifier.
        let mut flat = mlp(1, 8, &[], 4, 3).unwrap();
        let y = flat
            .forward(&Tensor::zeros(vec![1, 1, 8, 8]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 4]);
    }

    #[test]
    fn residual_block_identity_path_shapes() {
        let mut b = ResidualBlock::new(8, 8, 1, 3).unwrap();
        let x = Tensor::he_normal(vec![1, 8, 4, 4], 8, 1);
        let y = b.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let g = b.backward(&Tensor::full(y.shape().to_vec(), 1.0)).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn residual_block_projection_path_shapes() {
        let mut b = ResidualBlock::new(8, 16, 2, 3).unwrap();
        let x = Tensor::he_normal(vec![1, 8, 8, 8], 8, 1);
        let y = b.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
        let g = b.backward(&Tensor::full(y.shape().to_vec(), 1.0)).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn residual_gradient_reaches_input_through_both_paths() {
        // With an identity shortcut the input gradient must exceed what the
        // main path alone would deliver (the shortcut adds the output grad).
        let mut b = ResidualBlock::new(4, 4, 1, 9).unwrap();
        let x = Tensor::full(vec![1, 4, 2, 2], 0.5);
        let y = b.forward(&x, true).unwrap();
        let g = b.backward(&Tensor::full(y.shape().to_vec(), 1.0)).unwrap();
        // Shortcut contribution alone would be exactly 1 per active output;
        // check gradient is nonzero and finite everywhere.
        assert!(g.as_slice().iter().all(|v| v.is_finite()));
        assert!(g.max_abs() > 0.0);
    }

    #[test]
    fn replace_layer_bounds_checked() {
        let mut m = Sequential::new();
        m.push(Relu::new());
        assert!(m.replace_layer(1, Box::new(Relu::new())).is_err());
        assert!(m.replace_layer(0, Box::new(Relu::new())).is_ok());
    }

    #[test]
    fn state_round_trip_restores_behaviour() {
        let mut trained = resnet_lite(3, 10, 7).unwrap();
        // "Train" a little: nudge parameters through one update.
        let x = Tensor::he_normal(vec![2, 3, 16, 16], 48, 9);
        let y = trained.forward(&x, true).unwrap();
        let g = Tensor::full(y.shape().to_vec(), 0.1);
        let _ = trained.backward(&g).unwrap();
        trained.apply_gradients(&mut |p, grad, _m| {
            for (pi, gi) in p.iter_mut().zip(grad) {
                *pi -= 0.01 * gi;
            }
        });
        let state = trained.save_state();
        assert!(!state.is_empty());
        // A fresh model with a different seed behaves differently…
        let mut fresh = resnet_lite(3, 10, 999).unwrap();
        let before = fresh.forward(&x, false).unwrap();
        let reference = trained.forward(&x, false).unwrap();
        assert_ne!(before, reference);
        // …until the snapshot is loaded.
        fresh.load_state(&state).unwrap();
        let after = fresh.forward(&x, false).unwrap();
        for (a, b) in after.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn load_state_validates_length() {
        let mut m = lenet(1, 16, 10, 0).unwrap();
        let state = m.save_state();
        assert!(m.load_state(&state[..state.len() - 1]).is_err());
        let mut too_long = state.clone();
        too_long.push(0.0);
        assert!(m.load_state(&too_long).is_err());
        assert!(m.load_state(&state).is_ok());
    }

    #[test]
    fn debug_formats_layer_names() {
        let mut m = Sequential::new();
        m.push(Relu::new());
        m.push(Flatten::new());
        let s = format!("{m:?}");
        assert!(s.contains("relu") && s.contains("flatten"));
    }
}
