//! Hardware mapping and bank allocation (paper §III-B, Figs. 5 and 6).
//!
//! A convolution of `out_ch × in_ch` kernel planes must be placed onto
//! the OPC's arm slots:
//!
//! * **3×3** — one plane per arm, five planes per bank (`n = 5`);
//! * **5×5 / 7×7** — one plane per bank, spread over 3 / 5 arms whose
//!   partial sums the VOM re-aggregates (`n = 1`).
//!
//! When fewer planes exist than slots, the mapper replicates planes so
//! several *strides* (output positions) evaluate in parallel; when more
//! exist, the convolution runs in multiple passes with a re-mapping
//! (AWC tuning) phase between passes. Tuning is serialised over the 40
//! shared AWC units, 40 rings per iteration — a full 4000-ring map is the
//! paper's "100 iterations".

use oisa_optics::opc::{KernelSize, OpcConfig};
use serde::{Deserialize, Serialize};

use crate::{CoreError, Result};

/// A first-layer convolution workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvWorkload {
    /// Output channels (number of kernels).
    pub out_channels: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Kernel side (3, 5 or 7).
    pub kernel: usize,
    /// Input height.
    pub input_h: usize,
    /// Input width.
    pub input_w: usize,
    /// Stride of the convolution.
    pub stride: usize,
}

impl ConvWorkload {
    /// The paper's reference workload: the first layer of ResNet18 on a
    /// 128×128 sensor (64 kernels, 3 input channels, 7×7, stride 2).
    #[must_use]
    pub fn resnet18_first_layer() -> Self {
        Self {
            out_channels: 64,
            in_channels: 3,
            kernel: 7,
            input_h: 128,
            input_w: 128,
            stride: 2,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.out_channels == 0 || self.in_channels == 0 || self.stride == 0 {
            return Err(CoreError::InvalidParameter(
                "channels and stride must be positive".into(),
            ));
        }
        if self.input_h < self.kernel || self.input_w < self.kernel {
            return Err(CoreError::InvalidParameter(format!(
                "input {}x{} smaller than kernel {}",
                self.input_h, self.input_w, self.kernel
            )));
        }
        Ok(())
    }

    /// Output feature-map size `(h, w)` (valid padding, as the pixel
    /// plane feeds the OPC directly).
    #[must_use]
    pub fn output_size(&self) -> (usize, usize) {
        (
            (self.input_h - self.kernel) / self.stride + 1,
            (self.input_w - self.kernel) / self.stride + 1,
        )
    }

    /// Kernel planes to map (`out_ch × in_ch`).
    #[must_use]
    pub fn kernel_planes(&self) -> usize {
        self.out_channels * self.in_channels
    }

    /// Total elementwise MACs per frame.
    #[must_use]
    pub fn macs_per_frame(&self) -> u64 {
        let (oh, ow) = self.output_size();
        (oh * ow * self.kernel_planes() * self.kernel * self.kernel) as u64
    }
}

/// The computed placement of a workload onto the OPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingPlan {
    /// Kernel size class.
    pub kernel_size_class: usize,
    /// Kernel-plane slots available per pass.
    pub slots_per_pass: usize,
    /// Mapping passes needed (re-tunings of the whole array).
    pub passes: usize,
    /// Distinct kernel planes resident in the final pass.
    pub planes_last_pass: usize,
    /// Output positions evaluated in parallel each cycle.
    pub parallel_positions: usize,
    /// Compute cycles per pass.
    pub cycles_per_pass: usize,
    /// Rings programmed per pass (≤ 4000).
    pub rings_per_pass: usize,
    /// AWC tuning iterations per pass (40 rings each with the paper
    /// config).
    pub tuning_iterations_per_pass: usize,
    /// Elementwise MACs retired per cycle (the paper's `f·(n·K²)` when
    /// the array is full).
    pub macs_per_cycle: usize,
}

impl MappingPlan {
    /// Computes the placement of `workload` on `opc`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unmappable`] for unsupported kernel sizes and
    /// [`CoreError::InvalidParameter`] for degenerate workloads.
    pub fn compute(workload: &ConvWorkload, opc: &OpcConfig) -> Result<Self> {
        workload.validate()?;
        let k = KernelSize::from_k(workload.kernel)
            .map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let slots_per_pass = opc.banks * k.kernels_per_bank();
        let planes = workload.kernel_planes();
        let passes = planes.div_ceil(slots_per_pass);
        let planes_last_pass = planes - (passes - 1) * slots_per_pass;
        // When planes don't fill the array, replicate them to evaluate
        // several strides in parallel (only meaningful for full passes).
        let parallel_positions = if passes == 1 {
            (slots_per_pass / planes).max(1)
        } else {
            1
        };
        let (oh, ow) = workload.output_size();
        let positions = oh * ow;
        let cycles_per_pass = positions.div_ceil(parallel_positions);
        let resident_planes = planes.min(slots_per_pass);
        let rings_per_pass = resident_planes
            * parallel_positions
                .min(slots_per_pass / resident_planes.max(1))
                .max(1)
            * k.weights();
        let rings_per_pass = rings_per_pass.min(opc.total_rings());
        Ok(Self {
            kernel_size_class: k.k(),
            slots_per_pass,
            passes,
            planes_last_pass,
            parallel_positions,
            cycles_per_pass,
            rings_per_pass,
            tuning_iterations_per_pass: opc.tuning_iterations(rings_per_pass),
            macs_per_cycle: opc.macs_per_cycle(k),
        })
    }

    /// Total compute cycles over all passes.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.passes as u64 * self.cycles_per_pass as u64
    }

    /// Total AWC tuning iterations over all passes.
    #[must_use]
    pub fn total_tuning_iterations(&self) -> u64 {
        self.passes as u64 * self.tuning_iterations_per_pass as u64
    }
}

/// Assigns kernel-plane indices to `(bank, first_arm)` slots for one
/// pass, in placement order. `plane_count` planes are placed; each takes
/// [`KernelSize::arms_per_kernel`] consecutive arms.
///
/// # Errors
///
/// Returns [`CoreError::Unmappable`] when the planes do not fit.
pub fn assign_slots(
    plane_count: usize,
    kernel: KernelSize,
    opc: &OpcConfig,
) -> Result<Vec<(usize, usize)>> {
    let per_bank = kernel.kernels_per_bank();
    let capacity = opc.banks * per_bank;
    if plane_count > capacity {
        return Err(CoreError::Unmappable(format!(
            "{plane_count} planes exceed {capacity} slots"
        )));
    }
    let arms_each = kernel.arms_per_kernel();
    Ok((0..plane_count)
        .map(|i| {
            let bank = i / per_bank;
            let slot_in_bank = i % per_bank;
            (bank, slot_in_bank * arms_each)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_opc() -> OpcConfig {
        OpcConfig::paper_default()
    }

    #[test]
    fn resnet_first_layer_plan_matches_paper_iterations() {
        // 64 × 3 = 192 7×7 planes on 80 bank slots → 3 passes; a full pass
        // programs 80 × 49 = 3920 rings → 98 iterations ≈ the paper's 100
        // (which quotes the full 4000-ring array).
        let plan =
            MappingPlan::compute(&ConvWorkload::resnet18_first_layer(), &paper_opc()).unwrap();
        assert_eq!(plan.kernel_size_class, 7);
        assert_eq!(plan.slots_per_pass, 80);
        assert_eq!(plan.passes, 3);
        assert_eq!(plan.planes_last_pass, 32);
        assert_eq!(plan.rings_per_pass, 3920);
        assert_eq!(plan.tuning_iterations_per_pass, 98);
        assert_eq!(plan.macs_per_cycle, 3920);
        // Full-array map = exactly 100 iterations.
        assert_eq!(paper_opc().tuning_iterations(4000), 100);
    }

    #[test]
    fn small_3x3_workload_replicates_positions() {
        let w = ConvWorkload {
            out_channels: 8,
            in_channels: 1,
            kernel: 3,
            input_h: 16,
            input_w: 16,
            stride: 1,
        };
        let plan = MappingPlan::compute(&w, &paper_opc()).unwrap();
        assert_eq!(plan.slots_per_pass, 400);
        assert_eq!(plan.passes, 1);
        // 400 slots / 8 planes = 50 positions in parallel.
        assert_eq!(plan.parallel_positions, 50);
        // 14×14 = 196 positions / 50 → 4 cycles.
        assert_eq!(plan.cycles_per_pass, 4);
    }

    #[test]
    fn oversubscribed_3x3_needs_passes() {
        let w = ConvWorkload {
            out_channels: 256,
            in_channels: 3,
            kernel: 3,
            input_h: 32,
            input_w: 32,
            stride: 1,
        };
        let plan = MappingPlan::compute(&w, &paper_opc()).unwrap();
        // 768 planes / 400 slots = 2 passes.
        assert_eq!(plan.passes, 2);
        assert_eq!(plan.planes_last_pass, 368);
        assert_eq!(plan.parallel_positions, 1);
        assert_eq!(plan.total_cycles(), 2 * 30 * 30);
    }

    #[test]
    fn five_by_five_uses_bank_slots() {
        let w = ConvWorkload {
            out_channels: 16,
            in_channels: 1,
            kernel: 5,
            input_h: 32,
            input_w: 32,
            stride: 1,
        };
        let plan = MappingPlan::compute(&w, &paper_opc()).unwrap();
        assert_eq!(plan.slots_per_pass, 80);
        assert_eq!(plan.passes, 1);
        assert_eq!(plan.parallel_positions, 5);
        assert_eq!(plan.macs_per_cycle, 2000);
    }

    #[test]
    fn unsupported_kernel_rejected() {
        let w = ConvWorkload {
            out_channels: 1,
            in_channels: 1,
            kernel: 4,
            input_h: 16,
            input_w: 16,
            stride: 1,
        };
        assert!(matches!(
            MappingPlan::compute(&w, &paper_opc()),
            Err(CoreError::Unmappable(_))
        ));
    }

    #[test]
    fn degenerate_workloads_rejected() {
        let mut w = ConvWorkload::resnet18_first_layer();
        w.out_channels = 0;
        assert!(MappingPlan::compute(&w, &paper_opc()).is_err());
        let mut w = ConvWorkload::resnet18_first_layer();
        w.input_h = 3;
        assert!(MappingPlan::compute(&w, &paper_opc()).is_err());
    }

    #[test]
    fn output_size_and_mac_count() {
        let w = ConvWorkload::resnet18_first_layer();
        assert_eq!(w.output_size(), (61, 61));
        assert_eq!(w.macs_per_frame(), 61 * 61 * 64 * 3 * 49);
    }

    #[test]
    fn slot_assignment_3x3() {
        let slots = assign_slots(12, KernelSize::K3, &paper_opc()).unwrap();
        assert_eq!(slots.len(), 12);
        // Five planes per bank, one arm each.
        assert_eq!(slots[0], (0, 0));
        assert_eq!(slots[4], (0, 4));
        assert_eq!(slots[5], (1, 0));
        assert_eq!(slots[11], (2, 1));
    }

    #[test]
    fn slot_assignment_7x7_uses_whole_banks() {
        let slots = assign_slots(3, KernelSize::K7, &paper_opc()).unwrap();
        assert_eq!(slots, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn slot_assignment_capacity_checked() {
        assert!(assign_slots(401, KernelSize::K3, &paper_opc()).is_err());
        assert!(assign_slots(81, KernelSize::K7, &paper_opc()).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every mappable workload's plan covers all kernel planes:
            /// full passes hold `slots_per_pass`, the final pass the rest.
            #[test]
            fn plan_covers_all_planes(
                out_channels in 1usize..300,
                in_channels in 1usize..4,
                k_idx in 0usize..3,
                side in 8usize..64,
            ) {
                let kernel = [3usize, 5, 7][k_idx];
                prop_assume!(side >= kernel);
                let w = ConvWorkload {
                    out_channels,
                    in_channels,
                    kernel,
                    input_h: side,
                    input_w: side,
                    stride: 1,
                };
                let plan = MappingPlan::compute(&w, &paper_opc()).unwrap();
                let covered =
                    (plan.passes - 1) * plan.slots_per_pass + plan.planes_last_pass;
                prop_assert_eq!(covered, w.kernel_planes());
                prop_assert!(plan.planes_last_pass <= plan.slots_per_pass);
                prop_assert!(plan.planes_last_pass >= 1);
            }

            /// Cycles per pass cover every output position given the
            /// replication factor.
            #[test]
            fn cycles_cover_positions(
                out_channels in 1usize..64,
                side in 9usize..48,
            ) {
                let w = ConvWorkload {
                    out_channels,
                    in_channels: 1,
                    kernel: 3,
                    input_h: side,
                    input_w: side,
                    stride: 1,
                };
                let plan = MappingPlan::compute(&w, &paper_opc()).unwrap();
                let (oh, ow) = w.output_size();
                prop_assert!(
                    plan.cycles_per_pass * plan.parallel_positions >= oh * ow
                );
                // No over-provisioning beyond one cycle's worth.
                prop_assert!(
                    (plan.cycles_per_pass - 1) * plan.parallel_positions < oh * ow
                );
            }

            /// Slot assignments never collide and never exceed the bank
            /// count.
            #[test]
            fn slot_assignments_disjoint(
                planes in 1usize..=80,
                k_idx in 0usize..3,
            ) {
                let kernel = [KernelSize::K3, KernelSize::K5, KernelSize::K7][k_idx];
                let slots = assign_slots(planes, kernel, &paper_opc()).unwrap();
                let mut seen = std::collections::HashSet::new();
                for &(bank, arm) in &slots {
                    prop_assert!(bank < 80);
                    prop_assert!(arm < 5);
                    prop_assert!(seen.insert((bank, arm)), "slot collision");
                }
                // Multi-arm kernels must not overlap each other's arms.
                let arms_each = kernel.arms_per_kernel();
                for &(_bank, first_arm) in &slots {
                    prop_assert!(first_arm + arms_each <= 5);
                }
            }

            /// Tuning iterations are exactly ⌈rings / awc_units⌉ for any
            /// ring count.
            #[test]
            fn tuning_iteration_formula(rings in 0usize..8000) {
                let opc = paper_opc();
                prop_assert_eq!(
                    opc.tuning_iterations(rings),
                    rings.div_ceil(40)
                );
            }
        }
    }
}
