//! Async serving front end over the [`ComputeBackend`] seam.
//!
//! The OISA paper positions the accelerator as the first stage of an
//! edge deployment: sensors capture frames continuously and the
//! in-sensor layer must keep up with the *stream*, not with one
//! `convolve_frame` call at a time. [`ServingEngine`] models exactly
//! that deployment boundary: callers submit captured [`Frame`]s from
//! any thread and get a [`FrameHandle`] back immediately; a dedicated
//! worker thread groups pending frames into [`InferenceJob`]s and runs
//! them through whatever [`ComputeBackend`] the engine fronts —
//! a [`LocalBackend`] (one accelerator, the work-stealing scheduler in
//! [`crate::scheduler`] underneath) by default, or a
//! [`ShardedBackend`](crate::backend::ShardedBackend) for multi-host
//! serving, via [`ServingEngine::with_backend`]. Fronting a
//! [`FleetSupervisor`](crate::backend::FleetSupervisor) instead makes
//! the served fleet *self-healing*: a worker dying mid-batch is
//! quarantined and its shard re-run on a promoted spare (or re-planned
//! across the survivors) inside the same job, so submitters never see
//! the failure — and the reports stay bit-identical.
//!
//! # Batching policy — the latency/throughput knobs
//!
//! A batch launches when the **first** of these fires:
//!
//! * **size** — [`ServingConfig::max_batch`] frames are pending
//!   (throughput-optimal: weight passes are staged once per batch);
//! * **deadline** — the oldest pending frame has waited
//!   [`ServingConfig::deadline`] (bounds tail latency under light
//!   traffic: a lone frame never waits longer than the deadline for
//!   company);
//! * **drain** — shutdown was requested, so everything still queued
//!   runs in final batches of at most `max_batch` frames.
//!
//! [`ServingConfig::queue_depth`] bounds the pending queue. When it is
//! full, [`ServingEngine::submit`] blocks (backpressure propagates to
//! the producer, as a real sensor pipeline would drop to a lower frame
//! rate) and [`ServingEngine::try_submit`] returns the frame back via
//! [`SubmitError::Backpressure`] so the caller can shed load instead.
//!
//! # Determinism
//!
//! Batching never changes the physics. Every accepted frame keys its
//! own noise epoch — reserved contiguously, in submission order, by the
//! checked [`reserve_epochs`](oisa_device::noise::NoiseSource::reserve_epochs)
//! inside `convolve_frames` — so the reports coming out of a serving
//! engine are **bit-identical** to calling
//! [`OisaAccelerator::convolve_frame_sequential`] once per frame, in
//! submission order, on the same accelerator. Batch boundaries (one
//! batch of 8, or 3 + 5, or 8 singles) are invisible in the results;
//! they move wall clock only. This is the same guarantee the batch
//! engine itself makes, inherited wholesale.
//!
//! Epoch exhaustion is a checked error: a serving process that
//! somehow burned through all 2⁶⁴ epochs gets `Err` reports, never a
//! silent collision with an earlier frame's noise streams.
//!
//! # When to prefer the serving engine over direct `convolve_frames`
//!
//! Call [`OisaAccelerator::convolve_frames`] directly when the batch
//! already exists (offline sweeps, accuracy studies). Use
//! [`ServingEngine`] when frames *arrive over time* and you want the
//! deadline/size trade-off handled for you — it is the seed of the
//! multi-host sharding deployment: a coordinator can front several
//! engines, one per node, because epoch keying makes every shard's
//! physics reproducible.
//!
//! # Example
//!
//! ```
//! use oisa_core::serving::{ServingConfig, ServingEngine};
//! use oisa_core::{OisaAccelerator, OisaConfig};
//! use oisa_sensor::Frame;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let accel = OisaAccelerator::new(OisaConfig::small_test())?;
//! let kernels = vec![vec![0.25f32; 9]];
//! let engine = ServingEngine::new(accel, kernels, 3, ServingConfig::default())?;
//! let handle = engine.submit(Frame::constant(16, 16, 0.8)?).map_err(Box::new)?;
//! let report = handle.wait()?;
//! assert_eq!(report.output.len(), 1);
//! let (backend, stats) = engine.shutdown();
//! let _accel = backend.into_accelerator();
//! assert_eq!(stats.frames_completed, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use oisa_sensor::frame::Frame;

use crate::accelerator::{ConvolutionReport, OisaAccelerator};
use crate::backend::{ComputeBackend, LocalBackend};
use crate::error::OisaError;
use crate::wire::InferenceJob;
use crate::CoreError;

/// Knobs of the serving front end. See the module docs for how the
/// three interact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Largest batch handed to the engine in one call (≥ 1). Reaching
    /// this many pending frames launches a batch immediately.
    pub max_batch: usize,
    /// Longest the *oldest* pending frame waits before its batch
    /// launches anyway, however small. `Duration::MAX` disables the
    /// deadline (batches form only on size or drain).
    pub deadline: Duration,
    /// Bound on the pending queue (≥ 1). A full queue blocks
    /// [`ServingEngine::submit`] and bounces
    /// [`ServingEngine::try_submit`].
    pub queue_depth: usize,
}

impl Default for ServingConfig {
    /// Frame-rate-friendly defaults: batches of 8, a 2 ms deadline and
    /// room for 64 pending frames.
    fn default() -> Self {
        Self {
            max_batch: 8,
            deadline: Duration::from_millis(2),
            queue_depth: 64,
        }
    }
}

/// Result alias for serving-path operations: everything surfaces the
/// unified [`OisaError`].
type ServeResult<T> = std::result::Result<T, OisaError>;

impl ServingConfig {
    /// Rejects degenerate configurations.
    fn validate(&self) -> crate::Result<()> {
        if self.max_batch == 0 {
            return Err(CoreError::InvalidParameter(
                "serving max_batch must be at least 1".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(CoreError::InvalidParameter(
                "serving queue_depth must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Why [`ServingEngine::submit`] / [`ServingEngine::try_submit`]
/// declined a frame. Variants that never enqueued the frame hand it
/// back so the caller can retry or shed it without a copy.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at [`ServingConfig::queue_depth`]
    /// ([`ServingEngine::try_submit`] only — the blocking path waits).
    Backpressure(Frame),
    /// The engine is shutting down and accepts no new frames.
    ShutDown(Frame),
    /// The frame does not match the accelerator's imager.
    Rejected(CoreError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Backpressure(_) => write!(f, "serving queue full (backpressure)"),
            Self::ShutDown(_) => write!(f, "serving engine is shutting down"),
            Self::Rejected(e) => write!(f, "frame rejected: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What launched a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchTrigger {
    Size,
    Deadline,
    Drain,
}

/// Completion handle for one submitted frame.
///
/// The handle resolves exactly once: either with the frame's
/// [`ConvolutionReport`] or with the error its batch hit. Every
/// accepted frame is resolved, including frames still queued when
/// [`ServingEngine::shutdown`] is called (the worker drains the queue
/// before exiting).
#[derive(Debug)]
pub struct FrameHandle {
    slot: Arc<Slot>,
    /// Set once [`FrameHandle::try_take`] has consumed the result, so a
    /// later [`FrameHandle::wait`] fails fast instead of parking on a
    /// condvar that will never fire again.
    taken: bool,
}

impl FrameHandle {
    /// Blocks until the frame's batch has run, then returns its report.
    ///
    /// # Errors
    ///
    /// The [`OisaError`] the frame's batch hit, if any, or
    /// [`CoreError::InvalidParameter`] (wrapped) when the result was
    /// already consumed through [`FrameHandle::try_take`].
    pub fn wait(self) -> ServeResult<ConvolutionReport> {
        if self.taken {
            return Err(CoreError::InvalidParameter(
                "serving result was already taken from this handle".into(),
            )
            .into());
        }
        let mut result = self
            .slot
            .result
            .lock()
            .expect("serving: poisoned result slot");
        loop {
            if let Some(r) = result.take() {
                return r;
            }
            result = self
                .slot
                .ready
                .wait(result)
                .expect("serving: poisoned result slot");
        }
    }

    /// Whether the result is available and not yet taken (non-blocking).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        !self.taken
            && self
                .slot
                .result
                .lock()
                .expect("serving: poisoned result slot")
                .is_some()
    }

    /// Takes the result if it is available, leaving the handle empty
    /// (non-blocking poll counterpart of [`FrameHandle::wait`]).
    pub fn try_take(&mut self) -> Option<ServeResult<ConvolutionReport>> {
        if self.taken {
            return None;
        }
        let result = self
            .slot
            .result
            .lock()
            .expect("serving: poisoned result slot")
            .take();
        self.taken = result.is_some();
        result
    }
}

/// One-shot mailbox a request's result lands in.
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<ServeResult<ConvolutionReport>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfil(&self, r: ServeResult<ConvolutionReport>) {
        *self.result.lock().expect("serving: poisoned result slot") = Some(r);
        self.ready.notify_all();
    }
}

/// A pending frame: its payload, its mailbox and when it arrived.
#[derive(Debug)]
struct Request {
    frame: Frame,
    slot: Arc<Slot>,
    enqueued: Instant,
}

/// Queue state behind the submission mutex.
#[derive(Debug)]
struct QueueState {
    pending: VecDeque<Request>,
    shutting_down: bool,
}

/// Percentile samples kept per engine: beyond this many waits the
/// recorder becomes a ring buffer over the most recent window, so a
/// long-lived server never grows unboundedly. Sized so snapshotting
/// the window (a copy taken under the stats lock the worker shares)
/// stays a sub-millisecond memcpy.
const WAIT_WINDOW: usize = 1 << 16;

/// Accumulated counters behind the stats mutex.
#[derive(Debug)]
struct StatsInner {
    frames_completed: u64,
    batches_run: u64,
    deadline_batches: u64,
    size_batches: u64,
    drain_batches: u64,
    /// Index = batch size (0 unused), length `max_batch + 1`.
    batch_size_counts: Vec<u64>,
    /// Ring buffer of observed queue waits in microseconds.
    waits_us: Vec<u64>,
    wait_cursor: usize,
    wait_max_us: u64,
    started: Option<Instant>,
    last_done: Option<Instant>,
}

impl StatsInner {
    fn new(max_batch: usize) -> Self {
        Self {
            frames_completed: 0,
            batches_run: 0,
            deadline_batches: 0,
            size_batches: 0,
            drain_batches: 0,
            batch_size_counts: vec![0; max_batch + 1],
            waits_us: Vec::new(),
            wait_cursor: 0,
            wait_max_us: 0,
            started: None,
            last_done: None,
        }
    }

    fn record_wait(&mut self, wait: Duration) {
        let us = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
        self.wait_max_us = self.wait_max_us.max(us);
        if self.waits_us.len() < WAIT_WINDOW {
            self.waits_us.push(us);
        } else {
            self.waits_us[self.wait_cursor] = us;
            self.wait_cursor = (self.wait_cursor + 1) % WAIT_WINDOW;
        }
    }
}

/// Point-in-time snapshot of a [`ServingEngine`]'s behaviour, from
/// [`ServingEngine::stats`] (any time) or [`ServingEngine::shutdown`]
/// (final).
///
/// Queue-wait percentiles are exact over the most recent 2¹⁶ requests
/// (a sliding window, so week-old traffic does not mask a current
/// regression); `queue_wait_max_us` is exact over the engine's whole
/// lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingStats {
    /// Frames whose batches have completed (successfully or not).
    pub frames_completed: u64,
    /// Batches handed to the engine.
    pub batches_run: u64,
    /// Batches launched by the deadline elapsing.
    pub deadline_batches: u64,
    /// Batches launched by reaching `max_batch`.
    pub size_batches: u64,
    /// Batches launched by the shutdown drain.
    pub drain_batches: u64,
    /// `batch_size_histogram[s]` = number of batches of exactly `s`
    /// frames (index 0 unused); length is `max_batch + 1`.
    pub batch_size_histogram: Vec<u64>,
    /// Median time a frame spent queued before its batch launched, µs.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile queue wait, µs.
    pub queue_wait_p99_us: f64,
    /// Worst queue wait ever observed, µs.
    pub queue_wait_max_us: f64,
    /// Completed frames per second of serving wall clock (first batch
    /// launch → last batch completion); 0 until a batch completes.
    pub frames_per_sec: f64,
    /// Frames pending in the queue right now.
    pub queued: usize,
}

/// Exact nearest-rank percentile over an ascending-sorted sample
/// window — callers must sort first.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Everything the submitters and the worker share.
#[derive(Debug)]
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled on enqueue and on shutdown (worker wakes).
    submitted: Condvar,
    /// Signalled on dequeue and on shutdown (blocked submitters wake).
    space: Condvar,
    stats: Mutex<StatsInner>,
    config: ServingConfig,
}

/// The serving front end. See the module docs.
///
/// Generic over the [`ComputeBackend`] that executes the batches; the
/// engine owns the backend for its lifetime (the worker thread needs
/// `&mut` access) and [`ServingEngine::shutdown`] hands it back so
/// callers can verify or reuse its state (for a [`LocalBackend`],
/// [`LocalBackend::into_accelerator`] recovers the accelerator).
///
/// # Examples
///
/// Submit one frame, wait its handle, shut down cleanly:
///
/// ```
/// use oisa_core::serving::{ServingConfig, ServingEngine};
/// use oisa_core::{OisaAccelerator, OisaConfig};
/// use oisa_sensor::Frame;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let accel = OisaAccelerator::new(OisaConfig::small_test())?;
/// let kernels = vec![vec![0.25f32; 9], vec![-0.5f32; 9]];
/// let engine = ServingEngine::new(accel, kernels, 3, ServingConfig::default())?;
///
/// let handle = engine.submit(Frame::constant(16, 16, 0.8)?)?;
/// let report = handle.wait()?; // blocks until the frame's batch ran
/// assert_eq!(report.output.len(), 2); // one feature map per kernel
///
/// let (_backend, stats) = engine.shutdown();
/// assert_eq!(stats.frames_completed, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServingEngine<B: ComputeBackend + 'static = LocalBackend> {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<B>>,
    frame_width: usize,
    frame_height: usize,
}

impl ServingEngine<LocalBackend> {
    /// Spawns the worker thread and starts serving on this host —
    /// shorthand for [`ServingEngine::with_backend`] over a
    /// [`LocalBackend`] wrapping `accel`.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::with_backend`].
    pub fn new(
        accel: OisaAccelerator,
        kernels: Vec<Vec<f32>>,
        k: usize,
        config: ServingConfig,
    ) -> ServeResult<Self> {
        Self::with_backend(LocalBackend::from_accelerator(accel), kernels, k, config)
    }
}

impl<B: ComputeBackend + 'static> ServingEngine<B> {
    /// Spawns the worker thread and starts serving over `backend`.
    ///
    /// The kernel set is fixed for the engine's lifetime — a deployed
    /// first layer, in the paper's framing — so per-request work is
    /// frames only, weight staging amortises across whole batches, and
    /// a sharded backend's workers can reproduce fabric entry states
    /// without per-request coordination.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] (wrapped in [`OisaError`])
    ///   for a degenerate [`ServingConfig`] or empty/ill-sized kernels.
    /// * [`CoreError::Unmappable`] when the kernels do not fit the
    ///   backend's OPC ([`ComputeBackend::check_workload`] — failing at
    ///   construction, not on the first submitted frame).
    pub fn with_backend(
        backend: B,
        kernels: Vec<Vec<f32>>,
        k: usize,
        config: ServingConfig,
    ) -> ServeResult<Self> {
        config.validate()?;
        backend.check_workload(&kernels, k)?;
        let (frame_width, frame_height) = backend.frame_dims();

        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::with_capacity(config.queue_depth),
                shutting_down: false,
            }),
            submitted: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(StatsInner::new(config.max_batch)),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("oisa-serving".into())
            .spawn(move || worker_loop(backend, kernels, k, &worker_shared))
            .map_err(|e| {
                OisaError::from(CoreError::InvalidParameter(format!(
                    "cannot spawn serving worker: {e}"
                )))
            })?;
        Ok(Self {
            shared,
            worker: Some(worker),
            frame_width,
            frame_height,
        })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.shared.config
    }

    /// Submits a frame, blocking while the queue is at
    /// [`ServingConfig::queue_depth`] (backpressure).
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Rejected`] — frame/imager dimension mismatch.
    /// * [`SubmitError::ShutDown`] — the engine is shutting down.
    pub fn submit(&self, frame: Frame) -> std::result::Result<FrameHandle, SubmitError> {
        self.enqueue(frame, true)
    }

    /// Non-blocking [`ServingEngine::submit`]: a full queue returns the
    /// frame immediately via [`SubmitError::Backpressure`] so the
    /// caller can shed load.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::submit`], plus [`SubmitError::Backpressure`].
    pub fn try_submit(&self, frame: Frame) -> std::result::Result<FrameHandle, SubmitError> {
        self.enqueue(frame, false)
    }

    fn enqueue(&self, frame: Frame, block: bool) -> std::result::Result<FrameHandle, SubmitError> {
        if frame.width() != self.frame_width || frame.height() != self.frame_height {
            return Err(SubmitError::Rejected(CoreError::InvalidParameter(format!(
                "frame is {}x{} but the imager is {}x{}",
                frame.width(),
                frame.height(),
                self.frame_width,
                self.frame_height
            ))));
        }
        // Allocate the slot before taking the queue mutex: the worker
        // contends on it for every batch, so the critical section
        // should only cover the push itself.
        let slot = Arc::new(Slot::new());
        let mut queue = self.shared.queue.lock().expect("serving: poisoned queue");
        loop {
            if queue.shutting_down {
                return Err(SubmitError::ShutDown(frame));
            }
            if queue.pending.len() < self.shared.config.queue_depth {
                break;
            }
            if !block {
                return Err(SubmitError::Backpressure(frame));
            }
            queue = self
                .shared
                .space
                .wait(queue)
                .expect("serving: poisoned queue");
        }
        queue.pending.push_back(Request {
            frame,
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
        });
        drop(queue);
        self.shared.submitted.notify_all();
        Ok(FrameHandle { slot, taken: false })
    }

    /// Snapshot of the engine's counters and latency distribution.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        let queued = self
            .shared
            .queue
            .lock()
            .expect("serving: poisoned queue")
            .pending
            .len();
        // Copy out under the lock, sort after releasing it: the worker
        // takes this mutex around every batch, and sorting a full 2²⁰
        // wait window while holding it would add the sort to served
        // frames' tail latency every time a monitor polls.
        let (mut waits, snapshot) = {
            let inner = self.shared.stats.lock().expect("serving: poisoned stats");
            let frames_per_sec = match (inner.started, inner.last_done) {
                (Some(start), Some(done)) if done > start => {
                    inner.frames_completed as f64 / (done - start).as_secs_f64()
                }
                _ => 0.0,
            };
            (
                inner.waits_us.clone(),
                ServingStats {
                    frames_completed: inner.frames_completed,
                    batches_run: inner.batches_run,
                    deadline_batches: inner.deadline_batches,
                    size_batches: inner.size_batches,
                    drain_batches: inner.drain_batches,
                    batch_size_histogram: inner.batch_size_counts.clone(),
                    queue_wait_p50_us: 0.0,
                    queue_wait_p99_us: 0.0,
                    queue_wait_max_us: inner.wait_max_us as f64,
                    frames_per_sec,
                    queued,
                },
            )
        };
        waits.sort_unstable();
        ServingStats {
            queue_wait_p50_us: percentile_us(&waits, 0.50),
            queue_wait_p99_us: percentile_us(&waits, 0.99),
            ..snapshot
        }
    }

    /// Stops accepting frames, drains every pending batch, joins the
    /// worker and returns the backend (a [`LocalBackend`] comes back
    /// with its accelerator in exactly the state a sequential per-frame
    /// loop over all served frames would leave it) together with the
    /// final stats.
    ///
    /// Handles for frames that were queued at shutdown resolve normally.
    #[must_use]
    pub fn shutdown(mut self) -> (B, ServingStats) {
        let backend = self
            .shutdown_inner()
            .expect("serving: worker already joined");
        let stats = self.stats();
        (backend, stats)
    }

    fn shutdown_inner(&mut self) -> Option<B> {
        let worker = self.worker.take()?;
        self.shared
            .queue
            .lock()
            .expect("serving: poisoned queue")
            .shutting_down = true;
        self.shared.submitted.notify_all();
        self.shared.space.notify_all();
        Some(worker.join().expect("serving: worker thread panicked"))
    }
}

impl<B: ComputeBackend + 'static> Drop for ServingEngine<B> {
    /// Dropping without [`ServingEngine::shutdown`] still drains the
    /// queue and resolves every outstanding handle.
    fn drop(&mut self) {
        drop(self.shutdown_inner());
    }
}

/// Blocks until a batch is ready (size, deadline or drain) and takes it
/// off the queue; `None` once the queue is empty and shut down.
fn next_batch(shared: &Shared) -> Option<(Vec<Request>, BatchTrigger)> {
    let config = &shared.config;
    let mut queue: MutexGuard<'_, QueueState> =
        shared.queue.lock().expect("serving: poisoned queue");
    loop {
        if queue.pending.is_empty() {
            if queue.shutting_down {
                return None;
            }
            queue = shared
                .submitted
                .wait(queue)
                .expect("serving: poisoned queue");
            continue;
        }
        // The oldest pending frame anchors the deadline; `checked_add`
        // turns `Duration::MAX` into "no deadline". The emptiness
        // re-check costs nothing and keeps this loop panic-free.
        let deadline = match queue.pending.front() {
            Some(oldest) => oldest.enqueued.checked_add(config.deadline),
            None => continue,
        };
        let trigger = loop {
            if queue.pending.len() >= config.max_batch {
                break BatchTrigger::Size;
            }
            if queue.shutting_down {
                break BatchTrigger::Drain;
            }
            match deadline {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        break BatchTrigger::Deadline;
                    }
                    let (guard, _) = shared
                        .submitted
                        .wait_timeout(queue, at - now)
                        .expect("serving: poisoned queue");
                    queue = guard;
                }
                None => {
                    queue = shared
                        .submitted
                        .wait(queue)
                        .expect("serving: poisoned queue");
                }
            }
        };
        let take = queue.pending.len().min(config.max_batch);
        let batch: Vec<Request> = queue.pending.drain(..take).collect();
        return Some((batch, trigger));
    }
}

/// The worker thread: form batch → build an [`InferenceJob`] → run it
/// through the backend → resolve handles → account, until drained and
/// shut down. Returns the backend so `shutdown` can hand it back.
fn worker_loop<B: ComputeBackend>(
    mut backend: B,
    kernels: Vec<Vec<f32>>,
    k: usize,
    shared: &Shared,
) -> B {
    let mut next_job_id = 0u64;
    // The deployed kernel set is moved into each batch's job and
    // reclaimed afterwards, so the latency-critical loop never deep-
    // clones the weights.
    let mut kernel_set = kernels;
    while let Some((batch, trigger)) = next_batch(shared) {
        // Space freed — wake blocked submitters before computing.
        shared.space.notify_all();
        let launched = Instant::now();
        let mut frames = Vec::with_capacity(batch.len());
        let mut slots = Vec::with_capacity(batch.len());
        {
            let mut stats = shared.stats.lock().expect("serving: poisoned stats");
            stats.started.get_or_insert(launched);
            stats.batches_run += 1;
            match trigger {
                BatchTrigger::Size => stats.size_batches += 1,
                BatchTrigger::Deadline => stats.deadline_batches += 1,
                BatchTrigger::Drain => stats.drain_batches += 1,
            }
            stats.batch_size_counts[batch.len()] += 1;
            for request in batch {
                stats.record_wait(launched.saturating_duration_since(request.enqueued));
                frames.push(request.frame);
                slots.push(request.slot);
            }
        }
        // The batch body runs under `catch_unwind`: a panic in the
        // backend or scheduler must not strand waiters on condvars
        // that would otherwise never fire again (a deployed server
        // would deadlock instead of surfacing the fault).
        let job = InferenceJob {
            job_id: next_job_id,
            k,
            kernels: std::mem::take(&mut kernel_set),
            frames,
        };
        next_job_id += 1;
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| backend.run_job(&job)));
        kernel_set = job.kernels;
        match outcome {
            Ok(Ok(reports)) => {
                for (slot, report) in slots.iter().zip(reports) {
                    slot.fulfil(Ok(report));
                }
            }
            // A batch-wide failure (the frames were validated at
            // submit, so this is fabric-level) resolves every handle
            // with the same error rather than leaving waiters hanging.
            Ok(Err(e)) => {
                for slot in &slots {
                    slot.fulfil(Err(e.clone()));
                }
            }
            // A panic poisons the engine: this batch and everything
            // still queued resolve with an error, new submissions are
            // refused, blocked submitters wake, and the worker exits
            // cleanly so `shutdown` can still join it.
            Err(_panic) => {
                let error = OisaError::from(CoreError::Substrate(
                    "serving worker panicked while running a batch; \
                     the engine refuses further work"
                        .into(),
                ));
                for slot in &slots {
                    slot.fulfil(Err(error.clone()));
                }
                let stranded: Vec<Request> = {
                    let mut queue = shared.queue.lock().expect("serving: poisoned queue");
                    queue.shutting_down = true;
                    queue.pending.drain(..).collect()
                };
                shared.space.notify_all();
                for request in &stranded {
                    request.slot.fulfil(Err(error.clone()));
                }
                let mut stats = shared.stats.lock().expect("serving: poisoned stats");
                stats.frames_completed += (slots.len() + stranded.len()) as u64;
                stats.last_done = Some(Instant::now());
                return backend;
            }
        }
        let mut stats = shared.stats.lock().expect("serving: poisoned stats");
        stats.frames_completed += slots.len() as u64;
        stats.last_done = Some(Instant::now());
    }
    backend
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::OisaConfig;
    use oisa_device::noise::NoiseConfig;

    fn engine_config(seed: u64) -> OisaConfig {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = seed;
        cfg
    }

    fn frame_16(tag: u64) -> Frame {
        let data: Vec<f64> = (0..256)
            .map(|i| (0.5 + 0.5 * ((i as f64 * 0.31) + tag as f64 * 1.7).sin()).clamp(0.0, 1.0))
            .collect();
        Frame::new(16, 16, data).unwrap()
    }

    #[test]
    fn config_and_kernel_validation() {
        let kernels = vec![vec![0.5f32; 9]];
        let bad_batch = ServingConfig {
            max_batch: 0,
            ..ServingConfig::default()
        };
        let accel = OisaAccelerator::new(engine_config(1)).unwrap();
        assert!(ServingEngine::new(accel, kernels.clone(), 3, bad_batch).is_err());
        let bad_depth = ServingConfig {
            queue_depth: 0,
            ..ServingConfig::default()
        };
        let accel = OisaAccelerator::new(engine_config(1)).unwrap();
        assert!(ServingEngine::new(accel, kernels.clone(), 3, bad_depth).is_err());
        let accel = OisaAccelerator::new(engine_config(1)).unwrap();
        assert!(ServingEngine::new(accel, vec![], 3, ServingConfig::default()).is_err());
        let accel = OisaAccelerator::new(engine_config(1)).unwrap();
        assert!(
            ServingEngine::new(accel, vec![vec![0.5f32; 8]], 3, ServingConfig::default()).is_err()
        );
        let accel = OisaAccelerator::new(engine_config(1)).unwrap();
        assert!(ServingEngine::new(accel, kernels, 4, ServingConfig::default()).is_err());
    }

    #[test]
    fn mismatched_frame_rejected_at_submit() {
        let accel = OisaAccelerator::new(engine_config(2)).unwrap();
        let engine =
            ServingEngine::new(accel, vec![vec![0.5f32; 9]], 3, ServingConfig::default()).unwrap();
        let wrong = Frame::constant(8, 8, 0.5).unwrap();
        assert!(matches!(
            engine.submit(wrong),
            Err(SubmitError::Rejected(_))
        ));
    }

    #[test]
    fn handle_polling_api() {
        let accel = OisaAccelerator::new(engine_config(3)).unwrap();
        let engine = ServingEngine::new(
            accel,
            vec![vec![0.5f32; 9]],
            3,
            ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
        )
        .unwrap();
        let mut handle = engine.submit(frame_16(0)).unwrap();
        // Spin briefly; max_batch = 1 launches immediately.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !handle.is_ready() && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(handle.is_ready());
        let report = handle.try_take().expect("ready").unwrap();
        assert_eq!(report.output.len(), 1);
        assert!(handle.try_take().is_none(), "result is taken exactly once");
        assert!(!handle.is_ready(), "a taken handle is no longer ready");
        // Waiting on a consumed handle fails fast instead of parking on
        // a condvar that will never fire again.
        assert!(matches!(
            handle.wait(),
            Err(OisaError::Core(CoreError::InvalidParameter(_)))
        ));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        let waits: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&waits, 0.50), 50.0);
        assert_eq!(percentile_us(&waits, 0.99), 99.0);
        assert_eq!(percentile_us(&[7], 0.99), 7.0);
    }

    #[test]
    fn submit_after_shutdown_hands_frame_back() {
        let accel = OisaAccelerator::new(engine_config(4)).unwrap();
        let engine =
            ServingEngine::new(accel, vec![vec![0.5f32; 9]], 3, ServingConfig::default()).unwrap();
        let (_accel, stats) = engine.shutdown();
        assert_eq!(stats.frames_completed, 0);
        // A second engine on the same shared queue shape: shutting_down
        // rejections hand the frame back.
        let accel = OisaAccelerator::new(engine_config(4)).unwrap();
        let engine =
            ServingEngine::new(accel, vec![vec![0.5f32; 9]], 3, ServingConfig::default()).unwrap();
        engine.shared.queue.lock().unwrap().shutting_down = true;
        match engine.submit(frame_16(1)) {
            Err(SubmitError::ShutDown(frame)) => assert_eq!(frame, frame_16(1)),
            other => panic!("expected ShutDown, got {other:?}"),
        }
    }

    /// A serving engine fronting a [`FleetSupervisor`] self-heals: one
    /// worker dies on its very first shard, the supervisor promotes
    /// the spare inside the same job, and every submitter's report is
    /// bit-identical to a single-accelerator engine — the failure is
    /// invisible above the backend seam.
    #[test]
    fn supervised_engine_self_heals_under_worker_death() {
        use crate::backend::{FleetSupervisor, InProcessWorker, ShardTransport, SupervisorOptions};
        use crate::wire::WireMessage;

        /// Serves until `shards_before_death` shards, then fails every
        /// round trip like a crashed process (same shape as the
        /// supervisor unit tests' doomed worker).
        struct DyingWorker {
            inner: InProcessWorker,
            shards_before_death: u64,
            served: u64,
            dead: bool,
        }

        impl ShardTransport for DyingWorker {
            fn round_trip(&mut self, message: &[u8]) -> Result<Vec<u8>, OisaError> {
                if !self.dead && matches!(crate::wire::decode(message), Ok(WireMessage::Shard(_))) {
                    if self.served >= self.shards_before_death {
                        self.dead = true;
                    } else {
                        self.served += 1;
                    }
                }
                if self.dead {
                    return Err(OisaError::Transport {
                        endpoint: "dying-worker".into(),
                        attempts: 1,
                        cause: "injected worker death".into(),
                    });
                }
                self.inner.round_trip(message)
            }

            fn endpoint_label(&self) -> String {
                "dying-worker".into()
            }
        }

        let config = engine_config(11);
        let kernels = vec![vec![0.5f32; 9], vec![-0.125f32; 9]];
        let active: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(InProcessWorker::new(config)),
            Box::new(DyingWorker {
                inner: InProcessWorker::new(config),
                shards_before_death: 0,
                served: 0,
                dead: false,
            }),
        ];
        let spares: Vec<Box<dyn ShardTransport>> = vec![Box::new(InProcessWorker::new(config))];
        let supervisor =
            FleetSupervisor::new(config, active, spares, SupervisorOptions::default()).unwrap();

        // Batch all 6 frames into one job so the dying worker's shard
        // failure happens mid-batch.
        let serving = ServingConfig {
            max_batch: 6,
            deadline: Duration::from_secs(5),
            queue_depth: 16,
        };
        let engine = ServingEngine::with_backend(supervisor, kernels.clone(), 3, serving).unwrap();
        let handles: Vec<_> = (0..6)
            .map(|t| engine.submit(frame_16(t)).expect("queue has room"))
            .collect();
        let reports: Vec<ConvolutionReport> =
            handles.into_iter().map(|h| h.wait().unwrap()).collect();
        let (backend, stats) = engine.shutdown();
        assert_eq!(stats.frames_completed, 6);
        let status = backend.status();
        assert_eq!(status.promotions, 1, "the spare must have been promoted");
        assert_eq!(status.quarantined, 1);

        // Oracle: the same frames through a plain local engine.
        let accel = OisaAccelerator::new(config).unwrap();
        let oracle = ServingEngine::new(accel, kernels, 3, serving).unwrap();
        let oracle_handles: Vec<_> = (0..6)
            .map(|t| oracle.submit(frame_16(t)).expect("queue has room"))
            .collect();
        let expected: Vec<ConvolutionReport> = oracle_handles
            .into_iter()
            .map(|h| h.wait().unwrap())
            .collect();
        let _ = oracle.shutdown();
        assert_eq!(
            reports, expected,
            "self-healed serving must be bit-identical to a local engine"
        );
    }
}
