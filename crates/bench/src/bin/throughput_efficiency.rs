//! Regenerates the §IV headline numbers: throughput, efficiency,
//! MACs/cycle, mapping iterations and area.

use oisa_bench::headline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let h = headline::headline_numbers()?;
    println!("=== §IV headline numbers, paper vs measured ===\n");
    println!("{:<42} {:>12} {:>12}", "metric", "paper", "measured");
    println!("{}", "-".repeat(68));
    println!(
        "{:<42} {:>12} {:>12.3}",
        "architecture-wide MAC time (ps)", "55.8", h.cycle_ps
    );
    println!(
        "{:<42} {:>12} {:>12.2}",
        "throughput (TOp/s)", "7.1", h.throughput_tops
    );
    println!(
        "{:<42} {:>12} {:>12.2}",
        "efficiency (TOp/s/W)", "6.68", h.efficiency
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "MACs/cycle, K=3", "3600", h.macs_per_cycle[0]
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "MACs/cycle, K=5", "2000", h.macs_per_cycle[1]
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "MACs/cycle, K=7", "3920", h.macs_per_cycle[2]
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "full-map AWC iterations", "100", h.full_map_iterations
    );
    println!("{:<42} {:>12} {:>12.2}", "area (mm²)", "1.92", h.area_mm2);
    println!(
        "{:<42} {:>12} {:>12.2}",
        "ResNet18 L1 frame latency (µs)", "< 1000", h.resnet_frame_us
    );
    Ok(())
}
