// Fixture: panicking error handling in non-test library code.
pub fn first_row(rows: &[Vec<f64>]) -> &Vec<f64> {
    rows.first().unwrap()
}
