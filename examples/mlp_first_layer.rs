//! MLP first layer on OISA: the VOM breaks a 256-wide dense row into
//! arm-sized chunks (paper §III-A's MLP path).
//!
//! ```sh
//! cargo run --release --example mlp_first_layer
//! ```

use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::sensor::Frame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("OISA MLP first layer");
    println!("====================\n");

    let mut accel = OisaAccelerator::new(OisaConfig::small_test())?;

    // A 16×16 frame flattens to a 256-wide input vector.
    let frame = Frame::new(
        16,
        16,
        (0..256).map(|i| f64::from(i as u32) / 255.0).collect(),
    )?;

    // A dense layer with 8 output neurons: each row is 256 weights →
    // ⌈256/9⌉ = 29 chunks per row, re-aggregated by the VOM.
    let rows = 8usize;
    let cols = 256usize;
    let matrix: Vec<f32> = (0..rows * cols)
        .map(|i| ((i as f32) * 0.013).sin() * 0.5)
        .collect();

    let report = accel.dense_layer(&frame, &matrix, rows)?;

    println!(
        "dense 256 -> {rows} executed in {} arm-chunks",
        report.chunks
    );
    println!("energy : {:.3}", report.energy);
    println!("latency: {:.3}", report.latency);
    println!("\nneuron outputs (optical vs exact):");
    // Reference: exact dot products on the ternary-encoded frame.
    let encoded: Vec<f64> = frame
        .as_slice()
        .iter()
        .map(|&lux| {
            // The VAM's ternary encoding (thresholds at 0.32/0.64).
            if lux > 0.64 {
                1.0
            } else if lux > 0.32 {
                0.511
            } else {
                0.022
            }
        })
        .collect();
    for r in 0..rows {
        let exact: f64 = (0..cols)
            .map(|c| f64::from(matrix[r * cols + c]) * encoded[c])
            .sum();
        println!(
            "  neuron {r}: optical {:>8.3}   exact {:>8.3}",
            report.output[r], exact
        );
    }
    Ok(())
}
