//! The end-to-end accelerator: imager → VAM → OPC → VOM.
//!
//! [`OisaAccelerator::convolve_frame`] runs the *physical* path the paper
//! describes: expose the frame, threshold each pixel into a ternary VCSEL
//! drive, multiply against ring-held weights wavelength-by-wavelength,
//! subtract on the balanced photodetectors, and (for 5×5/7×7 kernels)
//! re-aggregate per-arm partial sums in the VOM. Everything is energy-
//! and latency-accounted through the controller and mapping plan.
//!
//! # Hot-path architecture
//!
//! The convolution inner loop is engineered for frame-rate simulation:
//!
//! * **Counter-based noise.** Every `(kernel, output position)` pair
//!   gets its own [`NoiseStream`](oisa_device::noise::NoiseStream), so
//!   evaluation order — including across threads — never changes the
//!   physics. `convolve_frame` (parallel over output rows) and
//!   [`OisaAccelerator::convolve_frame_sequential`] are bit-identical.
//! * **Zero per-pixel allocation.** Windows are gathered into a stack
//!   scratch array, per-pass results land in one flat row-major buffer,
//!   and the fused [`Arm::mac_indexed`](oisa_optics::arm::Arm) skips
//!   [`MacResult`](oisa_optics::arm::MacResult) construction entirely.
//! * **Precomputed arm constants.** Crosstalk, waveguide loss and
//!   full-scale terms are folded into per-ring gains at weight-load
//!   time instead of being re-derived on every MAC.
//! * **Ordered reduction.** Row tasks return energy partials that are
//!   reduced in row order, so the energy report is identical no matter
//!   how many worker threads ran.
//!
//! [`OisaAccelerator::convolve_frame_reference`] keeps a faithful port
//! of the pre-optimisation pipeline (per-window allocation, per-MAC
//! validation and crosstalk evaluation, order-dependent noise) as the
//! wall-clock baseline for `perf_json` and the microbenchmarks.
//!
//! # Batched inference
//!
//! [`OisaAccelerator::convolve_frames`] is the sustained-throughput
//! engine: it stages every weight pass **once for the whole batch**,
//! snapshots each pass's arms ([`ArmSnapshot`]), and spreads
//! `(frame, pass, row-band)` work items over the work-stealing
//! scheduler in [`crate::scheduler`]. Each frame is keyed to its own
//! noise epoch, so the batch output — feature maps, energy report and
//! timeline per frame — is bit-identical to calling
//! [`OisaAccelerator::convolve_frame_sequential`] once per frame in
//! order. Because ring tuning cost depends on the fabric's previous
//! operating point, the engine records two tuning/memory energies: the
//! batch's first frame pays the entry-state cost, every later frame
//! pays the steady-state cost a per-frame loop would see.

use oisa_device::awc::{AwcModel, AwcParams};
use oisa_device::noise::{NoiseConfig, NoiseSource, SlotStream};
use oisa_memory::bank::KernelBank;
use oisa_optics::arm::{Arm, ArmSnapshot, RINGS_PER_ARM};
use oisa_optics::opc::{KernelSize, Opc, OpcConfig};
use oisa_optics::vom::{Vom, VomConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;
use oisa_sensor::imager::{Imager, ImagerConfig};
use oisa_sensor::vam::{Vam, VamConfig};
use oisa_units::Joule;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, ControllerTiming, Timeline};
use crate::mapping::{assign_slots, ConvWorkload, MappingPlan};
use crate::{scheduler, CoreError, Result};

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OisaConfig {
    /// Imager (dimensions + pixel design + frame rate).
    pub imager: ImagerConfig,
    /// Optical core structure.
    pub opc: OpcConfig,
    /// Activation modulator.
    pub vam: VamConfig,
    /// Output modulator.
    pub vom: VomConfig,
    /// Controller timing.
    pub timing: ControllerTiming,
    /// Weight bit-width (1–4).
    pub weight_bits: u8,
    /// AWC fidelity (ideal vs. mismatch).
    pub awc_model: AwcModel,
    /// Optical noise intensities.
    pub noise: NoiseConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl OisaConfig {
    /// The paper configuration at `width × height` pixels.
    ///
    /// A thin wrapper over [`OisaConfig::builder`]'s defaults that
    /// never panics: degenerate dimensions still surface as a
    /// `Result` from [`OisaAccelerator::new`], exactly as before the
    /// builder existed. Call `builder().build()` instead when you want
    /// the up-front [`OisaError::Config`](crate::error::OisaError::Config) validation.
    #[must_use]
    pub fn paper_default(width: usize, height: usize) -> Self {
        Self::builder().imager_dims(width, height).config
    }

    /// A small, fast configuration for tests and doctests: 16×16 imager,
    /// 4-bank OPC, noiseless, ideal AWC.
    #[must_use]
    pub fn small_test() -> Self {
        Self::builder()
            .imager_dims(16, 16)
            .opc_shape(4, 2, 10)
            .noise(NoiseConfig::noiseless())
            .awc_model(AwcModel::Ideal)
            .config
    }

    /// Starts a validated builder from the paper defaults (16×16
    /// imager until [`OisaConfigBuilder::imager_dims`] says otherwise).
    ///
    /// Prefer this over mutating a default struct when the values come
    /// from outside the program: [`OisaConfigBuilder::build`] rejects
    /// bad dimensions with a typed [`OisaError::Config`](crate::error::OisaError::Config) naming the
    /// field, instead of letting them surface as a substrate error
    /// deep inside [`OisaAccelerator::new`].
    ///
    /// # Examples
    ///
    /// ```
    /// use oisa_core::OisaConfig;
    /// use oisa_device::noise::NoiseConfig;
    ///
    /// # fn main() -> Result<(), oisa_core::OisaError> {
    /// let config = OisaConfig::builder()
    ///     .imager_dims(16, 16)
    ///     .opc_shape(4, 2, 10)
    ///     .noise(NoiseConfig::paper_default())
    ///     .seed(7)
    ///     .build()?;
    /// assert_eq!((config.imager.width, config.imager.height), (16, 16));
    ///
    /// // `build` refuses degenerate values with a typed error.
    /// let err = OisaConfig::builder().imager_dims(0, 16).build().unwrap_err();
    /// assert!(err.to_string().contains("imager"));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn builder() -> OisaConfigBuilder {
        OisaConfigBuilder::default()
    }

    /// A stable-within-a-build fingerprint of every configuration
    /// field, mixed with FNV-1a over the `Debug` rendering.
    ///
    /// The sharded backend stamps this into every
    /// [`JobShard`](crate::wire::JobShard) and workers refuse shards
    /// whose fingerprint differs from their own deployment config —
    /// two processes disagreeing about the physics would otherwise
    /// merge incompatible shards. The hash is derived from the `Debug`
    /// format, so it discriminates configs **within one build of this
    /// crate**; deployments spanning different builds must ship the
    /// config out-of-band (it intentionally does not travel on the
    /// wire).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Re-runs the [`OisaConfigBuilder::build`] validation on an
    /// existing configuration — the check applied to configs that
    /// arrive from outside the process (a wire-v3
    /// [`ConfigPush`](crate::wire::ConfigPush)), so a malformed push
    /// fails typed instead of deep inside accelerator construction.
    ///
    /// # Errors
    ///
    /// As [`OisaConfigBuilder::build`].
    pub fn validated(self) -> std::result::Result<Self, crate::OisaError> {
        OisaConfigBuilder { config: self }.build()
    }
}

/// Validating builder for [`OisaConfig`] — see [`OisaConfig::builder`].
///
/// Every setter overrides one field of the paper defaults; `build`
/// checks the cross-field invariants the substrate crates would
/// otherwise reject one constructor at a time.
///
/// # Examples
///
/// ```
/// use oisa_core::{OisaConfig, OisaError};
///
/// let cfg = OisaConfig::builder()
///     .imager_dims(32, 32)
///     .opc_shape(4, 2, 10)
///     .seed(7)
///     .build()
///     .expect("valid");
/// assert_eq!(cfg.imager.width, 32);
///
/// let err = OisaConfig::builder().imager_dims(0, 32).build().unwrap_err();
/// assert!(matches!(err, OisaError::Config { field: "imager", .. }));
/// ```
#[derive(Debug, Clone)]
pub struct OisaConfigBuilder {
    config: OisaConfig,
}

impl Default for OisaConfigBuilder {
    /// Paper defaults on a 16×16 imager.
    fn default() -> Self {
        Self {
            config: OisaConfig {
                imager: ImagerConfig::paper_default(16, 16),
                opc: OpcConfig::paper_default(),
                vam: VamConfig::paper_default(),
                vom: VomConfig::paper_default(),
                timing: ControllerTiming::paper_default(),
                weight_bits: 4,
                awc_model: AwcModel::paper_mismatch(),
                noise: NoiseConfig::paper_default(),
                seed: 0,
            },
        }
    }
}

impl OisaConfigBuilder {
    /// Imager dimensions in pixels.
    #[must_use]
    pub fn imager_dims(mut self, width: usize, height: usize) -> Self {
        self.config.imager.width = width;
        self.config.imager.height = height;
        self
    }

    /// Target frame rate of the imager.
    #[must_use]
    pub fn frame_rate_hz(mut self, hz: f64) -> Self {
        self.config.imager.frame_rate_hz = hz;
        self
    }

    /// OPC structure: bank count, bank columns and shared AWC units.
    #[must_use]
    pub fn opc_shape(mut self, banks: usize, columns: usize, awc_units: usize) -> Self {
        self.config.opc.banks = banks;
        self.config.opc.columns = columns;
        self.config.opc.awc_units = awc_units;
        self
    }

    /// Weight bit-width (1–4).
    #[must_use]
    pub fn weight_bits(mut self, bits: u8) -> Self {
        self.config.weight_bits = bits;
        self
    }

    /// AWC fidelity model.
    #[must_use]
    pub fn awc_model(mut self, model: AwcModel) -> Self {
        self.config.awc_model = model;
        self
    }

    /// Optical noise intensities.
    #[must_use]
    pub fn noise(mut self, noise: NoiseConfig) -> Self {
        self.config.noise = noise;
        self
    }

    /// Simulation seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`OisaError::Config`](crate::error::OisaError::Config) naming the offending field when any
    /// dimension is degenerate: a zero-sized imager, a non-positive
    /// frame rate, an OPC whose banks don't tile its columns (or with
    /// zero banks/columns/AWC units), or a weight bit-width outside
    /// 1–4.
    pub fn build(self) -> std::result::Result<OisaConfig, crate::OisaError> {
        let cfg = &self.config;
        let fail =
            |field: &'static str, reason: String| Err(crate::OisaError::Config { field, reason });
        if cfg.imager.width == 0 || cfg.imager.height == 0 {
            return fail(
                "imager",
                format!(
                    "dimensions must be positive, got {}x{}",
                    cfg.imager.width, cfg.imager.height
                ),
            );
        }
        if !(cfg.imager.frame_rate_hz.is_finite() && cfg.imager.frame_rate_hz > 0.0) {
            return fail(
                "frame_rate_hz",
                format!(
                    "must be a positive finite rate, got {}",
                    cfg.imager.frame_rate_hz
                ),
            );
        }
        if cfg.opc.banks == 0 || cfg.opc.columns == 0 || cfg.opc.awc_units == 0 {
            return fail(
                "opc",
                format!(
                    "banks ({}), columns ({}) and awc_units ({}) must all be positive",
                    cfg.opc.banks, cfg.opc.columns, cfg.opc.awc_units
                ),
            );
        }
        if !cfg.opc.banks.is_multiple_of(cfg.opc.columns) {
            return fail(
                "opc",
                format!(
                    "banks ({}) must tile evenly over columns ({})",
                    cfg.opc.banks, cfg.opc.columns
                ),
            );
        }
        if !(1..=4).contains(&cfg.weight_bits) {
            return fail(
                "weight_bits",
                format!("must be 1–4, got {}", cfg.weight_bits),
            );
        }
        for (name, sigma) in [
            ("vcsel_rin", cfg.noise.vcsel_rin),
            ("mr_drift", cfg.noise.mr_drift),
            ("detector", cfg.noise.detector),
        ] {
            if !(sigma.is_finite() && sigma >= 0.0) {
                return fail(
                    "noise",
                    format!("{name} must be a finite non-negative sigma, got {sigma}"),
                );
            }
        }
        Ok(self.config)
    }
}

impl Default for OisaConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// Energy breakdown of one convolved frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Pixel exposure and readout.
    pub sensing: Joule,
    /// Sense-amplifier decisions plus VCSEL symbols.
    pub encoding: Joule,
    /// Ring tuning (weight mapping), all passes.
    pub tuning: Joule,
    /// Optical compute (light absorbed at the detectors) plus ring hold.
    pub compute: Joule,
    /// VOM aggregation and re-modulation.
    pub aggregation: Joule,
    /// Kernel-bank accesses.
    pub memory: Joule,
}

impl EnergyReport {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> Joule {
        self.sensing + self.encoding + self.tuning + self.compute + self.aggregation + self.memory
    }
}

/// Output of [`OisaAccelerator::convolve_frame`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvolutionReport {
    /// One feature map per kernel, row-major `out_h × out_w`.
    pub output: Vec<Vec<f32>>,
    /// Output feature-map height.
    pub out_h: usize,
    /// Output feature-map width.
    pub out_w: usize,
    /// The placement used.
    pub plan: MappingPlan,
    /// Phase latencies.
    pub timeline: Timeline,
    /// Energy breakdown.
    pub energy: EnergyReport,
}

/// The assembled accelerator.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct OisaAccelerator {
    config: OisaConfig,
    imager: Imager,
    vam: Vam,
    opc: Opc,
    vom: Vom,
    bank: KernelBank,
    mapper: WeightMapper,
    noise: NoiseSource,
    controller: Controller,
}

impl OisaAccelerator {
    /// Builds the accelerator from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates substrate construction failures.
    pub fn new(config: OisaConfig) -> Result<Self> {
        let awc_params = AwcParams {
            bits: config.weight_bits,
            model: config.awc_model,
            ..AwcParams::paper_default()
        };
        let ladder = oisa_device::awc::AwcLadder::ideal(awc_params)?;
        let mapper = WeightMapper::from_ladder(ladder)?;
        Ok(Self {
            imager: Imager::new(config.imager)?,
            vam: Vam::new(config.vam)?,
            opc: Opc::new(config.opc)?,
            vom: Vom::new(config.vom)?,
            bank: KernelBank::new(45, config.weight_bits, config.opc.total_rings())?,
            mapper,
            noise: NoiseSource::seeded(config.seed, config.noise),
            controller: Controller::new(config.timing),
            config,
        })
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &OisaConfig {
        &self.config
    }

    /// The weight mapper (AWC → ring level tables) in use — shared with
    /// the behavioural deployment path so both quantise identically.
    #[must_use]
    pub fn mapper(&self) -> &WeightMapper {
        &self.mapper
    }

    /// The noise epoch the next convolved frame will key its streams
    /// under — the distributed-execution counterpart of
    /// [`NoiseSource::next_epoch`](oisa_device::noise::NoiseSource::next_epoch).
    #[must_use]
    pub fn next_noise_epoch(&self) -> u64 {
        self.noise.next_epoch()
    }

    /// Fast-forwards the noise-epoch counter to `target`.
    ///
    /// A shard worker executing frames `[a, b)` of a distributed job
    /// aligns its freshly-built accelerator to `base + a` so its frames
    /// draw from exactly the streams a single sequential host would
    /// have used for the same positions.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when `target` is behind the counter
    /// (rewinding could silently reuse consumed noise streams).
    pub fn align_noise_epoch(&mut self, target: u64) -> Result<()> {
        self.noise.advance_to_epoch(target)?;
        Ok(())
    }

    /// Stages `kernels` onto the fabric once — tuning the rings and
    /// cycling the kernel bank exactly as one convolution pass sequence
    /// would — **without** computing anything, consuming noise epochs,
    /// or leaving energy in the counters.
    ///
    /// After a prewarm, the fabric sits in the *steady state* a
    /// sequential per-frame loop over the same kernels reaches after
    /// its first frame. That is what lets a stateless shard worker
    /// reproduce mid-stream tuning/memory energies bit-identically: a
    /// shard that does not start at the stream's first frame prewarm's
    /// with the kernel set that produced the fabric state its first
    /// frame would have seen (see
    /// [`FabricEntry`](crate::wire::FabricEntry)).
    ///
    /// # Errors
    ///
    /// Same kernel-validation and mapping contract as
    /// [`OisaAccelerator::convolve_frame`].
    pub fn prewarm(&mut self, kernels: &[Vec<f32>], k: usize) -> Result<()> {
        let planes: Vec<&[f32]> = kernels.iter().map(Vec::as_slice).collect();
        validate_kernels(&planes, k)?;
        let ks = KernelSize::from_k(k).map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: self.config.imager.height,
            input_w: self.config.imager.width,
            stride: 1,
        };
        let plan = MappingPlan::compute(&workload, &self.config.opc)?;
        let scales = kernel_scales(&planes);
        let mut normalised: Vec<f64> = Vec::with_capacity(k * k);
        let mut codes: Vec<u16> = Vec::with_capacity(k * k);
        let mut kernel_index = 0usize;
        while kernel_index < planes.len() {
            let pass_kernels =
                &planes[kernel_index..(kernel_index + plan.slots_per_pass).min(planes.len())];
            self.stage_pass(
                pass_kernels,
                kernel_index,
                &scales,
                ks,
                &mut normalised,
                &mut codes,
            )?;
            kernel_index += pass_kernels.len();
        }
        // Staging cycled the kernel bank; the next convolution's memory
        // energy must account only its own accesses.
        self.bank.reset_counters();
        Ok(())
    }

    /// Convolves a captured frame with `kernels` (each `k²` weights,
    /// row-major) at stride 1, running the full optical path with the
    /// parallel, allocation-free pipeline (see the module docs).
    ///
    /// Kernels may use any float range; they are normalised per call by
    /// the joint maximum magnitude (per-tensor scaling, as the deployment
    /// path does) and the outputs are scaled back.
    ///
    /// Noise is drawn from counter-based streams keyed by
    /// `(seed, frame epoch, kernel, output position)`, so the result is
    /// bit-identical to [`OisaAccelerator::convolve_frame_sequential`]
    /// regardless of worker-thread count.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for empty/ill-sized kernels.
    /// * [`CoreError::Unmappable`] for unsupported kernel sizes.
    /// * Substrate errors from the optical fabric.
    pub fn convolve_frame(
        &mut self,
        frame: &Frame,
        kernels: &[Vec<f32>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        let planes: Vec<&[f32]> = kernels.iter().map(Vec::as_slice).collect();
        self.convolve_impl(frame, &planes, k, true)
    }

    /// Single-threaded twin of [`OisaAccelerator::convolve_frame`]:
    /// identical physics, identical noise streams, identical energy
    /// reduction order — the parity oracle the parallel path is tested
    /// against.
    ///
    /// # Errors
    ///
    /// Same contract as [`OisaAccelerator::convolve_frame`].
    pub fn convolve_frame_sequential(
        &mut self,
        frame: &Frame,
        kernels: &[Vec<f32>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        let planes: Vec<&[f32]> = kernels.iter().map(Vec::as_slice).collect();
        self.convolve_impl(frame, &planes, k, false)
    }

    fn convolve_impl(
        &mut self,
        frame: &Frame,
        kernels: &[&[f32]],
        k: usize,
        parallel: bool,
    ) -> Result<ConvolutionReport> {
        validate_kernels(kernels, k)?;
        let ks = KernelSize::from_k(k).map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: frame.height(),
            input_w: frame.width(),
            stride: 1,
        };
        let plan = MappingPlan::compute(&workload, &self.config.opc)?;
        let (oh, ow) = workload.output_size();

        // Sense + encode.
        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;
        // Validate the optical frame once up front; every window below
        // reuses the guarantee instead of re-checking k² amplitudes per
        // output pixel.
        validate_optical(&encoded.optical)?;

        let scales = kernel_scales(kernels);

        let mut energy = EnergyReport {
            sensing: capture.energy,
            encoding: encoded.total_energy(),
            ..EnergyReport::default()
        };
        let mut output = vec![vec![0.0f32; oh * ow]; kernels.len()];
        let epoch = self.noise.begin_epoch()?;
        let width = frame.width();
        let k2 = k * k;
        let arms_per_kernel = ks.arms_per_kernel();

        let slots_per_pass = plan.slots_per_pass;
        // Weight staging is off the hot path, but reuse its buffers
        // anyway.
        let mut normalised: Vec<f64> = Vec::with_capacity(k2);
        let mut codes: Vec<u16> = Vec::with_capacity(k2);
        // Double-buffered streamed staging: the pass about to drain is
        // already staged and snapshotted; on the parallel engine the
        // *next* pass quantises/tunes/snapshots on this thread while
        // the workers drain the current pass's rows
        // ([`scheduler::execute_overlapped`]). Rows only ever read
        // immutable snapshots and the encoded frame, so restaging the
        // fabric underneath them is unobservable; tuning energy still
        // accumulates in strict pass order, keeping the report
        // bit-identical to the sequential engine, which stages each
        // pass only after the previous one fully drained.
        let mut staged = Some(stage_full_pass(
            &mut self.bank,
            &mut self.opc,
            &self.mapper,
            &self.config.opc,
            kernels,
            0,
            slots_per_pass,
            &scales,
            ks,
            arms_per_kernel,
            &mut normalised,
            &mut codes,
        )?);
        while let Some(pass) = staged.take() {
            let kernel_index = pass.kernel_index;
            let slot_arms = pass.arms;
            let nslots = slot_arms.len();
            let next_index = kernel_index + nslots;
            energy.tuning += pass.tuning;

            // Hoist the (seed, epoch, slot) key mixing out of the pixel
            // loop: per position only one extra mix remains.
            let slot_streams: Vec<SlotStream> = (0..nslots)
                .map(|si| self.noise.slot_stream(epoch, (kernel_index + si) as u64))
                .collect();
            let row_len = nslots * ow;
            // One flat row-major buffer per pass: [row][slot][ox]. Row
            // tasks own disjoint chunks, so they parallelise without
            // locks; results are scattered into the per-kernel maps
            // afterwards.
            let mut pass_out = vec![0.0f32; oh * row_len];
            let vom = &self.vom;
            let optical = &encoded.optical[..];
            let pass_scales = &scales[kernel_index..kernel_index + nslots];
            let slot_arms_ref = &slot_arms;
            let slot_streams_ref = &slot_streams;
            let row_task = move |oy: usize, row: &mut [f32]| -> RowEnergy {
                eval_row(
                    oy,
                    row,
                    optical,
                    width,
                    ow,
                    k,
                    slot_arms_ref,
                    slot_streams_ref,
                    pass_scales,
                    vom,
                )
            };
            let rows: Vec<&mut [f32]> = pass_out.chunks_mut(row_len).collect();
            let partials: Vec<RowEnergy> = if parallel && next_index < kernels.len() {
                // Streamed staging: drain this pass's rows on the
                // worker pool while this thread stages the next pass.
                let kbank = &mut self.bank;
                let opc = &mut self.opc;
                let mapper = &self.mapper;
                let opc_config = &self.config.opc;
                let scales_ref = &scales;
                let normalised = &mut normalised;
                let codes = &mut codes;
                let (partials, next) = scheduler::execute_overlapped(rows, row_task, move || {
                    stage_full_pass(
                        kbank,
                        opc,
                        mapper,
                        opc_config,
                        kernels,
                        next_index,
                        slots_per_pass,
                        scales_ref,
                        ks,
                        arms_per_kernel,
                        normalised,
                        codes,
                    )
                });
                staged = Some(next?);
                partials
            } else if parallel {
                rayon::iter::parallel_map(rows, row_task)
            } else {
                rows.into_iter()
                    .enumerate()
                    .map(|(oy, row)| row_task(oy, row))
                    .collect()
            };
            // Ordered reduction: identical grouping whether the rows ran
            // on one thread or many.
            for partial in partials {
                energy.compute += Joule::new(partial.compute);
                energy.aggregation += Joule::new(partial.aggregation);
            }
            for si in 0..nslots {
                let dst = &mut output[kernel_index + si];
                for oy in 0..oh {
                    let src = oy * row_len + si * ow;
                    dst[oy * ow..(oy + 1) * ow].copy_from_slice(&pass_out[src..src + ow]);
                }
            }
            if staged.is_none() && next_index < kernels.len() {
                // Sequential oracle: stage the next pass only after
                // this one fully drained.
                staged = Some(stage_full_pass(
                    &mut self.bank,
                    &mut self.opc,
                    &self.mapper,
                    &self.config.opc,
                    kernels,
                    next_index,
                    slots_per_pass,
                    &scales,
                    ks,
                    arms_per_kernel,
                    &mut normalised,
                    &mut codes,
                )?);
            }
        }

        // Kernel-bank access energy.
        energy.memory = self.bank.total_energy();
        self.bank.reset_counters();

        // Timeline from the controller program.
        let program = self
            .controller
            .frame_program(&plan, (oh * ow * kernels.len()) as u64);
        let timeline = self.controller.execute(&program)?;

        Ok(ConvolutionReport {
            output,
            out_h: oh,
            out_w: ow,
            plan,
            timeline,
            energy,
        })
    }

    /// Tuning energy of exactly the arms `slots` staged — the energy a
    /// pass is charged. See [`pass_tuning_energy_of`].
    fn pass_tuning_energy(
        &self,
        slots: &[(usize, usize)],
        arms_per_kernel: usize,
    ) -> Result<Joule> {
        pass_tuning_energy_of(&self.opc, slots, arms_per_kernel)
    }

    /// Stages one pass's kernels onto the fabric. See
    /// [`stage_pass_onto`]; this method form serves the batched engine,
    /// which stages every pass up front.
    fn stage_pass(
        &mut self,
        pass_kernels: &[&[f32]],
        kernel_index: usize,
        scales: &[f32],
        ks: KernelSize,
        normalised: &mut Vec<f64>,
        codes: &mut Vec<u16>,
    ) -> Result<Vec<(usize, usize)>> {
        stage_pass_onto(
            &mut self.bank,
            &mut self.opc,
            &self.mapper,
            &self.config.opc,
            pass_kernels,
            kernel_index,
            scales,
            ks,
            normalised,
            codes,
        )
    }

    /// Convolves a batch of captured frames with `kernels` in one
    /// engine invocation — the sustained-throughput path.
    ///
    /// The engine stages each weight pass once for the whole batch,
    /// snapshots the pass's arms, then spreads `(frame, pass, row-band)`
    /// work items across the work-stealing scheduler
    /// ([`crate::scheduler`]): every worker stays busy until the entire
    /// batch is drained, stealing bands from slower neighbours instead
    /// of idling at a frame boundary.
    ///
    /// **Exactness.** Each frame is keyed to its own noise epoch
    /// (reserved contiguously once the batch has validated), partial
    /// energies reduce in `(frame, pass, row)` order, and frame 0 pays
    /// the fabric's entry-state tuning cost while later frames pay the
    /// steady-state cost — so the returned reports are bit-identical,
    /// field for field, to calling
    /// [`OisaAccelerator::convolve_frame_sequential`] once per frame in
    /// order, and the accelerator is left in the same state that loop
    /// would leave it in.
    ///
    /// # Errors
    ///
    /// Same contract as [`OisaAccelerator::convolve_frame`], plus
    /// [`CoreError::InvalidParameter`] for an empty batch. Frames must
    /// match the imager's dimensions.
    pub fn convolve_frames(
        &mut self,
        frames: &[Frame],
        kernels: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<ConvolutionReport>> {
        if frames.is_empty() {
            return Err(CoreError::InvalidParameter("no frames supplied".into()));
        }
        let planes: Vec<&[f32]> = kernels.iter().map(Vec::as_slice).collect();
        validate_kernels(&planes, k)?;
        let ks = KernelSize::from_k(k).map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: frames[0].height(),
            input_w: frames[0].width(),
            stride: 1,
        };
        let plan = MappingPlan::compute(&workload, &self.config.opc)?;
        let (oh, ow) = workload.output_size();
        let width = frames[0].width();

        // Phase 1 — sense + encode every frame up front (the imager
        // enforces uniform dimensions). No noise epochs are consumed
        // until the whole batch has validated.
        struct FrameCtx {
            optical: Vec<f64>,
            sensing: Joule,
            encoding: Joule,
        }
        let mut ctxs: Vec<FrameCtx> = Vec::with_capacity(frames.len());
        for frame in frames {
            let capture = self.imager.expose(frame)?;
            let encoded = self.vam.encode_capture(&capture)?;
            validate_optical(&encoded.optical)?;
            let encoding = encoded.total_energy();
            ctxs.push(FrameCtx {
                optical: encoded.optical,
                sensing: capture.energy,
                encoding,
            });
        }
        let first_epoch = self.noise.reserve_epochs(frames.len() as u64)?;

        let scales = kernel_scales(&planes);

        // Phase 2 — stage every pass and snapshot its arms. Ring tuning
        // cost depends on the fabric's previous operating point, so the
        // pass sequence is applied twice: the first application records
        // what the batch's first frame pays from the fabric's entry
        // state, the second what every later frame pays from the steady
        // state a per-frame loop would cycle through. (The ring
        // *operating points* — and therefore the snapshots — are
        // identical either way; only the tuning energy differs.)
        struct PassCtx {
            kernel_index: usize,
            nslots: usize,
            arms: Vec<Vec<ArmSnapshot>>,
            tuning_first: Joule,
            tuning_steady: Joule,
        }
        let arms_per_kernel = ks.arms_per_kernel();
        let slots_per_pass = plan.slots_per_pass;
        let mut normalised: Vec<f64> = Vec::with_capacity(k * k);
        let mut codes: Vec<u16> = Vec::with_capacity(k * k);
        let mut passes: Vec<PassCtx> = Vec::with_capacity(plan.passes);
        let mut kernel_index = 0usize;
        while kernel_index < planes.len() {
            let pass_kernels =
                &planes[kernel_index..(kernel_index + slots_per_pass).min(planes.len())];
            let slots = self.stage_pass(
                pass_kernels,
                kernel_index,
                &scales,
                ks,
                &mut normalised,
                &mut codes,
            )?;
            let arms: Vec<Vec<ArmSnapshot>> = slots
                .iter()
                .map(|&(bank, first_arm)| {
                    self.opc
                        .snapshot_kernel_arms(bank, first_arm, arms_per_kernel)
                })
                .collect::<oisa_optics::Result<_>>()?;
            let tuning_first = self.pass_tuning_energy(&slots, arms_per_kernel)?;
            passes.push(PassCtx {
                kernel_index,
                nslots: slots.len(),
                arms,
                tuning_first,
                tuning_steady: Joule::ZERO,
            });
            kernel_index += pass_kernels.len();
        }
        let memory_first = self.bank.total_energy();
        self.bank.reset_counters();
        let memory_steady;
        if frames.len() > 1 {
            // Steady-state restage: the fabric now holds the last
            // pass's weights, exactly the state a per-frame loop leaves
            // between frames.
            for pass in &mut passes {
                let ki = pass.kernel_index;
                let pass_kernels = &planes[ki..(ki + slots_per_pass).min(planes.len())];
                let slots =
                    self.stage_pass(pass_kernels, ki, &scales, ks, &mut normalised, &mut codes)?;
                pass.tuning_steady = self.pass_tuning_energy(&slots, arms_per_kernel)?;
            }
            memory_steady = self.bank.total_energy();
            self.bank.reset_counters();
        } else {
            memory_steady = memory_first;
            for pass in &mut passes {
                pass.tuning_steady = pass.tuning_first;
            }
        }

        // Phase 3 — fan `(frame, pass, row-band)` items out over the
        // work-stealing scheduler. Bands keep a few items per worker in
        // the deques so stealing has slack without shredding locality;
        // energies come back per row so the reduction below can replay
        // the sequential engine's exact floating-point grouping.
        let n_passes = passes.len();
        let mut pass_out: Vec<Vec<f32>> = Vec::with_capacity(frames.len() * n_passes);
        for _ in 0..frames.len() {
            for pass in &passes {
                pass_out.push(vec![0.0f32; oh * pass.nslots * ow]);
            }
        }
        let band_rows = oh
            .div_ceil(rayon::current_num_threads() * 2)
            .clamp(1, oh.max(1));
        let bands_per_buffer = oh.div_ceil(band_rows);
        struct BandItem<'a> {
            frame: usize,
            pass: usize,
            row0: usize,
            out: &'a mut [f32],
        }
        let mut items: Vec<BandItem<'_>> = Vec::with_capacity(pass_out.len() * bands_per_buffer);
        for (bi, buf) in pass_out.iter_mut().enumerate() {
            let row_len = passes[bi % n_passes].nslots * ow;
            for (band, out) in buf.chunks_mut(band_rows * row_len).enumerate() {
                items.push(BandItem {
                    frame: bi / n_passes,
                    pass: bi % n_passes,
                    row0: band * band_rows,
                    out,
                });
            }
        }
        let noise = &self.noise;
        let vom = &self.vom;
        let passes_ref = &passes;
        let ctxs_ref = &ctxs;
        let scales_ref = &scales;
        let band_energies: Vec<Vec<RowEnergy>> = scheduler::execute(items, |_, item| {
            let pass = &passes_ref[item.pass];
            let ctx = &ctxs_ref[item.frame];
            let row_len = pass.nslots * ow;
            // The reservation above is overflow-checked, so plain
            // addition cannot wrap here.
            let epoch = first_epoch + item.frame as u64;
            let slot_streams: Vec<SlotStream> = (0..pass.nslots)
                .map(|si| noise.slot_stream(epoch, (pass.kernel_index + si) as u64))
                .collect();
            let pass_scales = &scales_ref[pass.kernel_index..pass.kernel_index + pass.nslots];
            item.out
                .chunks_mut(row_len)
                .enumerate()
                .map(|(i, row)| {
                    eval_row(
                        item.row0 + i,
                        row,
                        &ctx.optical,
                        width,
                        ow,
                        k,
                        &pass.arms,
                        &slot_streams,
                        pass_scales,
                        vom,
                    )
                })
                .collect()
        });

        // Phase 4 — per-frame assembly: ordered energy reduction,
        // scatter into per-kernel maps, controller timeline.
        let mut reports = Vec::with_capacity(frames.len());
        let mut band_cursor = 0usize;
        for (f, ctx) in ctxs.iter().enumerate() {
            let mut energy = EnergyReport {
                sensing: ctx.sensing,
                encoding: ctx.encoding,
                ..EnergyReport::default()
            };
            let mut output = vec![vec![0.0f32; oh * ow]; kernels.len()];
            for (p, pass) in passes.iter().enumerate() {
                energy.tuning += if f == 0 {
                    pass.tuning_first
                } else {
                    pass.tuning_steady
                };
                for _ in 0..bands_per_buffer {
                    for row_energy in &band_energies[band_cursor] {
                        energy.compute += Joule::new(row_energy.compute);
                        energy.aggregation += Joule::new(row_energy.aggregation);
                    }
                    band_cursor += 1;
                }
                let row_len = pass.nslots * ow;
                let buf = &pass_out[f * n_passes + p];
                for si in 0..pass.nslots {
                    let dst = &mut output[pass.kernel_index + si];
                    for oy in 0..oh {
                        let src = oy * row_len + si * ow;
                        dst[oy * ow..(oy + 1) * ow].copy_from_slice(&buf[src..src + ow]);
                    }
                }
            }
            energy.memory = if f == 0 { memory_first } else { memory_steady };
            let program = self
                .controller
                .frame_program(&plan, (oh * ow * kernels.len()) as u64);
            let timeline = self.controller.execute(&program)?;
            reports.push(ConvolutionReport {
                output,
                out_h: oh,
                out_w: ow,
                plan,
                timeline,
                energy,
            });
        }
        Ok(reports)
    }

    /// Faithful port of the pre-optimisation sequential pipeline: one
    /// mutable noise stream shared by every MAC (order-dependent draws),
    /// a freshly allocated `Vec` per activation window, per-MAC range
    /// validation, and per-call crosstalk/full-scale/time-of-flight
    /// evaluation through [`Arm::mac_reference`].
    ///
    /// Kept as the wall-clock baseline the `perf_json` benchmark and the
    /// acceptance speedup are measured against. Its outputs differ from
    /// [`OisaAccelerator::convolve_frame`] only through the noise
    /// drawing scheme (stateful stream vs. counter-based streams); with
    /// noise disabled the two pipelines agree exactly.
    ///
    /// # Errors
    ///
    /// Same contract as [`OisaAccelerator::convolve_frame`].
    pub fn convolve_frame_reference(
        &mut self,
        frame: &Frame,
        kernels: &[Vec<f32>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        if kernels.is_empty() {
            return Err(CoreError::InvalidParameter("no kernels supplied".into()));
        }
        if kernels.iter().any(|kn| kn.len() != k * k) {
            return Err(CoreError::InvalidParameter(format!(
                "every kernel must have {} weights",
                k * k
            )));
        }
        let ks = KernelSize::from_k(k).map_err(|e| CoreError::Unmappable(e.to_string()))?;
        let workload = ConvWorkload {
            out_channels: kernels.len(),
            in_channels: 1,
            kernel: k,
            input_h: frame.height(),
            input_w: frame.width(),
            stride: 1,
        };
        let plan = MappingPlan::compute(&workload, &self.config.opc)?;
        let (oh, ow) = workload.output_size();

        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;

        let scales: Vec<f32> = kernels
            .iter()
            .map(|kn| {
                kn.iter()
                    .fold(0.0f32, |m, w| m.max(w.abs()))
                    .max(f32::MIN_POSITIVE)
            })
            .collect();

        let mut energy = EnergyReport {
            sensing: capture.energy,
            encoding: encoded.total_energy(),
            ..EnergyReport::default()
        };
        let mut output = vec![vec![0.0f32; oh * ow]; kernels.len()];

        let slots_per_pass = plan.slots_per_pass;
        let mut kernel_index = 0usize;
        while kernel_index < kernels.len() {
            let pass_kernels =
                &kernels[kernel_index..(kernel_index + slots_per_pass).min(kernels.len())];
            let slots = assign_slots(pass_kernels.len(), ks, &self.config.opc)?;
            for (pk, (kn, &(bank, first_arm))) in pass_kernels.iter().zip(&slots).enumerate() {
                let scale = scales[kernel_index + pk];
                let normalised: Vec<f64> = kn.iter().map(|&w| f64::from(w / scale)).collect();
                let codes: Vec<u16> = normalised
                    .iter()
                    .map(|&w| self.mapper.quantize(w).map(|m| m.code))
                    .collect::<oisa_optics::Result<Vec<u16>>>()?;
                let offset = (bank * oisa_optics::bank::RINGS_PER_BANK + first_arm * RINGS_PER_ARM)
                    % self.bank.len();
                self.bank.store(offset, &codes)?;
                self.opc
                    .load_kernel(bank, first_arm, &normalised, &self.mapper)?;
            }
            energy.tuning += self.pass_tuning_energy(&slots, ks.arms_per_kernel())?;

            for oy in 0..oh {
                for ox in 0..ow {
                    let window = gather_window(&encoded.optical, frame.width(), oy, ox, k);
                    for (slot_idx, &(bank, first_arm)) in slots.iter().enumerate() {
                        let value = self.evaluate_kernel_reference(
                            bank,
                            first_arm,
                            &window,
                            ks,
                            &mut energy,
                        )?;
                        output[kernel_index + slot_idx][oy * ow + ox] =
                            (value * f64::from(scales[kernel_index + slot_idx])) as f32;
                    }
                }
            }
            kernel_index += pass_kernels.len();
        }

        energy.memory = self.bank.total_energy();
        self.bank.reset_counters();

        let program = self
            .controller
            .frame_program(&plan, (oh * ow * kernels.len()) as u64);
        let timeline = self.controller.execute(&program)?;

        Ok(ConvolutionReport {
            output,
            out_h: oh,
            out_w: ow,
            plan,
            timeline,
            energy,
        })
    }

    /// Evaluates one kernel the pre-optimisation way (see
    /// [`OisaAccelerator::convolve_frame_reference`]).
    fn evaluate_kernel_reference(
        &mut self,
        bank: usize,
        first_arm: usize,
        window: &[f64],
        ks: KernelSize,
        energy: &mut EnergyReport,
    ) -> Result<f64> {
        let arms = ks.arms_per_kernel();
        if arms == 1 {
            let result = self
                .opc
                .bank(bank)?
                .arm(first_arm)?
                .mac_reference(window, &mut self.noise)?;
            energy.compute += result.optical_energy;
            Ok(result.value)
        } else {
            let mut partials = Vec::with_capacity(arms);
            for (i, chunk) in window.chunks(RINGS_PER_ARM).enumerate() {
                let r = self
                    .opc
                    .bank(bank)?
                    .arm(first_arm + i)?
                    .mac_reference(chunk, &mut self.noise)?;
                energy.compute += r.optical_energy;
                partials.push(r);
            }
            let agg = self.vom.accumulate(&partials)?;
            energy.aggregation += agg.energy;
            Ok(agg.value)
        }
    }

    /// Convolves a multi-channel input (e.g. RGB): one [`Frame`] per
    /// input channel, one kernel *plane* per (output, input) channel
    /// pair. Per-channel partial feature maps are accumulated through
    /// the VOM, as the paper's first-layer mapping does for
    /// multi-channel CNNs.
    ///
    /// `kernels[oc][ic]` holds the `k²` weights of output channel `oc`
    /// applied to input channel `ic`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for empty inputs or mismatched
    ///   channel counts/shapes.
    /// * Substrate errors from the optical fabric.
    pub fn convolve_channels(
        &mut self,
        frames: &[Frame],
        kernels: &[Vec<Vec<f32>>],
        k: usize,
    ) -> Result<ConvolutionReport> {
        if frames.is_empty() || kernels.is_empty() {
            return Err(CoreError::InvalidParameter(
                "need at least one input channel and one kernel".into(),
            ));
        }
        let in_ch = frames.len();
        if kernels.iter().any(|planes| planes.len() != in_ch) {
            return Err(CoreError::InvalidParameter(format!(
                "every kernel needs {in_ch} planes (one per input channel)"
            )));
        }
        let mut combined: Option<ConvolutionReport> = None;
        // One borrow buffer reused across channels: each iteration
        // refills it with the channel's plane slices instead of
        // allocating a fresh `Vec` per channel.
        let mut planes: Vec<&[f32]> = Vec::with_capacity(kernels.len());
        for (ic, frame) in frames.iter().enumerate() {
            planes.clear();
            planes.extend(kernels.iter().map(|kn| kn[ic].as_slice()));
            let partial = self.convolve_impl(frame, &planes, k, true)?;
            combined = Some(match combined {
                None => partial,
                Some(mut acc) => {
                    // Electrical accumulation of per-channel partial maps
                    // in the VOM.
                    for (dst, src) in acc.output.iter_mut().zip(&partial.output) {
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += *s;
                        }
                    }
                    acc.energy.sensing += partial.energy.sensing;
                    acc.energy.encoding += partial.energy.encoding;
                    acc.energy.tuning += partial.energy.tuning;
                    acc.energy.compute += partial.energy.compute;
                    acc.energy.memory += partial.energy.memory;
                    // One VOM accumulation per output value per extra
                    // channel.
                    let adds = acc.output.len() * acc.out_h * acc.out_w;
                    acc.energy.aggregation += partial.energy.aggregation
                        + self.vom.config().accumulate_energy * adds as f64;
                    acc.timeline.capture += partial.timeline.capture;
                    acc.timeline.mapping += partial.timeline.mapping;
                    acc.timeline.compute += partial.timeline.compute;
                    acc.timeline.transmit += partial.timeline.transmit;
                    acc.timeline.control += partial.timeline.control;
                    acc
                }
            });
        }
        combined.ok_or_else(|| CoreError::InvalidParameter("no channels convolved".into()))
    }

    /// Executes a dense (MLP) first layer on a captured frame: the frame
    /// is sensed and ternary-encoded, then each of the `rows × (w·h)`
    /// weight rows is chunked across arms and VOM-aggregated (paper
    /// §III-A's MLP path).
    ///
    /// Rows evaluate in parallel against immutable per-arm snapshots
    /// ([`crate::mlp::matvec_parallel`]); the result is bit-identical
    /// to [`OisaAccelerator::dense_layer_serial`], the serial oracle.
    ///
    /// # Errors
    ///
    /// Propagates sensing, shape and fabric failures.
    pub fn dense_layer(
        &mut self,
        frame: &Frame,
        matrix: &[f32],
        rows: usize,
    ) -> Result<crate::mlp::MatVecReport> {
        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;
        let cols = encoded.optical.len();
        crate::mlp::matvec_parallel(
            &mut self.opc,
            &self.vom,
            &self.mapper,
            matrix,
            rows,
            cols,
            &encoded.optical,
            &mut self.noise,
        )
    }

    /// Single-threaded twin of [`OisaAccelerator::dense_layer`]: chunks
    /// serialise on shared-fabric arm loading, exactly as the hardware
    /// would — the parity oracle the parallel dense path is tested
    /// against.
    ///
    /// # Errors
    ///
    /// Same contract as [`OisaAccelerator::dense_layer`].
    pub fn dense_layer_serial(
        &mut self,
        frame: &Frame,
        matrix: &[f32],
        rows: usize,
    ) -> Result<crate::mlp::MatVecReport> {
        let capture = self.imager.expose(frame)?;
        let encoded = self.vam.encode_capture(&capture)?;
        let cols = encoded.optical.len();
        crate::mlp::matvec(
            &mut self.opc,
            &self.vom,
            &self.mapper,
            matrix,
            rows,
            cols,
            &encoded.optical,
            &mut self.noise,
        )
    }

    /// Executes a dense layer on a raw activation vector already in the
    /// optical domain (`[0, 1]`) — the mid-program dense path of a
    /// [layer program](crate::program): unlike
    /// [`OisaAccelerator::dense_layer`] no frame is sensed or encoded,
    /// the predecessor stage's output drives the arms directly.
    ///
    /// Rows fan out over [`crate::mlp::matvec_parallel`]; one noise
    /// epoch is consumed, exactly as [`OisaAccelerator::dense_layer`]
    /// does.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for shape mismatches or inputs
    /// outside `[0, 1]`; substrate errors from the optical fabric.
    pub fn dense_vector(
        &mut self,
        input: &[f64],
        matrix: &[f32],
        rows: usize,
    ) -> Result<crate::mlp::MatVecReport> {
        crate::mlp::matvec_parallel(
            &mut self.opc,
            &self.vom,
            &self.mapper,
            matrix,
            rows,
            input.len(),
            input,
            &mut self.noise,
        )
    }

    /// Stages the fabric into the exit state one dense `rows × cols`
    /// matvec over `matrix` leaves behind — **without** computing
    /// anything or consuming noise epochs. The dense analogue of
    /// [`OisaAccelerator::prewarm`]: a shard worker entering a layer
    /// program mid-stream replays each dense stage's exit state so its
    /// first frame pays steady-state tuning cost exactly like the
    /// sequential loop (see
    /// [`OisaAccelerator::prewarm_program`](crate::program)).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a matrix that is not
    /// `rows × cols`; substrate errors from the optical fabric.
    pub fn prewarm_dense(&mut self, matrix: &[f32], rows: usize, cols: usize) -> Result<()> {
        if matrix.len() != rows * cols || rows == 0 || cols == 0 {
            return Err(CoreError::InvalidParameter(format!(
                "matrix {rows}x{cols} does not match {} elements",
                matrix.len()
            )));
        }
        let (_scale, normalised) = crate::mlp::normalise_matrix(matrix);
        crate::mlp::replay_exit_state(&mut self.opc, &self.mapper, &normalised, rows, cols)
    }
}

/// Maximum supported window size (7×7).
const MAX_WINDOW: usize = 49;
/// Maximum arms one kernel spans (7×7 → 5 arms).
const MAX_ARMS: usize = 5;

/// Per-row energy partial reduced in row order after a pass.
#[derive(Debug, Default, Clone, Copy)]
struct RowEnergy {
    compute: f64,
    aggregation: f64,
}

/// Rejects empty kernel sets and kernels that are not `k × k`.
fn validate_kernels(kernels: &[&[f32]], k: usize) -> Result<()> {
    if kernels.is_empty() {
        return Err(CoreError::InvalidParameter("no kernels supplied".into()));
    }
    if kernels.iter().any(|kn| kn.len() != k * k) {
        return Err(CoreError::InvalidParameter(format!(
            "every kernel must have {} weights",
            k * k
        )));
    }
    Ok(())
}

/// Validates an encoded optical frame once so the hot loop can skip the
/// per-window range check.
fn validate_optical(optical: &[f64]) -> Result<()> {
    if let Some(i) = optical.iter().position(|a| !(0.0..=1.0).contains(a)) {
        return Err(CoreError::InvalidParameter(format!(
            "encoded optical amplitude {} at pixel {i} outside [0, 1]",
            optical[i]
        )));
    }
    Ok(())
}

/// One fully-staged weight pass, ready to drain: the immutable arm
/// snapshots the row tasks read and the tuning energy the pass is
/// charged. Produced by [`stage_full_pass`]; the single-frame engine
/// double-buffers one of these so pass `N + 1` can stage while pass
/// `N`'s rows drain.
struct StagedPass {
    /// Index of the first kernel this pass serves.
    kernel_index: usize,
    /// Captured arm state per slot, taken right after ring tuning.
    arms: Vec<Vec<ArmSnapshot>>,
    /// Tuning energy of exactly the arms this pass staged.
    tuning: Joule,
}

/// Stages one pass's kernels onto the fabric: quantises each kernel
/// through the mapper, stores the codes in the kernel bank and tunes
/// the rings. Returns the slot assignment.
///
/// A free function over the accelerator's split fields (bank, fabric,
/// mapper) rather than a method so the streamed-staging path can run
/// it concurrently with row evaluation: rows read only previously
/// captured [`ArmSnapshot`]s and the encoded frame, which this
/// function never touches. Shared by the single-frame and batched
/// engines so both stage identically.
#[allow(clippy::too_many_arguments)]
fn stage_pass_onto(
    kbank: &mut KernelBank,
    opc: &mut Opc,
    mapper: &WeightMapper,
    opc_config: &OpcConfig,
    pass_kernels: &[&[f32]],
    kernel_index: usize,
    scales: &[f32],
    ks: KernelSize,
    normalised: &mut Vec<f64>,
    codes: &mut Vec<u16>,
) -> Result<Vec<(usize, usize)>> {
    let slots = assign_slots(pass_kernels.len(), ks, opc_config)?;
    for (pk, (kn, &(bank, first_arm))) in pass_kernels.iter().zip(&slots).enumerate() {
        let scale = scales[kernel_index + pk];
        normalised.clear();
        normalised.extend(kn.iter().map(|&w| f64::from(w / scale)));
        codes.clear();
        for &w in normalised.iter() {
            codes.push(mapper.quantize(w)?.code);
        }
        let offset =
            (bank * oisa_optics::bank::RINGS_PER_BANK + first_arm * RINGS_PER_ARM) % kbank.len();
        kbank.store(offset, codes)?;
        opc.load_kernel(bank, first_arm, normalised, mapper)?;
    }
    Ok(slots)
}

/// Tuning energy of exactly the arms `slots` staged — the energy a
/// pass is charged.
///
/// Summing [`Opc::tuning_energy`] here instead would re-charge the
/// *last* load of every arm on the fabric, double-counting earlier
/// passes (and earlier workloads) on every pass; per-slot accounting
/// is also what lets a stateless shard worker reproduce mid-stream
/// tuning energies without the fabric's full load history (see
/// [`crate::backend`]).
fn pass_tuning_energy_of(
    opc: &Opc,
    slots: &[(usize, usize)],
    arms_per_kernel: usize,
) -> Result<Joule> {
    let mut total = Joule::ZERO;
    for &(bank, first_arm) in slots {
        let bank = opc.bank(bank)?;
        for arm in first_arm..first_arm + arms_per_kernel {
            total += bank.arm(arm)?.tuning_energy();
        }
    }
    Ok(total)
}

/// Stages the pass starting at `kernel_index` end to end — quantise,
/// store, tune, snapshot, charge tuning — and returns everything the
/// drain needs as a [`StagedPass`].
///
/// Because ring tuning cost depends on the fabric's previous operating
/// point, passes must stage in order; the streamed engine preserves
/// that by always staging pass `N + 1` on one thread while only
/// *reading* snapshots of pass `N`, so the tuning energies (and the
/// whole report) stay bit-identical to the strictly serial engine.
#[allow(clippy::too_many_arguments)]
fn stage_full_pass(
    kbank: &mut KernelBank,
    opc: &mut Opc,
    mapper: &WeightMapper,
    opc_config: &OpcConfig,
    kernels: &[&[f32]],
    kernel_index: usize,
    slots_per_pass: usize,
    scales: &[f32],
    ks: KernelSize,
    arms_per_kernel: usize,
    normalised: &mut Vec<f64>,
    codes: &mut Vec<u16>,
) -> Result<StagedPass> {
    let pass_kernels = &kernels[kernel_index..(kernel_index + slots_per_pass).min(kernels.len())];
    let slots = stage_pass_onto(
        kbank,
        opc,
        mapper,
        opc_config,
        pass_kernels,
        kernel_index,
        scales,
        ks,
        normalised,
        codes,
    )?;
    let tuning = pass_tuning_energy_of(opc, &slots, arms_per_kernel)?;
    // Snapshot every slot's arms once per pass; the hot loop then walks
    // immutable captured state instead of doing checked bank/arm
    // lookups per pixel.
    let arms: Vec<Vec<ArmSnapshot>> = slots
        .iter()
        .map(|&(bank, first_arm)| opc.snapshot_kernel_arms(bank, first_arm, arms_per_kernel))
        .collect::<oisa_optics::Result<_>>()?;
    Ok(StagedPass {
        kernel_index,
        arms,
        tuning,
    })
}

/// Per-kernel weight normalisation scales: each kernel's arm carries
/// its own receiver gain, so every kernel uses its full dynamic range
/// (this is what keeps 1-bit weights usable).
fn kernel_scales(kernels: &[&[f32]]) -> Vec<f32> {
    kernels
        .iter()
        .map(|kn| {
            kn.iter()
                .fold(0.0f32, |m, w| m.max(w.abs()))
                .max(f32::MIN_POSITIVE)
        })
        .collect()
}

/// Evaluates one output row of one pass against immutable arm
/// snapshots — the shared hot loop of the single-frame engines and the
/// batched `(frame, pass, row-band)` work items. Windows gather into a
/// stack scratch array, noise comes from the counter-addressed slot
/// streams, and multi-arm kernels aggregate through the VOM.
///
/// Every window goes through the per-window [`ArmSnapshot::mac_indexed`]
/// fold. An across-window ×4 variant ([`ArmSnapshot::mac_indexed_x4`])
/// exists, is bit-identical, and was benchmarked here: on the bench
/// host it *loses* at the frame level (the zero-activation skip the
/// per-window fold gets for free outweighs batched noise mixing — see
/// the perf notes in `crates/optics/src/arm.rs`), so the engine stays
/// on the per-window path and the ×4 kernel remains available for
/// hosts where vectorised integer mixing wins.
#[allow(clippy::too_many_arguments)]
fn eval_row(
    oy: usize,
    row: &mut [f32],
    optical: &[f64],
    width: usize,
    ow: usize,
    k: usize,
    slot_arms: &[Vec<ArmSnapshot>],
    slot_streams: &[SlotStream],
    pass_scales: &[f32],
    vom: &Vom,
) -> RowEnergy {
    let k2 = k * k;
    let mut partial = RowEnergy::default();
    let mut scratch = [0.0f64; MAX_WINDOW];
    for ox in 0..ow {
        for dy in 0..k {
            let src = (oy + dy) * width + ox;
            scratch[dy * k..dy * k + k].copy_from_slice(&optical[src..src + k]);
        }
        let window = &scratch[..k2];
        let position = (oy * ow + ox) as u64;
        for (si, arms) in slot_arms.iter().enumerate() {
            let stream = slot_streams[si].at(position);
            let value = if arms.len() == 1 {
                let (value, e) = arms[0].mac_indexed(window, &stream, 0);
                partial.compute += e;
                value
            } else {
                let mut values = [0.0f64; MAX_ARMS];
                let mut base = 0u64;
                for (ai, chunk) in window.chunks(RINGS_PER_ARM).enumerate() {
                    let (value, e) = arms[ai].mac_indexed(chunk, &stream, base);
                    values[ai] = value;
                    partial.compute += e;
                    base += Arm::counter_stride(chunk.len());
                }
                let (value, agg) = vom.accumulate_values(&values[..arms.len()]);
                partial.aggregation += agg;
                value
            };
            row[si * ow + ox] = (value * f64::from(pass_scales[si])) as f32;
        }
    }
    partial
}

/// Extracts the `k×k` activation window at output position `(oy, ox)`
/// from a row-major optical frame, allocating a fresh `Vec` — the
/// pre-optimisation gather kept for the reference pipeline.
fn gather_window(optical: &[f64], width: usize, oy: usize, ox: usize, k: usize) -> Vec<f64> {
    let mut window = Vec::with_capacity(k * k);
    for dy in 0..k {
        let row = (oy + dy) * width + ox;
        window.extend_from_slice(&optical[row..row + k]);
    }
    window
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel() -> OisaAccelerator {
        OisaAccelerator::new(OisaConfig::small_test()).unwrap()
    }

    /// Reference float convolution with the same ternary front end.
    fn reference_conv(
        frame: &Frame,
        kernel: &[f32],
        k: usize,
        vam: &Vam,
        imager: &Imager,
    ) -> Vec<f32> {
        let capture = imager.expose(frame).unwrap();
        let encoded = vam.encode_capture(&capture).unwrap();
        let w = frame.width();
        let oh = frame.height() - k + 1;
        let ow = w - k + 1;
        let mut out = vec![0.0f32; oh * ow];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f64;
                for dy in 0..k {
                    for dx in 0..k {
                        let a = encoded.optical[(oy + dy) * w + ox + dx];
                        acc += a * f64::from(kernel[dy * k + dx]);
                    }
                }
                out[oy * ow + ox] = acc as f32;
            }
        }
        out
    }

    #[test]
    fn optical_conv_matches_reference_3x3() {
        let mut accel = accel();
        let mut data = vec![0.2; 256];
        for (i, v) in data.iter_mut().enumerate() {
            *v = (0.2 + 0.75 * ((i % 7) as f64 / 7.0)).min(1.0);
        }
        let frame = Frame::new(16, 16, data).unwrap();
        let kernel: Vec<f32> = vec![0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let report = accel
            .convolve_frame(&frame, std::slice::from_ref(&kernel), 3)
            .unwrap();
        let reference = reference_conv(
            &frame,
            &kernel,
            3,
            &Vam::new(VamConfig::paper_default()).unwrap(),
            &Imager::new(ImagerConfig::paper_default(16, 16)).unwrap(),
        );
        assert_eq!(report.output[0].len(), reference.len());
        let max_dev = report.output[0]
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // 4-bit quantisation over a 9-element window.
        assert!(max_dev < 0.35, "max deviation {max_dev}");
    }

    #[test]
    fn multiple_kernels_produce_independent_maps() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.9).unwrap();
        let pos = vec![1.0f32; 9];
        let neg = vec![-1.0f32; 9];
        let report = accel.convolve_frame(&frame, &[pos, neg], 3).unwrap();
        assert_eq!(report.output.len(), 2);
        assert!(report.output[0][0] > 7.0);
        assert!(report.output[1][0] < -7.0);
    }

    #[test]
    fn five_by_five_kernel_uses_vom() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.9).unwrap();
        let kernel = vec![0.5f32; 25];
        let report = accel.convolve_frame(&frame, &[kernel], 5).unwrap();
        // Σ 0.5 × 1.0 over 25 taps ≈ 12.5 (ternary encode of 0.9 → 1.0).
        let v = report.output[0][0];
        assert!((v - 12.5).abs() < 1.5, "got {v}");
        assert!(report.energy.aggregation.get() > 0.0, "VOM must be used");
    }

    #[test]
    fn energy_report_phases_populated() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        let report = accel.convolve_frame(&frame, &[vec![0.5f32; 9]], 3).unwrap();
        assert!(report.energy.sensing.get() > 0.0);
        assert!(report.energy.encoding.get() > 0.0);
        assert!(report.energy.tuning.get() > 0.0);
        assert!(report.energy.compute.get() > 0.0);
        assert!(report.energy.memory.get() > 0.0);
        assert!(report.energy.total().get() > report.energy.compute.get());
        assert!(report.timeline.total().get() > 0.0);
    }

    #[test]
    fn kernel_validation() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        assert!(accel.convolve_frame(&frame, &[], 3).is_err());
        assert!(accel.convolve_frame(&frame, &[vec![0.5f32; 8]], 3).is_err());
        assert!(accel
            .convolve_frame(&frame, &[vec![0.5f32; 16]], 4)
            .is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let frame = Frame::constant(16, 16, 0.7).unwrap();
        let kernel = vec![0.3f32; 9];
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 42;
        let mut a = OisaAccelerator::new(cfg).unwrap();
        let mut b = OisaAccelerator::new(cfg).unwrap();
        let ra = a
            .convolve_frame(&frame, std::slice::from_ref(&kernel), 3)
            .unwrap();
        let rb = b.convolve_frame(&frame, &[kernel], 3).unwrap();
        assert_eq!(ra.output, rb.output);
    }

    #[test]
    fn multichannel_convolution_sums_planes() {
        let mut accel = accel();
        // Two constant channels; kernels that sum each channel's window.
        let bright = Frame::constant(16, 16, 0.9).unwrap();
        let dark = Frame::constant(16, 16, 0.1).unwrap();
        // One output channel: plane 0 all +1, plane 1 all −1.
        let kernels = vec![vec![vec![1.0f32; 9], vec![-1.0f32; 9]]];
        let report = accel
            .convolve_channels(&[bright.clone(), dark], &kernels, 3)
            .unwrap();
        // Channel encodings: 0.9 → 1.0 optical, 0.1 → floor ≈ 0.022.
        // Output ≈ 9·1.0 − 9·0.022 ≈ 8.8.
        let v = report.output[0][0];
        assert!((v - 8.8).abs() < 0.5, "got {v}");
        // Aggregation energy must include the cross-channel adds.
        assert!(report.energy.aggregation.get() > 0.0);

        // Single-channel sanity: same kernels on one channel only.
        let single = accel
            .convolve_frame(&bright, &[vec![1.0f32; 9]], 3)
            .unwrap();
        assert!(single.output[0][0] > 8.0);
    }

    #[test]
    fn multichannel_validation() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        // Kernel with wrong plane count.
        let kernels = vec![vec![vec![1.0f32; 9]]]; // 1 plane for 2 channels
        assert!(accel
            .convolve_channels(&[frame.clone(), frame.clone()], &kernels, 3)
            .is_err());
        assert!(accel.convolve_channels(&[], &[], 3).is_err());
    }

    #[test]
    fn parallel_and_sequential_pipelines_bit_identical() {
        // Force real worker threads even on single-CPU hosts so the
        // parity claim is exercised, not vacuous. Thread count never
        // affects results by design.
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(3);
        let mut data = vec![0.0f64; 256];
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((i % 11) as f64 / 11.0 + (i / 16) as f64 / 32.0).clamp(0.0, 1.0);
        }
        let frame = Frame::new(16, 16, data).unwrap();
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 7;

        // 3×3, multi-pass (25 kernels over 20 slots) and 5×5 (VOM).
        let kernels3: Vec<Vec<f32>> = (0..25)
            .map(|i| (0..9).map(|j| ((i * 5 + j) as f32 * 0.61).sin()).collect())
            .collect();
        let kernels5 = vec![vec![0.4f32; 25], vec![-0.2f32; 25]];

        for (kernels, k) in [(&kernels3, 3usize), (&kernels5, 5usize)] {
            let mut par = OisaAccelerator::new(cfg).unwrap();
            let mut seq = OisaAccelerator::new(cfg).unwrap();
            let rp = par.convolve_frame(&frame, kernels, k).unwrap();
            let rs = seq.convolve_frame_sequential(&frame, kernels, k).unwrap();
            assert_eq!(rp.output, rs.output, "k={k} outputs must be bit-identical");
            assert_eq!(rp.energy, rs.energy, "k={k} energy must be bit-identical");
            assert_eq!(rp.timeline, rs.timeline);
        }
    }

    #[test]
    fn streamed_staging_charges_tuning_exactly_once_per_pass() {
        // 25 kernels on the 20-slot test fabric = 2 passes, so the
        // parallel engine stages pass 2 *while* pass 1 drains. The PR 4
        // double-count class of bug — charging fabric-lifetime tuning
        // energy instead of per-slot pass energy — would grow the
        // charge on every repeated frame; the steady-state cycle must
        // instead be exactly repeatable, and identical to the strictly
        // serial engine's.
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(3);
        let frame = Frame::constant(16, 16, 0.6).unwrap();
        let kernels: Vec<Vec<f32>> = (0..25)
            .map(|i| (0..9).map(|j| ((i * 7 + j) as f32 * 0.37).sin()).collect())
            .collect();
        let cfg = OisaConfig::small_test();
        let mut par = OisaAccelerator::new(cfg).unwrap();
        let mut seq = OisaAccelerator::new(cfg).unwrap();
        let tp: Vec<Joule> = (0..3)
            .map(|_| {
                par.convolve_frame(&frame, &kernels, 3)
                    .unwrap()
                    .energy
                    .tuning
            })
            .collect();
        let ts: Vec<Joule> = (0..3)
            .map(|_| {
                seq.convolve_frame_sequential(&frame, &kernels, 3)
                    .unwrap()
                    .energy
                    .tuning
            })
            .collect();
        assert!(tp[1] > Joule::ZERO);
        // Steady state (runs 2 and 3 both start from pass 2's fabric
        // state) repeats exactly; accumulation would make t[2] > t[1].
        assert_eq!(tp[1], tp[2], "steady-state tuning must not accumulate");
        assert_eq!(tp, ts, "streamed staging must charge what serial charges");
    }

    #[test]
    fn optimised_pipeline_matches_reference_noiselessly() {
        // With noise disabled the counter-stream and stateful draws are
        // both identity, so the optimised pipeline must reproduce the
        // pre-optimisation reference exactly.
        let mut data = vec![0.0f64; 256];
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((i % 7) as f64 / 7.0).clamp(0.0, 1.0);
        }
        let frame = Frame::new(16, 16, data).unwrap();
        let kernels: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..9).map(|j| ((i * 3 + j) as f32 * 0.45).cos()).collect())
            .collect();
        let cfg = OisaConfig::small_test();
        let mut fast = OisaAccelerator::new(cfg).unwrap();
        let mut slow = OisaAccelerator::new(cfg).unwrap();
        let rf = fast.convolve_frame(&frame, &kernels, 3).unwrap();
        let rr = slow.convolve_frame_reference(&frame, &kernels, 3).unwrap();
        assert_eq!(rf.output, rr.output);
        // Energy matches up to reduction grouping (row partials vs one
        // running sum).
        let rel =
            (rf.energy.total().get() - rr.energy.total().get()).abs() / rr.energy.total().get();
        assert!(rel < 1e-9, "energy drift {rel}");
    }

    #[test]
    fn batch_bit_identical_to_per_frame_sequential_loop() {
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(3);
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 31;
        let frames: Vec<Frame> = (0..5)
            .map(|f| {
                let data: Vec<f64> = (0..256)
                    .map(|i| ((i * (f + 2)) % 13) as f64 / 13.0)
                    .collect();
                Frame::new(16, 16, data).unwrap()
            })
            .collect();
        // 25 kernels → 2 passes on the 20-slot test fabric, plus a 5×5
        // (VOM-aggregated) workload.
        let kernels3: Vec<Vec<f32>> = (0..25)
            .map(|i| (0..9).map(|j| ((i * 5 + j) as f32 * 0.61).sin()).collect())
            .collect();
        let kernels5 = vec![vec![0.4f32; 25], vec![-0.2f32; 25]];
        for (kernels, k) in [(&kernels3, 3usize), (&kernels5, 5usize)] {
            let mut batch = OisaAccelerator::new(cfg).unwrap();
            let mut serial = OisaAccelerator::new(cfg).unwrap();
            let batched = batch.convolve_frames(&frames, kernels, k).unwrap();
            let looped: Vec<ConvolutionReport> = frames
                .iter()
                .map(|f| serial.convolve_frame_sequential(f, kernels, k).unwrap())
                .collect();
            assert_eq!(
                batched, looped,
                "k={k} batch must equal the sequential loop"
            );
            // And both accelerators continue identically afterwards
            // (same fabric state, same noise epoch).
            assert_eq!(
                batch.convolve_frame(&frames[0], kernels, k).unwrap(),
                serial.convolve_frame(&frames[0], kernels, k).unwrap(),
                "k={k} post-batch state must match the loop's"
            );
        }
    }

    #[test]
    fn single_frame_batch_matches_sequential_call() {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 8;
        let frame = Frame::constant(16, 16, 0.6).unwrap();
        let kernels = vec![vec![0.3f32; 9], vec![-0.7f32; 9]];
        let mut a = OisaAccelerator::new(cfg).unwrap();
        let mut b = OisaAccelerator::new(cfg).unwrap();
        let batched = a
            .convolve_frames(std::slice::from_ref(&frame), &kernels, 3)
            .unwrap();
        let single = b.convolve_frame_sequential(&frame, &kernels, 3).unwrap();
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0], single);
    }

    #[test]
    fn batch_validation() {
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.5).unwrap();
        assert!(accel.convolve_frames(&[], &[vec![0.5f32; 9]], 3).is_err());
        assert!(accel
            .convolve_frames(std::slice::from_ref(&frame), &[], 3)
            .is_err());
        assert!(accel
            .convolve_frames(std::slice::from_ref(&frame), &[vec![0.5f32; 8]], 3)
            .is_err());
        // Frame not matching the imager dimensions.
        let wrong = Frame::constant(8, 8, 0.5).unwrap();
        assert!(accel
            .convolve_frames(&[frame, wrong], &[vec![0.5f32; 9]], 3)
            .is_err());
    }

    #[test]
    fn dense_layer_parallel_matches_serial_oracle() {
        let _guard = crate::test_sync::thread_count_lock();
        rayon::set_num_threads(3);
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 77;
        let frame = Frame::constant(16, 16, 0.55).unwrap();
        let rows = 6;
        let matrix: Vec<f32> = (0..rows * 256).map(|i| (i as f32 * 0.11).sin()).collect();
        let mut parallel = OisaAccelerator::new(cfg).unwrap();
        let mut serial = OisaAccelerator::new(cfg).unwrap();
        let rp = parallel.dense_layer(&frame, &matrix, rows).unwrap();
        let rs = serial.dense_layer_serial(&frame, &matrix, rows).unwrap();
        assert_eq!(rp, rs);
        // The engines also leave the fabric in the same operating
        // point, so interleaved dense + conv workloads keep identical
        // energy accounting (ring tuning cost is state-dependent).
        let kernels = vec![vec![0.4f32; 9], vec![-0.6f32; 9]];
        assert_eq!(
            parallel.convolve_frame(&frame, &kernels, 3).unwrap(),
            serial.convolve_frame(&frame, &kernels, 3).unwrap(),
            "post-dense fabric state must match the serial oracle's"
        );
    }

    #[test]
    fn multi_pass_when_kernels_exceed_slots() {
        // small_test has 4 banks × 5 arms = 20 slots; 25 kernels → 2
        // passes.
        let mut accel = accel();
        let frame = Frame::constant(16, 16, 0.6).unwrap();
        let kernels: Vec<Vec<f32>> = (0..25).map(|i| vec![(i as f32 / 25.0) - 0.5; 9]).collect();
        let report = accel.convolve_frame(&frame, &kernels, 3).unwrap();
        assert_eq!(report.plan.passes, 2);
        assert_eq!(report.output.len(), 25);
        // Kernel 0 (all −0.5) and kernel 24 (all +0.46) must differ in
        // sign.
        assert!(report.output[0][0] < 0.0);
        assert!(report.output[24][0] > 0.0);
    }
}
