//! Cross-crate guarantees of the async serving front end: per-request
//! reports bit-identical to a sequential per-frame loop regardless of
//! how requests happened to batch, plus the operational paths — batches
//! launching on deadline, on size, backpressure at the queue bound and
//! a shutdown that drains everything still queued.

use std::time::Duration;

use oisa::core::serving::{ServingConfig, ServingEngine, SubmitError};
use oisa::core::{ConvolutionReport, OisaAccelerator, OisaConfig};
use oisa::device::noise::NoiseConfig;
use oisa::sensor::Frame;

fn serving_oisa_config(seed: u64) -> OisaConfig {
    let mut cfg = OisaConfig::small_test();
    cfg.noise = NoiseConfig::paper_default();
    cfg.seed = seed;
    cfg
}

/// Deterministic frame whose texture varies with `tag`.
fn frame_16(tag: u64) -> Frame {
    let data: Vec<f64> = (0..256)
        .map(|i| {
            let phase = (i as f64 * 0.37) + tag as f64 * 1.91;
            (0.5 + 0.5 * phase.sin()).clamp(0.0, 1.0)
        })
        .collect();
    Frame::new(16, 16, data).unwrap()
}

fn kernel_bank(count: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..9)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.41).sin())
                .collect()
        })
        .collect()
}

/// The acceptance property: a frame served through the engine yields a
/// report bit-identical to the same frame run via
/// `convolve_frame_sequential` on an identically-seeded accelerator —
/// whatever batch shapes the queue happened to form.
#[test]
fn served_reports_bit_identical_to_sequential_loop() {
    let frames: Vec<Frame> = (0..7).map(frame_16).collect();
    let kernels = kernel_bank(3);
    // Three very different batching regimes: single-frame batches,
    // mid-size batches, and one batch swallowing everything.
    for max_batch in [1usize, 3, 16] {
        let accel = OisaAccelerator::new(serving_oisa_config(42)).unwrap();
        let engine = ServingEngine::new(
            accel,
            kernels.clone(),
            3,
            ServingConfig {
                max_batch,
                deadline: Duration::from_millis(1),
                queue_depth: 32,
            },
        )
        .unwrap();
        let handles: Vec<_> = frames
            .iter()
            .map(|f| engine.submit(f.clone()).expect("submit"))
            .collect();
        let served: Vec<ConvolutionReport> =
            handles.into_iter().map(|h| h.wait().unwrap()).collect();

        let mut serial = OisaAccelerator::new(serving_oisa_config(42)).unwrap();
        let looped: Vec<ConvolutionReport> = frames
            .iter()
            .map(|f| serial.convolve_frame_sequential(f, &kernels, 3).unwrap())
            .collect();
        assert_eq!(served, looped, "max_batch={max_batch}");

        // The engine hands the backend back with its accelerator in
        // exactly the state the loop left its twin in: the *next*
        // frame agrees too.
        let (backend, stats) = engine.shutdown();
        let mut accel = backend.into_accelerator();
        assert_eq!(stats.frames_completed, frames.len() as u64);
        let next = frame_16(99);
        assert_eq!(
            accel.convolve_frame(&next, &kernels, 3).unwrap(),
            serial.convolve_frame(&next, &kernels, 3).unwrap(),
            "max_batch={max_batch}: post-serving state must match the loop's"
        );
    }
}

/// With a large size bound and a short deadline, a lone pair of frames
/// must be served by the deadline firing — never by reaching size.
#[test]
fn deadline_launches_underfull_batches() {
    let accel = OisaAccelerator::new(serving_oisa_config(7)).unwrap();
    let engine = ServingEngine::new(
        accel,
        kernel_bank(2),
        3,
        ServingConfig {
            max_batch: 64,
            deadline: Duration::from_millis(20),
            queue_depth: 64,
        },
    )
    .unwrap();
    let h0 = engine.submit(frame_16(0)).unwrap();
    let h1 = engine.submit(frame_16(1)).unwrap();
    assert!(h0.wait().is_ok());
    assert!(h1.wait().is_ok());
    let (_accel, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, 2);
    // 2 frames can never reach the size bound of 64, and both completed
    // before shutdown, so every batch was deadline-launched.
    assert!(stats.batches_run >= 1);
    assert_eq!(stats.deadline_batches, stats.batches_run);
    assert_eq!(stats.size_batches, 0);
    assert_eq!(stats.drain_batches, 0);
    // Queue waits include the deadline dwell, so the distribution is
    // populated and ordered.
    assert!(stats.queue_wait_p50_us > 0.0);
    assert!(stats.queue_wait_p50_us <= stats.queue_wait_p99_us);
    assert!(stats.queue_wait_p99_us <= stats.queue_wait_max_us);
}

/// With an effectively infinite deadline, filling the queue to
/// `max_batch` is the only thing that can launch — and it launches one
/// exactly-full batch.
#[test]
fn size_bound_launches_full_batches() {
    let accel = OisaAccelerator::new(serving_oisa_config(8)).unwrap();
    let engine = ServingEngine::new(
        accel,
        kernel_bank(2),
        3,
        ServingConfig {
            max_batch: 4,
            deadline: Duration::MAX,
            queue_depth: 64,
        },
    )
    .unwrap();
    let handles: Vec<_> = (0..4)
        .map(|i| engine.submit(frame_16(i)).unwrap())
        .collect();
    for h in handles {
        assert!(h.wait().is_ok());
    }
    let (_accel, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, 4);
    assert_eq!(stats.batches_run, 1);
    assert_eq!(stats.size_batches, 1);
    assert_eq!(stats.deadline_batches, 0);
    assert_eq!(
        stats.batch_size_histogram[4], 1,
        "{:?}",
        stats.batch_size_histogram
    );
    assert!(stats.frames_per_sec > 0.0);
}

/// A full queue bounces `try_submit` with the frame handed back, and
/// blocks `submit` until the worker frees space.
#[test]
fn backpressure_bounds_the_queue() {
    let accel = OisaAccelerator::new(serving_oisa_config(9)).unwrap();
    // Worker holds the first batch open for 800 ms (deadline) while the
    // queue is only 2 deep, so the third frame must feel backpressure.
    let engine = ServingEngine::new(
        accel,
        kernel_bank(1),
        3,
        ServingConfig {
            max_batch: 64,
            deadline: Duration::from_millis(800),
            queue_depth: 2,
        },
    )
    .unwrap();
    let h0 = engine.submit(frame_16(0)).unwrap();
    let h1 = engine.submit(frame_16(1)).unwrap();
    // The worker dequeues only when a batch launches; until the
    // deadline fires the queue stays at depth 2.
    let bounced = match engine.try_submit(frame_16(2)) {
        Err(SubmitError::Backpressure(frame)) => frame,
        other => panic!("expected backpressure, got {other:?}"),
    };
    assert_eq!(bounced, frame_16(2), "the frame comes back intact");

    // The blocking path waits out the backpressure and then succeeds.
    let h2 = std::thread::scope(|s| {
        s.spawn(|| engine.submit(bounced).expect("blocking submit"))
            .join()
            .expect("submitter thread")
    });
    for h in [h0, h1, h2] {
        assert!(h.wait().is_ok());
    }
    let (_accel, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, 3);
}

/// Shutdown with a full queue and an infinite deadline: nothing could
/// have launched yet, so the drain must run everything and resolve
/// every handle.
#[test]
fn shutdown_drains_the_queue() {
    let frames: Vec<Frame> = (0..5).map(frame_16).collect();
    let kernels = kernel_bank(2);
    let accel = OisaAccelerator::new(serving_oisa_config(10)).unwrap();
    let engine = ServingEngine::new(
        accel,
        kernels.clone(),
        3,
        ServingConfig {
            max_batch: 8,
            deadline: Duration::MAX,
            queue_depth: 8,
        },
    )
    .unwrap();
    let handles: Vec<_> = frames
        .iter()
        .map(|f| engine.submit(f.clone()).unwrap())
        .collect();
    // Nothing has launched (size 5 < 8, deadline never): shutdown must
    // drain the 5 pending frames in one final batch.
    let (_accel, stats) = engine.shutdown();
    assert_eq!(stats.frames_completed, 5);
    assert_eq!(stats.drain_batches, 1);
    assert_eq!(stats.batch_size_histogram[5], 1);
    assert_eq!(stats.queued, 0, "nothing left behind");

    // Handles queued at shutdown still resolve — bit-identically.
    let mut serial = OisaAccelerator::new(serving_oisa_config(10)).unwrap();
    for (h, f) in handles.into_iter().zip(&frames) {
        assert_eq!(
            h.wait().unwrap(),
            serial.convolve_frame_sequential(f, &kernels, 3).unwrap()
        );
    }
}

/// Dropping the engine without an explicit shutdown still resolves all
/// outstanding handles (the drop path drains).
#[test]
fn drop_resolves_outstanding_handles() {
    let accel = OisaAccelerator::new(serving_oisa_config(11)).unwrap();
    let engine = ServingEngine::new(
        accel,
        kernel_bank(1),
        3,
        ServingConfig {
            max_batch: 8,
            deadline: Duration::MAX,
            queue_depth: 8,
        },
    )
    .unwrap();
    let h0 = engine.submit(frame_16(3)).unwrap();
    let h1 = engine.submit(frame_16(4)).unwrap();
    drop(engine);
    assert!(h0.wait().is_ok());
    assert!(h1.wait().is_ok());
}
