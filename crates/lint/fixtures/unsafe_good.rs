// Fixture: both the documented-unsafe shapes the rule accepts.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn read_raw_unchecked(p: *const u8) -> u8 {
    // SAFETY: forwarded verbatim from this fn's own contract.
    unsafe { *p }
}

pub fn decoy() -> &'static str {
    // The word unsafe in comments and strings must not count.
    "unsafe { totally_fine() }"
}
