//! Regenerates paper Table II: accuracy across `[weight:activation]`
//! configurations on the four dataset stand-ins.
//!
//! Pass `--quick` for a reduced run (fewer epochs; same orderings).

use oisa_bench::table2::{paper_datasets, run_dataset, AccuracyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::default()
    };
    println!("=== Table II — accuracy (%) on the four dataset stand-ins ===");
    println!(
        "(synthetic substitutes for MNIST/SVHN/CIFAR — see DESIGN.md; {} epochs)\n",
        cfg.epochs
    );
    let mut results = Vec::new();
    for (spec, kind) in paper_datasets() {
        eprintln!("training on {} ...", spec.name);
        results.push(run_dataset(&spec, kind, &cfg)?);
    }
    print!("{:<14}", "config");
    for r in &results {
        print!(" {:>26}", r.dataset);
    }
    println!();
    println!("{}", "-".repeat(14 + results.len() * 27));
    let row = |name: &str, vals: Vec<f64>| {
        print!("{name:<14}");
        for v in vals {
            print!(" {:>26.2}", v * 100.0);
        }
        println!();
    };
    row("baseline", results.iter().map(|r| r.baseline).collect());
    row("FBNA-like", results.iter().map(|r| r.fbna_like).collect());
    row(
        "AppCiP-like",
        results.iter().map(|r| r.appcip_like).collect(),
    );
    row("PISA-like", results.iter().map(|r| r.pisa_like).collect());
    for (i, bits) in [4u8, 3, 2, 1].iter().enumerate() {
        row(
            &format!("OISA[{bits}:2]"),
            results.iter().map(|r| r.oisa[i].1).collect(),
        );
    }
    println!("\npaper Table II (for shape comparison):");
    println!("              MNIST   SVHN    CIFAR-10 CIFAR-100");
    println!("baseline      99.6    97.5    91.37    78.4");
    println!("FBNA          –       96.9    88.61    71.5");
    println!("AppCiP        –       96.4    89.51    –");
    println!("PISA          95.12   90.35   79.80    61.6");
    println!("OISA[4:2]     95.21   91.74   81.23    61.38");
    println!("OISA[3:2]     96.18   94.36   84.45    66.89");
    println!("OISA[2:2]     96.25   93.20   83.85    66.94");
    println!("OISA[1:2]     95.75   93.16   83.64    66.06");
    Ok(())
}
