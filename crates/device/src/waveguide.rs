//! Waveguide routing losses and WDM channel plans.
//!
//! The OPC routes every VCSEL through a multiplexer, along an arm of ten
//! microrings, and into the balanced photodetector. Losses along that path
//! reduce the optical signal and thus the BPD's SNR; they also set the
//! laser power budget, which appears in the architecture power model.

use oisa_units::{db_to_ratio, Meter};
use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// Loss budget for an on-chip optical path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBudget {
    /// Propagation loss, dB per metre (silicon strip ≈ 150–300 dB/m).
    pub propagation_db_per_m: f64,
    /// Insertion loss per passive ring pass-by, dB.
    pub per_ring_db: f64,
    /// Loss per splitter stage, dB.
    pub splitter_db: f64,
    /// Fibre/grating coupler loss, dB per crossing.
    pub coupler_db: f64,
}

impl LossBudget {
    /// Typical silicon-photonics numbers used by the paper's cited
    /// platforms: 2 dB/cm propagation, 0.05 dB per ring pass-by, 0.2 dB
    /// per splitter, 1.5 dB per coupler.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            propagation_db_per_m: 200.0,
            per_ring_db: 0.05,
            splitter_db: 0.2,
            coupler_db: 1.5,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.propagation_db_per_m < 0.0
            || self.per_ring_db < 0.0
            || self.splitter_db < 0.0
            || self.coupler_db < 0.0
        {
            return Err(DeviceError::InvalidParameter(
                "loss figures must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// A concrete optical path through the chip.
///
/// # Examples
///
/// ```
/// use oisa_device::waveguide::{LossBudget, OpticalPath};
/// use oisa_units::Meter;
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let path = OpticalPath::new(LossBudget::paper_default())?
///     .with_length(Meter::from_milli(2.0))
///     .with_ring_passes(9) // the other rings of a 10-MR arm
///     .with_splitters(2)
///     .with_couplers(1);
/// let t = path.transmission();
/// assert!(t > 0.2 && t < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpticalPath {
    budget: LossBudget,
    length: Meter,
    ring_passes: u32,
    splitters: u32,
    couplers: u32,
}

impl OpticalPath {
    /// Starts an empty path with the given loss budget.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for negative losses.
    pub fn new(budget: LossBudget) -> Result<Self> {
        budget.validate()?;
        Ok(Self {
            budget,
            length: Meter::ZERO,
            ring_passes: 0,
            splitters: 0,
            couplers: 0,
        })
    }

    /// Sets the waveguide length.
    #[must_use]
    pub fn with_length(mut self, length: Meter) -> Self {
        self.length = length;
        self
    }

    /// Sets the number of off-resonance ring pass-bys.
    #[must_use]
    pub fn with_ring_passes(mut self, n: u32) -> Self {
        self.ring_passes = n;
        self
    }

    /// Sets the number of splitter stages.
    #[must_use]
    pub fn with_splitters(mut self, n: u32) -> Self {
        self.splitters = n;
        self
    }

    /// Sets the number of coupler crossings.
    #[must_use]
    pub fn with_couplers(mut self, n: u32) -> Self {
        self.couplers = n;
        self
    }

    /// Total insertion loss in dB (positive number).
    #[must_use]
    pub fn insertion_loss_db(&self) -> f64 {
        self.budget.propagation_db_per_m * self.length.get()
            + self.budget.per_ring_db * f64::from(self.ring_passes)
            + self.budget.splitter_db * f64::from(self.splitters)
            + self.budget.coupler_db * f64::from(self.couplers)
    }

    /// Power transmission of the path, `10^(−loss/10)`.
    #[must_use]
    pub fn transmission(&self) -> f64 {
        db_to_ratio(-self.insertion_loss_db())
    }
}

/// A WDM channel plan: evenly spaced wavelengths around a centre.
///
/// Each arm of the OPC carries ten channels, one per microring. The plan
/// guards channel spacing against the ring FWHM so crosstalk stays
/// bounded.
///
/// # Examples
///
/// ```
/// use oisa_device::waveguide::ChannelPlan;
/// use oisa_units::Meter;
///
/// # fn main() -> Result<(), oisa_device::DeviceError> {
/// let plan = ChannelPlan::new(Meter::from_nano(1550.0), Meter::from_nano(0.8), 10)?;
/// assert_eq!(plan.channel_count(), 10);
/// let w0 = plan.wavelength(0)?;
/// let w9 = plan.wavelength(9)?;
/// assert!(w9.get() > w0.get());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    center: Meter,
    spacing: Meter,
    count: u16,
}

impl ChannelPlan {
    /// Builds a plan of `count` channels spaced by `spacing` centred on
    /// `center`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for zero spacing or
    /// count.
    pub fn new(center: Meter, spacing: Meter, count: u16) -> Result<Self> {
        if spacing.get() <= 0.0 {
            return Err(DeviceError::InvalidParameter(
                "channel spacing must be positive".into(),
            ));
        }
        if count == 0 {
            return Err(DeviceError::InvalidParameter(
                "channel count must be positive".into(),
            ));
        }
        Ok(Self {
            center,
            spacing,
            count,
        })
    }

    /// The paper's arm plan: ten channels spread over the ring's free
    /// spectral range (≈ 1.8 nm spacing around 1550 nm). The spacing must
    /// clear the worst-case weight detuning (≈ 0.67 nm) with margin, or
    /// a fully-programmed ring would land on its neighbour's channel.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`ChannelPlan::new`].
    pub fn paper_arm() -> Result<Self> {
        let fsr = crate::mr::MrDesign::paper_default().free_spectral_range();
        Self::new(Meter::from_nano(1550.0), Meter::new(fsr.get() / 10.0), 10)
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> u16 {
        self.count
    }

    /// Channel spacing.
    #[must_use]
    pub fn spacing(&self) -> Meter {
        self.spacing
    }

    /// Wavelength of channel `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] when `index ≥ count`.
    pub fn wavelength(&self, index: u16) -> Result<Meter> {
        if index >= self.count {
            return Err(DeviceError::OutOfRange(format!(
                "channel {index} of {}",
                self.count
            )));
        }
        let offset = f64::from(index) - f64::from(self.count - 1) / 2.0;
        Ok(self.center + self.spacing * offset)
    }

    /// Spectral distance between two channels.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfRange`] when either index is out of
    /// range.
    pub fn separation(&self, a: u16, b: u16) -> Result<Meter> {
        let wa = self.wavelength(a)?;
        let wb = self.wavelength(b)?;
        Ok((wa - wb).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_path_is_lossless() {
        let p = OpticalPath::new(LossBudget::paper_default()).unwrap();
        assert_eq!(p.insertion_loss_db(), 0.0);
        assert_eq!(p.transmission(), 1.0);
    }

    #[test]
    fn loss_components_add() {
        let b = LossBudget::paper_default();
        let p = OpticalPath::new(b)
            .unwrap()
            .with_length(Meter::from_milli(10.0)) // 2 dB
            .with_ring_passes(9) // 0.45 dB
            .with_splitters(2) // 0.4 dB
            .with_couplers(1); // 1.5 dB
        assert!((p.insertion_loss_db() - 4.35).abs() < 1e-9);
        assert!((p.transmission() - db_to_ratio(-4.35)).abs() < 1e-12);
    }

    #[test]
    fn negative_budget_rejected() {
        let mut b = LossBudget::paper_default();
        b.splitter_db = -1.0;
        assert!(OpticalPath::new(b).is_err());
    }

    #[test]
    fn channel_plan_centres_and_spacing() {
        let plan = ChannelPlan::paper_arm().unwrap();
        let w0 = plan.wavelength(0).unwrap();
        let w9 = plan.wavelength(9).unwrap();
        // Symmetric around 1550 nm.
        assert!(((w0.as_nano() + w9.as_nano()) / 2.0 - 1550.0).abs() < 1e-9);
        // Total span 9 × (FSR/10) ≈ 16.4 nm, inside one FSR.
        let fsr = crate::mr::MrDesign::paper_default()
            .free_spectral_range()
            .as_nano();
        assert!((w9.as_nano() - w0.as_nano() - 0.9 * fsr).abs() < 1e-9);
        assert!((plan.separation(3, 4).unwrap().as_nano() - fsr / 10.0).abs() < 1e-9);
        // Spacing clears the worst-case weight detuning with margin.
        assert!(plan.spacing().as_nano() > 2.0 * 0.67);
    }

    #[test]
    fn channel_plan_bounds_checked() {
        let plan = ChannelPlan::paper_arm().unwrap();
        assert!(plan.wavelength(10).is_err());
        assert!(plan.separation(0, 10).is_err());
        assert!(ChannelPlan::new(Meter::from_nano(1550.0), Meter::ZERO, 4).is_err());
        assert!(ChannelPlan::new(Meter::from_nano(1550.0), Meter::from_nano(0.8), 0).is_err());
    }

    #[test]
    fn channel_spacing_exceeds_ring_fwhm() {
        // Guard invariant the optics crate depends on: the paper plan's
        // spacing is ≥ 2 × FWHM of the paper ring (0.31 nm).
        let plan = ChannelPlan::paper_arm().unwrap();
        let fwhm = crate::mr::MrDesign::paper_default().fwhm();
        assert!(plan.spacing().get() >= 2.0 * fwhm.get());
    }

    proptest! {
        #[test]
        fn transmission_in_unit_interval(
            len_mm in 0.0..50.0f64,
            rings in 0u32..100,
            splitters in 0u32..10,
        ) {
            let p = OpticalPath::new(LossBudget::paper_default()).unwrap()
                .with_length(Meter::from_milli(len_mm))
                .with_ring_passes(rings)
                .with_splitters(splitters);
            let t = p.transmission();
            prop_assert!(t > 0.0 && t <= 1.0);
        }

        #[test]
        fn longer_paths_lose_more(len1 in 0.0..10.0f64, extra in 0.1..10.0f64) {
            let base = OpticalPath::new(LossBudget::paper_default()).unwrap();
            let short = base.with_length(Meter::from_milli(len1));
            let long = base.with_length(Meter::from_milli(len1 + extra));
            prop_assert!(long.transmission() < short.transmission());
        }
    }
}
