//! Good: the wire header carries a caller-provided epoch counter —
//! a pure function of the job — and the wall clock is used only for
//! latency stats that never reach an encoder or a noise key.

pub fn snapshot(buf: &mut Vec<u8>, epoch: u64) {
    wire::encode_header(buf, epoch);
}

pub fn latency_probe() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
