//! Fault injection for the optical fabric.
//!
//! Photonic accelerators degrade in characteristic ways: a ring's heater
//! can fail open (the ring parks at its fabricated resonance and blocks
//! its channel), a ring can stick at full detuning (its channel passes
//! at full weight), or an arm's detector can die outright. Injecting
//! these faults lets tests and examples measure how gracefully the
//! architecture degrades — robustness the paper touches on through its
//! noise discussion but never quantifies.

use oisa_device::noise::NoiseSource;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::arm::MacResult;
use crate::opc::Opc;
use crate::{OpticsError, Result};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fault {
    /// The ring's tuning is stuck on resonance: its channel reads weight
    /// 0 regardless of the programmed value.
    RingStuckLow {
        /// Bank index.
        bank: usize,
        /// Arm index within the bank.
        arm: usize,
        /// Ring index within the arm.
        ring: usize,
    },
    /// The ring is stuck fully detuned: its channel reads its full
    /// programmed activation as if the weight were 1.
    RingStuckHigh {
        /// Bank index.
        bank: usize,
        /// Arm index within the bank.
        arm: usize,
        /// Ring index within the arm.
        ring: usize,
    },
    /// The arm's balanced detector is dead: the arm always reports 0.
    DeadDetector {
        /// Bank index.
        bank: usize,
        /// Arm index within the bank.
        arm: usize,
    },
}

/// A set of faults applied to an OPC during computation.
///
/// # Examples
///
/// ```
/// use oisa_optics::fault::{Fault, FaultMap};
///
/// let mut faults = FaultMap::new();
/// faults.inject(Fault::DeadDetector { bank: 0, arm: 2 });
/// assert_eq!(faults.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    faults: Vec<Fault>,
}

impl FaultMap {
    /// An empty (healthy) map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    pub fn inject(&mut self, fault: Fault) {
        if !self.faults.contains(&fault) {
            self.faults.push(fault);
        }
    }

    /// Number of injected faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when no fault is injected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// All faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Draws `count` random ring faults over an OPC of the given
    /// dimensions (a fabrication-yield scenario).
    pub fn random_ring_faults<R: Rng + ?Sized>(count: usize, banks: usize, rng: &mut R) -> Self {
        let mut map = Self::new();
        for _ in 0..count {
            let bank = rng.gen_range(0..banks);
            let arm = rng.gen_range(0..crate::bank::ARMS_PER_BANK);
            let ring = rng.gen_range(0..crate::arm::RINGS_PER_ARM);
            let fault = if rng.gen_bool(0.5) {
                Fault::RingStuckLow { bank, arm, ring }
            } else {
                Fault::RingStuckHigh { bank, arm, ring }
            };
            map.inject(fault);
        }
        map
    }

    fn detector_dead(&self, bank: usize, arm: usize) -> bool {
        self.faults.iter().any(
            |f| matches!(f, Fault::DeadDetector { bank: b, arm: a } if *b == bank && *a == arm),
        )
    }

    fn ring_fault(&self, bank: usize, arm: usize, ring: usize) -> Option<&Fault> {
        self.faults.iter().find(|f| match f {
            Fault::RingStuckLow {
                bank: b,
                arm: a,
                ring: r,
            }
            | Fault::RingStuckHigh {
                bank: b,
                arm: a,
                ring: r,
            } => *b == bank && *a == arm && *r == ring,
            Fault::DeadDetector { .. } => false,
        })
    }

    /// Evaluates one arm under this fault map: stuck rings override the
    /// programmed weight contribution, a dead detector zeroes the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates index and arm-level failures.
    pub fn compute_arm(
        &self,
        opc: &Opc,
        bank: usize,
        arm: usize,
        activations: &[f64],
        noise: &mut NoiseSource,
    ) -> Result<MacResult> {
        let healthy = opc.compute_arm(bank, arm, activations, noise)?;
        if self.detector_dead(bank, arm) {
            return Ok(MacResult {
                value: 0.0,
                raw_current: 0.0,
                ..healthy
            });
        }
        if self.faults.is_empty() {
            return Ok(healthy);
        }
        // Correct the healthy value for stuck rings: remove the
        // programmed contribution and add the stuck one.
        let weights = opc.bank(bank)?.arm(arm)?.weights();
        let mut value = healthy.value;
        for (ring, (a, w)) in activations.iter().zip(weights).enumerate() {
            match self.ring_fault(bank, arm, ring) {
                Some(Fault::RingStuckLow { .. }) => {
                    value -= w.value() * a;
                }
                Some(Fault::RingStuckHigh { .. }) => {
                    value -= w.value() * a;
                    // Stuck-high passes full amplitude on the sign
                    // waveguide the weight was routed to.
                    let sign = if w.negative { -1.0 } else { 1.0 };
                    value += sign * a;
                }
                _ => {}
            }
        }
        Ok(MacResult { value, ..healthy })
    }
}

impl FromIterator<Fault> for FaultMap {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        let mut map = Self::new();
        for f in iter {
            map.inject(f);
        }
        map
    }
}

/// Checks whether a fault's coordinates fit an OPC.
///
/// # Errors
///
/// Returns [`OpticsError::IndexOutOfRange`] when they do not.
pub fn validate_fault(fault: &Fault, opc: &Opc) -> Result<()> {
    let (bank, arm, ring) = match *fault {
        Fault::RingStuckLow { bank, arm, ring } | Fault::RingStuckHigh { bank, arm, ring } => {
            (bank, arm, Some(ring))
        }
        Fault::DeadDetector { bank, arm } => (bank, arm, None),
    };
    if bank >= opc.bank_count() || arm >= crate::bank::ARMS_PER_BANK {
        return Err(OpticsError::IndexOutOfRange(format!(
            "fault at bank {bank}, arm {arm}"
        )));
    }
    if let Some(r) = ring {
        if r >= crate::arm::RINGS_PER_ARM {
            return Err(OpticsError::IndexOutOfRange(format!("fault at ring {r}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::ArmConfig;
    use crate::opc::OpcConfig;
    use crate::weights::WeightMapper;
    use oisa_device::noise::{NoiseConfig, NoiseSource};

    fn small_opc_with_kernel() -> Opc {
        let cfg = OpcConfig {
            banks: 2,
            columns: 1,
            awc_units: 10,
            arm: ArmConfig::no_crosstalk(),
        };
        let mut opc = Opc::new(cfg).unwrap();
        let mapper = WeightMapper::ideal(4).unwrap();
        opc.load_kernel(
            0,
            0,
            &[1.0, -1.0, 0.5, 0.0, 0.25, 0.75, -0.5, 0.1, 0.9],
            &mapper,
        )
        .unwrap();
        opc
    }

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    #[test]
    fn healthy_map_is_transparent() {
        let opc = small_opc_with_kernel();
        let map = FaultMap::new();
        let a = [1.0; 9];
        let healthy = opc.compute_arm(0, 0, &a, &mut quiet()).unwrap();
        let via_map = map.compute_arm(&opc, 0, 0, &a, &mut quiet()).unwrap();
        assert!((healthy.value - via_map.value).abs() < 1e-12);
    }

    #[test]
    fn dead_detector_zeroes_output() {
        let opc = small_opc_with_kernel();
        let map: FaultMap = [Fault::DeadDetector { bank: 0, arm: 0 }]
            .into_iter()
            .collect();
        let out = map
            .compute_arm(&opc, 0, 0, &[1.0; 9], &mut quiet())
            .unwrap();
        assert_eq!(out.value, 0.0);
    }

    #[test]
    fn stuck_low_removes_one_contribution() {
        let opc = small_opc_with_kernel();
        let a = [1.0; 9];
        let healthy = opc.compute_arm(0, 0, &a, &mut quiet()).unwrap().value;
        let map: FaultMap = [Fault::RingStuckLow {
            bank: 0,
            arm: 0,
            ring: 0, // weight +1.0
        }]
        .into_iter()
        .collect();
        let faulty = map.compute_arm(&opc, 0, 0, &a, &mut quiet()).unwrap().value;
        assert!(
            (healthy - faulty - 1.0).abs() < 0.05,
            "losing the +1.0 ring: {healthy} -> {faulty}"
        );
    }

    #[test]
    fn stuck_high_forces_full_weight() {
        let opc = small_opc_with_kernel();
        let a = [1.0; 9];
        let healthy = opc.compute_arm(0, 0, &a, &mut quiet()).unwrap().value;
        // Ring 3 holds weight 0.0 → stuck high adds +1.0.
        let map: FaultMap = [Fault::RingStuckHigh {
            bank: 0,
            arm: 0,
            ring: 3,
        }]
        .into_iter()
        .collect();
        let faulty = map.compute_arm(&opc, 0, 0, &a, &mut quiet()).unwrap().value;
        assert!(
            (faulty - healthy - 1.0).abs() < 0.05,
            "stuck-high zero ring: {healthy} -> {faulty}"
        );
    }

    #[test]
    fn duplicate_faults_deduplicated() {
        let mut map = FaultMap::new();
        let f = Fault::DeadDetector { bank: 0, arm: 0 };
        map.inject(f);
        map.inject(f);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn random_faults_within_bounds() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let opc = small_opc_with_kernel();
        let mut rng = StdRng::seed_from_u64(9);
        let map = FaultMap::random_ring_faults(20, 2, &mut rng);
        assert!(!map.is_empty());
        for f in map.faults() {
            validate_fault(f, &opc).unwrap();
        }
    }

    #[test]
    fn fault_validation_rejects_out_of_range() {
        let opc = small_opc_with_kernel();
        assert!(validate_fault(&Fault::DeadDetector { bank: 5, arm: 0 }, &opc).is_err());
        assert!(validate_fault(
            &Fault::RingStuckLow {
                bank: 0,
                arm: 0,
                ring: 10
            },
            &opc
        )
        .is_err());
    }
}
