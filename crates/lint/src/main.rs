//! `oisa-lint` CLI. See the crate docs (`src/lib.rs`) for the
//! quickstart and `crates/lint/README.md` for the rule catalogue.

use std::path::PathBuf;
use std::process::ExitCode;

use oisa_lint::{check_workspace, discover_root, report, selftest};

const USAGE: &str = "\
oisa-lint — OISA workspace invariant checker

USAGE:
    oisa-lint [--root <dir>] [--allow <file>] [--json | --sarif]
    oisa-lint self-test

OPTIONS:
    --root <dir>     Workspace root (default: ascend from cwd to the
                     first directory containing lint-allow.toml)
    --allow <file>   Allowlist path (default: <root>/lint-allow.toml)
    --json           Emit the machine-readable report on stdout
    --sarif          Emit a SARIF 2.1.0 document for code scanning
    self-test        Run the embedded rule fixtures and exit

EXIT CODE:
    0  clean    1  non-allowlisted findings    2  tool error
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    let mut json = false;
    let mut sarif = false;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(v) => allow = Some(PathBuf::from(v)),
                None => return usage_error("--allow needs a file"),
            },
            "--json" => json = true,
            "--sarif" => sarif = true,
            "self-test" => self_test = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if self_test {
        return match selftest::run() {
            Ok(rep) => {
                print!("{rep}");
                ExitCode::SUCCESS
            }
            Err(rep) => {
                eprint!("{rep}");
                ExitCode::from(1)
            }
        };
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| discover_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "oisa-lint: no lint-allow.toml found above the current directory; pass --root"
            );
            return ExitCode::from(2);
        }
    };
    let allow = allow.unwrap_or_else(|| root.join("lint-allow.toml"));

    match check_workspace(&root, &allow) {
        Ok(applied) => {
            if json {
                print!("{}", report::json(&applied));
            } else if sarif {
                print!("{}", report::sarif(&applied));
            } else {
                print!("{}", report::human(&applied));
            }
            if applied.active.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("oisa-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("oisa-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
