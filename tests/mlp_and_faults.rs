//! Integration tests for the MLP (VOM) path and fault tolerance.

use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::device::noise::{NoiseConfig, NoiseSource};
use oisa::optics::arm::ArmConfig;
use oisa::optics::fault::{Fault, FaultMap};
use oisa::optics::opc::{Opc, OpcConfig};
use oisa::optics::weights::WeightMapper;
use oisa::sensor::fault::{DefectMap, PixelFault};
use oisa::sensor::imager::{Imager, ImagerConfig};
use oisa::sensor::vam::{Vam, VamConfig};
use oisa::sensor::Frame;
use oisa::units::Volt;

#[test]
fn dense_layer_matches_reference_through_accelerator() {
    let mut accel = OisaAccelerator::new(OisaConfig::small_test()).unwrap();
    let img = 16usize;
    let frame = Frame::new(
        img,
        img,
        (0..img * img)
            .map(|i| f64::from(i as u32 % 128) / 127.0)
            .collect(),
    )
    .unwrap();
    let rows = 4usize;
    let cols = img * img;
    let matrix: Vec<f32> = (0..rows * cols)
        .map(|i| ((i as f32) * 0.029).cos() * 0.4)
        .collect();
    let report = accel.dense_layer(&frame, &matrix, rows).unwrap();
    assert_eq!(report.output.len(), rows);
    assert_eq!(report.chunks, rows * cols.div_ceil(9));

    // Reference through the sensor models.
    let imager = Imager::new(ImagerConfig::paper_default(img, img)).unwrap();
    let vam = Vam::new(VamConfig::paper_default()).unwrap();
    let encoded = vam.encode_capture(&imager.expose(&frame).unwrap()).unwrap();
    for r in 0..rows {
        let exact: f64 = (0..cols)
            .map(|c| f64::from(matrix[r * cols + c]) * encoded.optical[c])
            .sum();
        let got = f64::from(report.output[r]);
        assert!(
            (got - exact).abs() < 0.05 * exact.abs().max(1.0) + 0.5,
            "row {r}: optical {got} vs exact {exact}"
        );
    }
}

#[test]
fn single_ring_fault_bounded_impact() {
    // One stuck ring must perturb only its own arm's result, by at most
    // one weight·activation unit.
    let cfg = OpcConfig {
        banks: 2,
        columns: 1,
        awc_units: 10,
        arm: ArmConfig::no_crosstalk(),
    };
    let mut opc = Opc::new(cfg).unwrap();
    let mapper = WeightMapper::ideal(4).unwrap();
    let kernel = [0.5, -0.5, 0.25, 0.75, -0.25, 0.1, -0.9, 0.6, 0.3];
    opc.load_kernel(0, 0, &kernel, &mapper).unwrap();
    opc.load_kernel(0, 1, &kernel, &mapper).unwrap();
    let a = [1.0; 9];
    let mut quiet = NoiseSource::seeded(0, NoiseConfig::noiseless());
    let healthy_0 = opc.compute_arm(0, 0, &a, &mut quiet).unwrap().value;
    let healthy_1 = opc.compute_arm(0, 1, &a, &mut quiet).unwrap().value;

    let faults: FaultMap = [Fault::RingStuckLow {
        bank: 0,
        arm: 0,
        ring: 6, // the −0.9 weight
    }]
    .into_iter()
    .collect();
    let faulty_0 = faults
        .compute_arm(&opc, 0, 0, &a, &mut quiet)
        .unwrap()
        .value;
    let faulty_1 = faults
        .compute_arm(&opc, 0, 1, &a, &mut quiet)
        .unwrap()
        .value;
    // Arm 1 untouched.
    assert!((faulty_1 - healthy_1).abs() < 1e-9);
    // Arm 0 loses exactly the −0.9 contribution (gains +0.9).
    assert!(
        (faulty_0 - healthy_0 - 0.9).abs() < 0.05,
        "{healthy_0} -> {faulty_0}"
    );
}

#[test]
fn defect_map_shifts_only_boundary_pixels() {
    let imager = Imager::new(ImagerConfig::paper_default(16, 16)).unwrap();
    let vam = Vam::new(VamConfig::paper_default()).unwrap();
    // Mid-gray frame: every pixel encodes to level 1.
    let frame = Frame::constant(16, 16, 0.5).unwrap();
    let capture = imager.expose(&frame).unwrap();
    let clean = vam.encode_capture(&capture).unwrap();
    assert_eq!(clean.ternary.histogram(), (0, 256, 0));

    // One dead and one hot pixel.
    let defects: DefectMap = [
        PixelFault::Dead { row: 0, col: 0 },
        PixelFault::Hot { row: 15, col: 15 },
    ]
    .into_iter()
    .collect();
    let corrupted = defects.apply(&capture, Volt::new(0.5)).unwrap();
    let encoded = vam.encode_capture(&corrupted).unwrap();
    let (zeros, ones, twos) = encoded.ternary.histogram();
    assert_eq!((zeros, ones, twos), (1, 254, 1));
}

#[test]
fn mlp_path_deterministic_under_seed() {
    let frame = Frame::constant(16, 16, 0.55).unwrap();
    let matrix = vec![0.2f32; 2 * 256];
    let run = || {
        let mut cfg = OisaConfig::small_test();
        cfg.noise = NoiseConfig::paper_default();
        cfg.seed = 5;
        let mut accel = OisaAccelerator::new(cfg).unwrap();
        accel.dense_layer(&frame, &matrix, 2).unwrap()
    };
    assert_eq!(run().output, run().output);
}
