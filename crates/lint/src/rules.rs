//! The OISA invariant rules: ids, findings, and the per-file rules.
//!
//! Each per-file rule walks the token stream of one [`SourceFile`] and
//! pushes [`Finding`]s — machine-readable `(rule, path, line, col,
//! message)` records. Rules see real tokens (comments, strings and
//! lifetimes are already resolved by [`crate::lexer`]) and skip
//! `#[cfg(test)]` / `#[test]` regions via the file's test mask.
//!
//! The four flow-aware rules (lock-order, panic-reachability,
//! determinism-taint, crate-layering) need the whole workspace at
//! once; they live in [`crate::flow`] but share the [`Finding`] type
//! and the [`ALL_RULES`] catalogue defined here.
//!
//! The rule catalogue (ids, rationale, how to allowlist) lives in
//! `crates/lint/README.md`; keep the two in sync.

use crate::lexer::{self, Token, TokenKind};

/// `unsafe` blocks/fns/impls need a nearby `// SAFETY:` comment (or a
/// `# Safety` doc section).
pub const RULE_UNSAFE: &str = "unsafe-needs-safety";
/// No wall-clock or ambient-entropy calls in deterministic compute
/// paths.
pub const RULE_WALLCLOCK: &str = "deterministic-no-wallclock";
/// No float `==`/`!=` or float text formatting on the wire/merge path;
/// floats cross as `to_bits`/`from_bits`.
pub const RULE_FLOAT_WIRE: &str = "float-bit-exact-wire";
/// Wire message tags must be unique and each must appear in the
/// `TAG_MIN_VERSION` version-gating table.
pub const RULE_TAG_REGISTRY: &str = "wire-tag-registry";
/// `thread::spawn` only in the scheduler, the backend and serving.
pub const RULE_BARE_SPAWN: &str = "no-bare-spawn";
/// No cycle in the global lock-acquisition-order graph (propagated
/// through the call graph).
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// No call-graph path from a serving/backend entry point to
/// `panic!` / `.unwrap()` / `.expect(` in non-test library code.
pub const RULE_PANIC: &str = "panic-reachability";
/// Wall-clock / entropy values must not flow into wire encoding or
/// `NoiseSource` keys and counters.
pub const RULE_TAINT: &str = "determinism-taint";
/// `use` declarations must respect the crate/module dependency DAG.
pub const RULE_LAYERING: &str = "crate-layering";

/// Every rule id, in reporting order.
pub const ALL_RULES: &[&str] = &[
    RULE_UNSAFE,
    RULE_WALLCLOCK,
    RULE_FLOAT_WIRE,
    RULE_TAG_REGISTRY,
    RULE_BARE_SPAWN,
    RULE_LOCK_ORDER,
    RULE_PANIC,
    RULE_TAINT,
    RULE_LAYERING,
];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit
/// (doc-comment `# Safety` sections on the item count too).
const SAFETY_COMMENT_WINDOW: u32 = 16;

/// Files whose **whole token stream** (non-test) must stay free of
/// wall-clock and ambient-entropy identifiers.
const WALLCLOCK_SCOPE_PREFIXES: &[&str] = &["crates/optics/src/"];
const WALLCLOCK_SCOPE_FILES: &[&str] = &[
    "crates/device/src/noise.rs",
    "crates/device/src/simd.rs",
    "crates/core/src/scheduler.rs",
    "crates/core/src/wire.rs",
];
/// Identifiers that betray a wall-clock or ambient-entropy dependency.
/// Serving, TCP, the supervisor and the bench binaries are *not* in
/// scope — timeouts and latency stats legitimately need clocks there.
const WALLCLOCK_IDENTS: &[&str] = &["Instant", "SystemTime", "thread_rng", "from_entropy"];

/// The wire codec and the shard-merge path: floats must travel and
/// compare as bit patterns.
const FLOAT_WIRE_SCOPE: &[&str] = &["crates/core/src/wire.rs", "crates/core/src/backend/mod.rs"];

/// Paths allowed to call `thread::spawn`.
const SPAWN_ALLOWED: &[&str] = &["crates/core/src/scheduler.rs", "crates/core/src/serving.rs"];
const SPAWN_ALLOWED_PREFIXES: &[&str] = &["crates/core/src/backend/"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// One lexed file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: true for tokens inside test-only regions.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` and computes the test mask.
    #[must_use]
    pub fn parse(path: &str, source: &str) -> Self {
        let tokens = lexer::lex(source);
        let test_mask = lexer::test_mask(&tokens);
        Self {
            path: path.to_string(),
            tokens,
            test_mask,
        }
    }

    /// Indices of non-comment tokens — the stream patterns match over.
    pub(crate) fn significant(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| self.tokens[i].kind != TokenKind::Comment)
            .collect()
    }
}

/// Runs every rule over one file.
#[must_use]
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let sig = file.significant();
    let mut out = Vec::new();
    unsafe_needs_safety(file, &sig, &mut out);
    no_wallclock(file, &sig, &mut out);
    float_bit_exact_wire(file, &sig, &mut out);
    wire_tag_registry(file, &sig, &mut out);
    no_bare_spawn(file, &sig, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

pub(crate) fn finding(
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        col,
        message,
    }
}

// ---------------------------------------------------------------------
// Rule 1: unsafe-needs-safety
// ---------------------------------------------------------------------

fn unsafe_needs_safety(file: &SourceFile, sig: &[usize], out: &mut Vec<Finding>) {
    let comments: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Comment
                && (t.text.contains("SAFETY:") || t.text.contains("# Safety"))
        })
        .collect();
    for &i in sig {
        let t = &file.tokens[i];
        if file.test_mask[i] || !t.is(TokenKind::Ident, "unsafe") {
            continue;
        }
        let (line, col) = (t.line, t.col);
        let documented = comments
            .iter()
            .any(|c| c.end_line() >= line.saturating_sub(SAFETY_COMMENT_WINDOW) && c.line <= line);
        if !documented {
            out.push(finding(
                file,
                RULE_UNSAFE,
                line,
                col,
                format!(
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) \
                     within the preceding {SAFETY_COMMENT_WINDOW} lines"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: deterministic-no-wallclock
// ---------------------------------------------------------------------

fn wallclock_scope(path: &str) -> bool {
    WALLCLOCK_SCOPE_FILES.contains(&path)
        || WALLCLOCK_SCOPE_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn no_wallclock(file: &SourceFile, sig: &[usize], out: &mut Vec<Finding>) {
    if !wallclock_scope(&file.path) {
        return;
    }
    for &i in sig {
        let t = &file.tokens[i];
        if file.test_mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if WALLCLOCK_IDENTS.contains(&t.text.as_str()) {
            out.push(finding(
                file,
                RULE_WALLCLOCK,
                t.line,
                t.col,
                format!(
                    "`{}` in a deterministic compute path — results must be a pure \
                     function of (config, seed, counter), never of the clock",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: float-bit-exact-wire
// ---------------------------------------------------------------------

fn float_bit_exact_wire(file: &SourceFile, sig: &[usize], out: &mut Vec<Finding>) {
    if !FLOAT_WIRE_SCOPE.contains(&file.path.as_str()) {
        return;
    }
    for (p, &i) in sig.iter().enumerate() {
        let t = &file.tokens[i];
        if file.test_mask[i] {
            continue;
        }
        if t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
            let float_neighbour = [p.checked_sub(1), Some(p + 1)]
                .into_iter()
                .flatten()
                .filter_map(|q| sig.get(q))
                .any(|&q| file.tokens[q].kind == TokenKind::Float);
            if float_neighbour {
                out.push(finding(
                    file,
                    RULE_FLOAT_WIRE,
                    t.line,
                    t.col,
                    format!(
                        "float `{}` comparison on the wire/merge path — compare \
                         `to_bits()` values instead",
                        t.text
                    ),
                ));
            }
        }
        if t.kind == TokenKind::StrLit && has_float_format_spec(&t.text) {
            out.push(finding(
                file,
                RULE_FLOAT_WIRE,
                t.line,
                t.col,
                "float text-formatting spec in a wire/merge-path string — floats must \
                 cross as `to_bits`/`from_bits`, never as decimal text"
                    .to_string(),
            ));
        }
    }
}

/// True when a format string contains a `{…:…}` spec with a precision
/// (`.`) or exponent (`e`/`E`) component — the float-formatting shapes.
/// `{:#018x}`-style integer specs pass.
fn has_float_format_spec(text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2; // escaped literal brace
                continue;
            }
            let mut j = i + 1;
            let mut colon = None;
            while j < chars.len() && chars[j] != '}' {
                if chars[j] == ':' && colon.is_none() {
                    colon = Some(j);
                }
                j += 1;
            }
            if let Some(c) = colon {
                let spec: String = chars[c + 1..j.min(chars.len())].iter().collect();
                if spec.contains('.') || spec.contains('e') || spec.contains('E') {
                    return true;
                }
            }
            i = j;
        }
        i += 1;
    }
    false
}

// ---------------------------------------------------------------------
// Rule 4: wire-tag-registry
// ---------------------------------------------------------------------

/// The table every tag constant must appear in.
const TAG_TABLE_NAME: &str = "TAG_MIN_VERSION";

fn wire_tag_registry(file: &SourceFile, sig: &[usize], out: &mut Vec<Finding>) {
    if !file.path.ends_with("wire.rs") {
        return;
    }
    let tok = |p: usize| sig.get(p).map(|&i| &file.tokens[i]);
    // Tag definitions: `TAG_X : u8 = <int>`.
    let mut defs: Vec<(String, String, u32, u32)> = Vec::new();
    for p in 0..sig.len() {
        let (Some(name), Some(colon), Some(ty), Some(eq), Some(value)) =
            (tok(p), tok(p + 1), tok(p + 2), tok(p + 3), tok(p + 4))
        else {
            continue;
        };
        if name.kind == TokenKind::Ident
            && name.text.starts_with("TAG_")
            && name.text != TAG_TABLE_NAME
            && colon.is(TokenKind::Punct, ":")
            && ty.is(TokenKind::Ident, "u8")
            && eq.is(TokenKind::Punct, "=")
            && value.kind == TokenKind::Int
        {
            defs.push((name.text.clone(), value.text.clone(), name.line, name.col));
        }
    }
    if defs.is_empty() {
        return; // Not a wire schema file (or a fixture without tags).
    }
    // Duplicate values.
    for (a, def) in defs.iter().enumerate() {
        if defs[..a].iter().any(|d| d.1 == def.1) {
            out.push(finding(
                file,
                RULE_TAG_REGISTRY,
                def.2,
                def.3,
                format!("message tag `{}` reuses value {}", def.0, def.1),
            ));
        }
    }
    // The gating table: `TAG_MIN_VERSION … = … [ <entries> ]`.
    let table_pos = sig
        .iter()
        .position(|&i| file.tokens[i].is(TokenKind::Ident, TAG_TABLE_NAME));
    let Some(tp) = table_pos else {
        out.push(finding(
            file,
            RULE_TAG_REGISTRY,
            defs[0].2,
            defs[0].3,
            format!(
                "no `{TAG_TABLE_NAME}` version-gating table — every tag must declare \
                 the minimum schema version it may travel under"
            ),
        ));
        return;
    };
    let eq_pos = (tp..sig.len()).find(|&p| tok(p).is_some_and(|t| t.is(TokenKind::Punct, "=")));
    let open = eq_pos.and_then(|e| {
        (e..sig.len()).find(|&p| tok(p).is_some_and(|t| t.is(TokenKind::Punct, "[")))
    });
    let Some(open) = open else {
        out.push(finding(
            file,
            RULE_TAG_REGISTRY,
            file.tokens[sig[tp]].line,
            file.tokens[sig[tp]].col,
            format!("`{TAG_TABLE_NAME}` exists but no table literal follows it"),
        ));
        return;
    };
    let mut depth = 0usize;
    let mut close = open;
    for p in open..sig.len() {
        match tok(p) {
            Some(t) if t.is(TokenKind::Punct, "[") => depth += 1,
            Some(t) if t.is(TokenKind::Punct, "]") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    close = p;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut listed: Vec<(String, u32, u32)> = Vec::new();
    for p in open..close {
        if let Some(t) = tok(p) {
            if t.kind == TokenKind::Ident && t.text.starts_with("TAG_") {
                listed.push((t.text.clone(), t.line, t.col));
            }
        }
    }
    for (name, line, col) in &listed {
        if listed.iter().filter(|(n, _, _)| n == name).count() > 1 {
            // Report once, at the first occurrence.
            if listed
                .iter()
                .find(|(n, _, _)| n == name)
                .is_some_and(|(_, l, _)| l == line)
            {
                out.push(finding(
                    file,
                    RULE_TAG_REGISTRY,
                    *line,
                    *col,
                    format!("tag `{name}` listed more than once in `{TAG_TABLE_NAME}`"),
                ));
            }
        }
        if !defs.iter().any(|(n, _, _, _)| n == name) {
            out.push(finding(
                file,
                RULE_TAG_REGISTRY,
                *line,
                *col,
                format!("`{TAG_TABLE_NAME}` lists `{name}` but no such tag constant exists"),
            ));
        }
    }
    for (name, _, line, col) in &defs {
        if !listed.iter().any(|(n, _, _)| n == name) {
            out.push(finding(
                file,
                RULE_TAG_REGISTRY,
                *line,
                *col,
                format!(
                    "tag `{name}` missing from the `{TAG_TABLE_NAME}` version-gating \
                     table — decide whether it is legacy (v2) or v3-only"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Rule 5: no-bare-spawn
// ---------------------------------------------------------------------

fn spawn_allowed(path: &str) -> bool {
    SPAWN_ALLOWED.contains(&path) || SPAWN_ALLOWED_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn no_bare_spawn(file: &SourceFile, sig: &[usize], out: &mut Vec<Finding>) {
    if spawn_allowed(&file.path) {
        return;
    }
    for p in 0..sig.len() {
        let i = sig[p];
        if file.test_mask[i] {
            continue;
        }
        let t = &file.tokens[i];
        if t.is(TokenKind::Ident, "thread")
            && sig
                .get(p + 1)
                .is_some_and(|&q| file.tokens[q].is(TokenKind::Punct, "::"))
            && sig
                .get(p + 2)
                .is_some_and(|&q| file.tokens[q].is(TokenKind::Ident, "spawn"))
        {
            out.push(finding(
                file,
                RULE_BARE_SPAWN,
                t.line,
                t.col,
                "`thread::spawn` outside the scheduler/backend/serving layer — route \
                 parallelism through the scheduler so shutdown, panic containment and \
                 determinism stay centralized"
                    .to_string(),
            ));
        }
    }
}

/// Library scope: `src/` trees, excluding binaries and `main.rs`.
/// Shared with the panic-reachability rule in [`crate::flow`].
pub(crate) fn lib_scope(path: &str) -> bool {
    let in_lib =
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"));
    in_lib && !path.contains("/bin/") && !path.ends_with("/main.rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        check_file(&SourceFile::parse(path, src))
    }

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let f = run(
            "crates/device/src/x.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_UNSAFE);
    }

    #[test]
    fn unsafe_with_safety_comment_is_quiet() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller passes a valid pointer.\n    unsafe { *p }\n}";
        assert!(run("crates/device/src/x.rs", src).is_empty());
    }

    #[test]
    fn safety_doc_section_counts() {
        let src = "/// # Safety\n/// Caller must …\npub unsafe fn f() {}";
        assert!(run("crates/device/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_never_fires() {
        let src = "// unsafe unsafe unsafe\npub fn f() -> &'static str { \"unsafe\" }";
        assert!(run("crates/device/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_in_scope_fires_and_out_of_scope_is_quiet() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }";
        let hits = run("crates/optics/src/vom.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_WALLCLOCK);
        assert!(run("crates/core/src/serving.rs", src).is_empty());
    }

    #[test]
    fn float_eq_on_wire_path_fires() {
        let src = "pub fn eq(x: f64) -> bool { x == 1.5 }";
        let hits = run("crates/core/src/backend/mod.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_FLOAT_WIRE);
        assert!(run("crates/nn/src/conv.rs", src).is_empty(), "out of scope");
    }

    #[test]
    fn float_format_spec_fires_but_hex_spec_does_not() {
        let float = r#"pub fn s(x: f64) -> String { format!("{x:.3}") }"#;
        assert_eq!(run("crates/core/src/backend/mod.rs", float).len(), 1);
        let hex = r#"pub fn s(x: u64) -> String { format!("{x:#018x}") }"#;
        assert!(run("crates/core/src/backend/mod.rs", hex).is_empty());
    }

    #[test]
    fn bits_comparison_is_quiet() {
        let src = "pub fn eq(a: f64, b: f64) -> bool { a.to_bits() == b.to_bits() }";
        assert!(run("crates/core/src/wire.rs", src).is_empty());
    }

    #[test]
    fn tag_registry_checks_uniqueness_and_table_membership() {
        let dup = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 1;\nconst TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_A, 2), (TAG_B, 2)];";
        let hits = run("crates/core/src/wire.rs", dup);
        assert!(hits
            .iter()
            .any(|f| f.rule == RULE_TAG_REGISTRY && f.message.contains("reuses")));
        let missing = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\nconst TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_A, 2)];";
        let hits = run("crates/core/src/wire.rs", missing);
        assert!(hits.iter().any(|f| f.message.contains("missing from")));
        let good = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\nconst TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_A, 2), (TAG_B, 3)];";
        assert!(run("crates/core/src/wire.rs", good).is_empty());
    }

    #[test]
    fn tag_registry_flags_unknown_table_entries() {
        let src = "const TAG_A: u8 = 1;\nconst TAG_MIN_VERSION: &[(u8, u16)] = &[(TAG_A, 2), (TAG_GHOST, 2)];";
        let hits = run("crates/core/src/wire.rs", src);
        assert!(hits.iter().any(|f| f.message.contains("TAG_GHOST")));
    }

    #[test]
    fn missing_table_fires_once() {
        let src = "const TAG_A: u8 = 1;";
        let hits = run("crates/core/src/wire.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("version-gating table"));
    }

    #[test]
    fn spawn_outside_allowed_layer_fires() {
        let src = "pub fn go() { std::thread::spawn(|| {}); }";
        let hits = run("crates/nn/src/train.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_BARE_SPAWN);
        assert!(run("crates/core/src/backend/tcp.rs", src).is_empty());
        assert!(run("crates/core/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn command_spawn_is_not_thread_spawn() {
        let src = "pub fn go() { std::process::Command::new(\"x\").spawn().ok(); }";
        assert!(run("crates/nn/src/train.rs", src).is_empty());
    }

    #[test]
    fn lib_scope_excludes_bins_mains_and_examples() {
        assert!(lib_scope("crates/nn/src/train.rs"));
        assert!(lib_scope("src/lib.rs"));
        assert!(!lib_scope("crates/bench/src/bin/perf_json.rs"));
        assert!(!lib_scope("examples/quickstart.rs"));
        assert!(!lib_scope("crates/lint/src/main.rs"));
    }

    #[test]
    fn findings_carry_columns() {
        let f = run(
            "crates/optics/src/x.rs",
            "pub fn t() {\n    let _ = std::time::Instant::now();\n}",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].col, 24, "column of `Instant`");
    }
}
