//! Seeded procedural image datasets for offline accuracy reproduction.
//!
//! The paper evaluates on MNIST, SVHN, CIFAR-10 and CIFAR-100 — none of
//! which are available in this offline workspace. Table II's claim is
//! *relative*: how accuracy moves across `[weight : activation]`
//! configurations. That relative behaviour survives on synthetic datasets
//! of matched structure, so this crate generates four stand-ins:
//!
//! | paper dataset | stand-in | construction |
//! |---|---|---|
//! | MNIST | [`DatasetSpec::digits`] | seven-segment digits, light noise |
//! | SVHN | [`DatasetSpec::house_numbers`] | digits over cluttered, contrast-varying backgrounds |
//! | CIFAR-10 | [`DatasetSpec::objects10`] | 10 textured shape classes |
//! | CIFAR-100 | [`DatasetSpec::objects20`] | 20 shape × texture classes, lower contrast |
//!
//! Every dataset is fully determined by `(spec, seed)`; pixel values live
//! in `[0, 1]` (the illumination domain the sensor pipeline expects).
//!
//! # Examples
//!
//! ```
//! use oisa_datasets::{DatasetSpec, SyntheticDataset};
//!
//! # fn main() -> Result<(), oisa_datasets::DatasetError> {
//! let spec = DatasetSpec::digits().with_counts(64, 16);
//! let ds = SyntheticDataset::generate(&spec, 7)?;
//! assert_eq!(ds.train_images.shape(), &[64, 1, 16, 16]);
//! assert_eq!(ds.test_labels.len(), 16);
//! # Ok(())
//! # }
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

mod render;

pub use render::ShapeClass;

use oisa_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use std::fmt;

/// Errors from dataset generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// A spec parameter was out of range.
    InvalidParameter(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DatasetError>;

/// Which generator family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetFamily {
    /// Seven-segment digits on clean background (MNIST-like).
    Digits,
    /// Digits over cluttered backgrounds (SVHN-like).
    HouseNumbers,
    /// Textured shapes (CIFAR-like).
    Objects,
}

/// A dataset recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Generator family.
    pub family: DatasetFamily,
    /// Number of classes.
    pub classes: usize,
    /// Square image side.
    pub img: usize,
    /// Channels (1 or 3).
    pub channels: usize,
    /// Training samples.
    pub train_count: usize,
    /// Test samples.
    pub test_count: usize,
    /// Additive background noise σ.
    pub noise: f64,
    /// Foreground/background contrast (1.0 = maximal).
    pub contrast: f64,
    /// Number of random distractor strokes.
    pub clutter: usize,
}

impl DatasetSpec {
    /// MNIST stand-in: 16×16 grayscale seven-segment digits.
    #[must_use]
    pub fn digits() -> Self {
        Self {
            name: "digits (MNIST-like)".into(),
            family: DatasetFamily::Digits,
            classes: 10,
            img: 16,
            channels: 1,
            train_count: 2000,
            test_count: 500,
            noise: 0.05,
            contrast: 0.9,
            clutter: 0,
        }
    }

    /// SVHN stand-in: digits over cluttered, contrast-varying
    /// backgrounds.
    #[must_use]
    pub fn house_numbers() -> Self {
        Self {
            name: "house numbers (SVHN-like)".into(),
            family: DatasetFamily::HouseNumbers,
            classes: 10,
            img: 16,
            channels: 3,
            train_count: 2000,
            test_count: 500,
            noise: 0.10,
            contrast: 0.6,
            clutter: 3,
        }
    }

    /// CIFAR-10 stand-in: 10 textured shape classes.
    #[must_use]
    pub fn objects10() -> Self {
        Self {
            name: "objects-10 (CIFAR-10-like)".into(),
            family: DatasetFamily::Objects,
            classes: 10,
            img: 16,
            channels: 3,
            train_count: 2000,
            test_count: 500,
            noise: 0.12,
            contrast: 0.65,
            clutter: 2,
        }
    }

    /// CIFAR-100 stand-in: 20 classes at lower contrast.
    #[must_use]
    pub fn objects20() -> Self {
        Self {
            name: "objects-20 (CIFAR-100-like)".into(),
            family: DatasetFamily::Objects,
            classes: 20,
            img: 16,
            channels: 3,
            train_count: 3000,
            test_count: 600,
            noise: 0.15,
            contrast: 0.5,
            clutter: 3,
        }
    }

    /// Overrides sample counts (builder style).
    #[must_use]
    pub fn with_counts(mut self, train: usize, test: usize) -> Self {
        self.train_count = train;
        self.test_count = test;
        self
    }

    /// Overrides image side (builder style).
    #[must_use]
    pub fn with_img(mut self, img: usize) -> Self {
        self.img = img;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.classes < 2 {
            return Err(DatasetError::InvalidParameter(
                "need at least two classes".into(),
            ));
        }
        if self.family != DatasetFamily::Objects && self.classes > 10 {
            return Err(DatasetError::InvalidParameter(
                "digit families support at most 10 classes".into(),
            ));
        }
        if self.family == DatasetFamily::Objects && self.classes > ShapeClass::max_classes() {
            return Err(DatasetError::InvalidParameter(format!(
                "objects family supports at most {} classes",
                ShapeClass::max_classes()
            )));
        }
        if self.img < 8 {
            return Err(DatasetError::InvalidParameter(
                "image side must be at least 8".into(),
            ));
        }
        if self.channels != 1 && self.channels != 3 {
            return Err(DatasetError::InvalidParameter(
                "channels must be 1 or 3".into(),
            ));
        }
        if self.train_count == 0 || self.test_count == 0 {
            return Err(DatasetError::InvalidParameter(
                "sample counts must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.noise) || !(0.0..=1.0).contains(&self.contrast) {
            return Err(DatasetError::InvalidParameter(
                "noise and contrast must lie in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// A generated dataset: NCHW tensors plus labels.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The recipe that produced this dataset.
    pub spec: DatasetSpec,
    /// Training images `[N, C, H, W]`.
    pub train_images: Tensor,
    /// Training labels.
    pub train_labels: Vec<usize>,
    /// Test images `[N, C, H, W]`.
    pub test_images: Tensor,
    /// Test labels.
    pub test_labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates a dataset deterministically from `(spec, seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] for inconsistent specs.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Result<Self> {
        spec.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let (train_images, train_labels) = generate_split(spec, spec.train_count, &mut rng)?;
        let (test_images, test_labels) = generate_split(spec, spec.test_count, &mut rng)?;
        Ok(Self {
            spec: spec.clone(),
            train_images,
            train_labels,
            test_images,
            test_labels,
        })
    }

    /// A training mini-batch `[start, start+size)` (clamped to the end).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidParameter`] when `start` is past the
    /// end or `size` is zero.
    pub fn train_batch(&self, start: usize, size: usize) -> Result<(Tensor, Vec<usize>)> {
        batch_of(&self.train_images, &self.train_labels, start, size)
    }

    /// Samples per class in the training split.
    #[must_use]
    pub fn train_class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.spec.classes];
        for &l in &self.train_labels {
            hist[l] += 1;
        }
        hist
    }
}

fn batch_of(
    images: &Tensor,
    labels: &[usize],
    start: usize,
    size: usize,
) -> Result<(Tensor, Vec<usize>)> {
    let s = images.shape();
    let n = s[0];
    if start >= n || size == 0 {
        return Err(DatasetError::InvalidParameter(format!(
            "batch [{start}, {start}+{size}) outside {n} samples"
        )));
    }
    let end = (start + size).min(n);
    let stride: usize = s[1..].iter().product();
    let shape: Vec<usize> = std::iter::once(end - start)
        .chain(s[1..].iter().copied())
        .collect();
    let data = images.as_slice()[start * stride..end * stride].to_vec();
    let batch =
        Tensor::from_vec(shape, data).map_err(|e| DatasetError::InvalidParameter(e.to_string()))?;
    Ok((batch, labels[start..end].to_vec()))
}

fn generate_split(
    spec: &DatasetSpec,
    count: usize,
    rng: &mut StdRng,
) -> Result<(Tensor, Vec<usize>)> {
    let stride = spec.channels * spec.img * spec.img;
    let mut data = vec![0.0f32; count * stride];
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = rng.gen_range(0..spec.classes);
        labels.push(class);
        let img = &mut data[i * stride..(i + 1) * stride];
        render::render_sample(spec, class, img, rng);
    }
    let images = Tensor::from_vec(vec![count, spec.channels, spec.img, spec.img], data)
        .map_err(|e| DatasetError::InvalidParameter(e.to_string()))?;
    Ok((images, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = DatasetSpec::digits().with_counts(32, 8);
        let a = SyntheticDataset::generate(&spec, 5).unwrap();
        let b = SyntheticDataset::generate(&spec, 5).unwrap();
        assert_eq!(a.train_images, b.train_images);
        assert_eq!(a.train_labels, b.train_labels);
        let c = SyntheticDataset::generate(&spec, 6).unwrap();
        assert_ne!(a.train_images, c.train_images);
    }

    #[test]
    fn all_specs_generate() {
        for spec in [
            DatasetSpec::digits(),
            DatasetSpec::house_numbers(),
            DatasetSpec::objects10(),
            DatasetSpec::objects20(),
        ] {
            let small = spec.with_counts(20, 10);
            let ds = SyntheticDataset::generate(&small, 1).unwrap();
            assert_eq!(ds.train_labels.len(), 20);
            assert_eq!(ds.test_labels.len(), 10);
            // All pixels in the illumination domain.
            assert!(ds
                .train_images
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn labels_cover_classes() {
        let spec = DatasetSpec::digits().with_counts(500, 10);
        let ds = SyntheticDataset::generate(&spec, 2).unwrap();
        let hist = ds.train_class_histogram();
        assert_eq!(hist.len(), 10);
        assert!(hist.iter().all(|&c| c > 10), "unbalanced: {hist:?}");
    }

    #[test]
    fn class_images_are_distinguishable() {
        // Mean images of two classes must differ substantially — the
        // classes carry signal.
        let spec = DatasetSpec::digits().with_counts(200, 10);
        let ds = SyntheticDataset::generate(&spec, 3).unwrap();
        let stride = spec.channels * spec.img * spec.img;
        let mean_of = |class: usize| -> Vec<f32> {
            let mut acc = vec![0.0f32; stride];
            let mut n = 0;
            for (i, &l) in ds.train_labels.iter().enumerate() {
                if l == class {
                    for (a, &v) in acc
                        .iter_mut()
                        .zip(&ds.train_images.as_slice()[i * stride..(i + 1) * stride])
                    {
                        *a += v;
                    }
                    n += 1;
                }
            }
            acc.iter().map(|v| v / n.max(1) as f32).collect()
        };
        let m0 = mean_of(0);
        let m1 = mean_of(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.5, "class means too close: {dist}");
    }

    #[test]
    fn batching() {
        let spec = DatasetSpec::digits().with_counts(10, 5);
        let ds = SyntheticDataset::generate(&spec, 1).unwrap();
        let (x, y) = ds.train_batch(8, 4).unwrap();
        assert_eq!(x.shape()[0], 2); // clamped at the end
        assert_eq!(y.len(), 2);
        assert!(ds.train_batch(10, 4).is_err());
        assert!(ds.train_batch(0, 0).is_err());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = DatasetSpec::digits();
        s.classes = 1;
        assert!(SyntheticDataset::generate(&s, 0).is_err());
        let mut s = DatasetSpec::digits();
        s.classes = 11;
        assert!(SyntheticDataset::generate(&s, 0).is_err());
        let mut s = DatasetSpec::digits();
        s.channels = 2;
        assert!(SyntheticDataset::generate(&s, 0).is_err());
        let mut s = DatasetSpec::digits();
        s.img = 4;
        assert!(SyntheticDataset::generate(&s, 0).is_err());
        let mut s = DatasetSpec::digits();
        s.noise = 1.5;
        assert!(SyntheticDataset::generate(&s, 0).is_err());
    }

    #[test]
    fn cluttered_sets_have_brighter_backgrounds() {
        // The SVHN-like generator draws digits over non-dark, cluttered
        // backgrounds; the MNIST-like one uses near-black backgrounds.
        let easy =
            SyntheticDataset::generate(&DatasetSpec::digits().with_counts(100, 10), 4).unwrap();
        let hard =
            SyntheticDataset::generate(&DatasetSpec::house_numbers().with_counts(100, 10), 4)
                .unwrap();
        // Digits backgrounds are near-black (< 0.15 after noise), so the
        // mid-gray band is almost empty; the cluttered generator fills it.
        let mid_fraction = |ds: &SyntheticDataset| -> f64 {
            let data = ds.train_images.as_slice();
            data.iter().filter(|v| (0.18..0.45).contains(*v)).count() as f64 / data.len() as f64
        };
        assert!(
            mid_fraction(&hard) > 2.0 * mid_fraction(&easy),
            "house-numbers mid-gray fraction {} should dwarf digits' {}",
            mid_fraction(&hard),
            mid_fraction(&easy)
        );
    }
}
