//! Machine-readable performance benchmark for the optical hot paths.
//!
//! Emits one `BENCH JSON` document on stdout so CI (and future PRs) can
//! track the perf trajectory without parsing human-oriented tables:
//!
//! ```text
//! BENCH JSON {"workload":{...},"wall_clock_ms":{...},"speedup":{...},...}
//! ```
//!
//! Three pipelines run the same 128×128, 16-kernel, 3×3 convolution
//! under the paper noise model:
//!
//! * `parallel` — [`OisaAccelerator::convolve_frame`]: counter-based
//!   noise streams, fused allocation-free MACs, row-parallel.
//! * `sequential` — the single-threaded twin (bit-identical output).
//! * `reference` — the faithful pre-optimisation pipeline
//!   ([`OisaAccelerator::convolve_frame_reference`]), the baseline the
//!   acceptance speedup is measured against.
//!
//! On top of that, the batched engine runs an 8-frame batch through
//! [`OisaAccelerator::convolve_frames`] against a per-frame loop
//! (`frames_per_sec_batch`), and the dense path times
//! [`matvec_parallel`] against serial [`matvec`] on a 256-row layer
//! (`matvec_rows_per_sec`).
//!
//! Flags:
//!
//! * `--quick` — fewer repetitions (CI smoke mode).
//! * `--gate <baseline.json>` — regression gate: exit non-zero when the
//!   headline throughput (single-frame `frames_per_sec`, and
//!   `frames_per_sec_batch` when the baseline records it) drops more
//!   than 15 % below the committed baseline. Regenerate the baseline
//!   (`bench/baseline.json`) whenever the CI hardware changes — the
//!   gate compares wall-clock throughput, not machine-neutral ratios.

use std::time::Instant;

use oisa_core::mlp::{matvec, matvec_parallel};
use oisa_core::{OisaAccelerator, OisaConfig};
use oisa_device::noise::{NoiseConfig, NoiseSource};
use oisa_nn::conv::Conv2d;
use oisa_nn::layer::Layer;
use oisa_nn::tensor::Tensor;
use oisa_optics::arm::ArmConfig;
use oisa_optics::opc::{Opc, OpcConfig};
use oisa_optics::vom::{Vom, VomConfig};
use oisa_optics::weights::WeightMapper;
use oisa_sensor::frame::Frame;

/// Allowed headline-throughput regression vs the committed baseline.
const GATE_TOLERANCE: f64 = 0.15;

/// A deterministic "natural-ish" test frame: radial vignette over a
/// diagonal gradient with a bright blob, so the ternary encoder emits a
/// realistic mix of zero / mid / full activations. `phase` shifts the
/// blob so batch frames differ.
fn test_frame(side: usize, phase: usize) -> Frame {
    let mut data = vec![0.0f64; side * side];
    let c = side as f64 / 2.0;
    let shift = phase as f64 * 0.07;
    for y in 0..side {
        for x in 0..side {
            let dx = (x as f64 - c) / c;
            let dy = (y as f64 - c) / c;
            let vignette = (1.0 - 0.8 * (dx * dx + dy * dy)).max(0.0);
            let gradient = (x + y) as f64 / (2.0 * side as f64);
            let blob =
                (-8.0 * ((dx - 0.3 + shift).powi(2) + (dy + 0.2 - shift).powi(2))).exp();
            data[y * side + x] = (0.55 * gradient * vignette + 0.6 * blob).clamp(0.0, 1.0);
        }
    }
    Frame::new(side, side, data).expect("frame construction")
}

/// Deterministic kernel bank: oriented edge/texture filters.
fn test_kernels(count: usize, k: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| {
            (0..k * k)
                .map(|j| ((i * 7 + j * 3) as f32 * 0.37).sin())
                .collect()
        })
        .collect()
}

fn median_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Extracts the number following `"key":` in a JSON document
/// (whitespace-tolerant, so pretty-printed baselines still parse). The
/// pattern includes the quotes and colon, so `frames_per_sec` never
/// matches `frames_per_sec_batch`.
fn json_f64(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let after_key = doc.find(&needle)? + needle.len();
    let rest = doc[after_key..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Applies the ≤15 % regression gate to one metric; returns `false` on
/// regression.
fn gate_metric(name: &str, current: f64, baseline: Option<f64>) -> bool {
    let Some(base) = baseline else {
        eprintln!("perf gate: baseline has no `{name}` — skipped");
        return true;
    };
    let ratio = current / base;
    eprintln!("perf gate: {name} {current:.2} vs baseline {base:.2} ({ratio:.2}x)");
    if ratio < 1.0 - GATE_TOLERANCE {
        eprintln!(
            "perf gate FAILED: {name} regressed {:.0}% (> {:.0}% allowed)",
            (1.0 - ratio) * 100.0,
            GATE_TOLERANCE * 100.0
        );
        return false;
    }
    true
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .map(|i| args.get(i + 1).expect("--gate needs a path").clone());
    let reps = if quick { 2 } else { 5 };
    let side = 128usize;
    let kernels = 16usize;
    let k = 3usize;
    let batch = 8usize;

    let frame = test_frame(side, 0);
    let banks = test_kernels(kernels, k);
    let mut cfg = OisaConfig::paper_default(side, side);
    cfg.seed = 42;

    let mut accel = OisaAccelerator::new(cfg).expect("accelerator construction");

    // Correctness gates before timing anything: the parallel pipeline
    // must be bit-identical to its sequential twin, and the batch
    // engine to the per-frame sequential loop, under the seed.
    let par = accel.convolve_frame(&frame, &banks, k).expect("parallel run");
    let mut accel_seq = OisaAccelerator::new(cfg).expect("accelerator construction");
    let seq = accel_seq
        .convolve_frame_sequential(&frame, &banks, k)
        .expect("sequential run");
    assert_eq!(par.output, seq.output, "parallel output must be bit-identical");
    assert_eq!(par.energy, seq.energy, "parallel energy must be bit-identical");

    let batch_frames: Vec<Frame> = (0..batch).map(|i| test_frame(side, i)).collect();
    {
        let mut a = OisaAccelerator::new(cfg).expect("accelerator construction");
        let mut b = OisaAccelerator::new(cfg).expect("accelerator construction");
        let batched = a.convolve_frames(&batch_frames, &banks, k).expect("batch run");
        let looped: Vec<_> = batch_frames
            .iter()
            .map(|f| b.convolve_frame_sequential(f, &banks, k).expect("loop run"))
            .collect();
        assert_eq!(batched, looped, "batch must equal the per-frame loop");
    }

    let parallel_ms = median_ms(reps, || {
        let r = accel.convolve_frame(&frame, &banks, k).expect("parallel run");
        std::hint::black_box(r.output[0][0]);
    });
    let sequential_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_sequential(&frame, &banks, k)
            .expect("sequential run");
        std::hint::black_box(r.output[0][0]);
    });
    let reference_ms = median_ms(reps, || {
        let r = accel
            .convolve_frame_reference(&frame, &banks, k)
            .expect("reference run");
        std::hint::black_box(r.output[0][0]);
    });

    // Batched engine vs a per-frame loop over the same frames.
    let batch_ms = median_ms(reps, || {
        let r = accel
            .convolve_frames(&batch_frames, &banks, k)
            .expect("batch run");
        std::hint::black_box(r[0].output[0][0]);
    });
    let frame_loop_ms = median_ms(reps, || {
        for f in &batch_frames {
            let r = accel.convolve_frame(f, &banks, k).expect("loop run");
            std::hint::black_box(r.output[0][0]);
        }
    });

    // Dense path: a 256-row layer over a 1152-wide input (128 chunks
    // per row), parallel snapshot evaluation vs the serial oracle.
    let mv_rows = 256usize;
    let mv_cols = 1152usize;
    let mv_matrix: Vec<f32> = (0..mv_rows * mv_cols)
        .map(|i| (i as f32 * 0.19).sin())
        .collect();
    let mv_input: Vec<f64> = (0..mv_cols)
        .map(|i| ((i as f64 * 0.23).sin().abs()).min(1.0))
        .collect();
    let opc_cfg = OpcConfig {
        banks: 4,
        columns: 2,
        awc_units: 10,
        arm: ArmConfig::paper_default(),
    };
    let mut mv_opc = Opc::new(opc_cfg).expect("opc construction");
    let mv_vom = Vom::new(VomConfig::paper_default()).expect("vom construction");
    let mv_mapper = WeightMapper::ideal(4).expect("mapper construction");
    {
        let mut n1 = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let mut n2 = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let s = matvec(
            &mut mv_opc, &mv_vom, &mv_mapper, &mv_matrix, mv_rows, mv_cols, &mv_input, &mut n1,
        )
        .expect("serial matvec");
        let p = matvec_parallel(
            &mut mv_opc, &mv_vom, &mv_mapper, &mv_matrix, mv_rows, mv_cols, &mv_input, &mut n2,
        )
        .expect("parallel matvec");
        assert_eq!(s, p, "parallel matvec must be bit-identical to serial");
    }
    let mut mv_noise = NoiseSource::seeded(7, NoiseConfig::paper_default());
    let matvec_serial_ms = median_ms(reps, || {
        let r = matvec(
            &mut mv_opc, &mv_vom, &mv_mapper, &mv_matrix, mv_rows, mv_cols, &mv_input,
            &mut mv_noise,
        )
        .expect("serial matvec");
        std::hint::black_box(r.output[0]);
    });
    let matvec_parallel_ms = median_ms(reps, || {
        let r = matvec_parallel(
            &mut mv_opc, &mv_vom, &mv_mapper, &mv_matrix, mv_rows, mv_cols, &mv_input,
            &mut mv_noise,
        )
        .expect("parallel matvec");
        std::hint::black_box(r.output[0]);
    });

    // Digital reference path: im2col Conv2d forward vs the naive loop.
    let x = Tensor::he_normal(vec![1, 3, side, side], 27, 3);
    let mut conv = Conv2d::with_seed(3, kernels, k, 1, 1, 7).expect("conv construction");
    let im2col_ms = median_ms(reps, || {
        let y = conv.forward(&x, false).expect("im2col forward");
        std::hint::black_box(y.as_slice()[0]);
    });
    let naive_ms = median_ms(reps, || {
        let y = conv.forward_naive(&x, false).expect("naive forward");
        std::hint::black_box(y.as_slice()[0]);
    });

    // Report the worker count the parallel pipelines actually used.
    let threads = rayon::current_num_threads();
    let optical_speedup = reference_ms / parallel_ms;
    let conv_speedup = naive_ms / im2col_ms;
    let batch_speedup = frame_loop_ms / batch_ms;
    let matvec_speedup = matvec_serial_ms / matvec_parallel_ms;
    let frames_per_sec = 1e3 / parallel_ms;
    let frames_per_sec_batch = batch as f64 * 1e3 / batch_ms;
    let matvec_rows_per_sec = mv_rows as f64 * 1e3 / matvec_parallel_ms;
    let doc = format!(
        concat!(
            "{{",
            "\"workload\":{{\"frame\":\"{side}x{side}\",\"kernels\":{kernels},\"k\":{k},",
            "\"batch\":{batch},\"matvec\":\"{mv_rows}x{mv_cols}\"}},",
            "\"threads\":{threads},",
            "\"wall_clock_ms\":{{",
            "\"optical_parallel\":{parallel:.3},",
            "\"optical_sequential\":{sequential:.3},",
            "\"optical_reference\":{reference:.3},",
            "\"batch_8_frames\":{batch_ms:.3},",
            "\"frame_loop_8\":{frame_loop_ms:.3},",
            "\"matvec_parallel\":{matvec_parallel_ms:.3},",
            "\"matvec_serial\":{matvec_serial_ms:.3},",
            "\"conv2d_im2col\":{im2col:.3},",
            "\"conv2d_naive\":{naive:.3}}},",
            "\"throughput\":{{",
            "\"frames_per_sec\":{fps:.3},",
            "\"frames_per_sec_batch\":{fps_batch:.3},",
            "\"matvec_rows_per_sec\":{mv_rps:.3}}},",
            "\"speedup\":{{",
            "\"optical_vs_reference\":{opt_speedup:.2},",
            "\"batch_vs_frame_loop\":{batch_speedup:.2},",
            "\"matvec_parallel_vs_serial\":{matvec_speedup:.2},",
            "\"conv2d_vs_naive\":{conv_speedup:.2}}},",
            "\"bit_identical_parallel_vs_sequential\":true,",
            "\"bit_identical_batch_vs_frame_loop\":true}}"
        ),
        side = side,
        kernels = kernels,
        k = k,
        batch = batch,
        mv_rows = mv_rows,
        mv_cols = mv_cols,
        threads = threads,
        parallel = parallel_ms,
        sequential = sequential_ms,
        reference = reference_ms,
        batch_ms = batch_ms,
        frame_loop_ms = frame_loop_ms,
        matvec_parallel_ms = matvec_parallel_ms,
        matvec_serial_ms = matvec_serial_ms,
        im2col = im2col_ms,
        naive = naive_ms,
        fps = frames_per_sec,
        fps_batch = frames_per_sec_batch,
        mv_rps = matvec_rows_per_sec,
        opt_speedup = optical_speedup,
        batch_speedup = batch_speedup,
        matvec_speedup = matvec_speedup,
        conv_speedup = conv_speedup,
    );
    println!("BENCH JSON {doc}");

    if let Some(path) = gate_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("perf gate: cannot read baseline {path}: {e}"));
        // Headline throughput. PR-1 baselines predate the throughput
        // block, so fall back to deriving frames/sec from the recorded
        // parallel wall clock. A baseline with *neither* key is a
        // broken baseline, not a pass — fail loudly instead of
        // silently disabling the gate.
        let Some(base_fps) = json_f64(&baseline, "frames_per_sec")
            .or_else(|| json_f64(&baseline, "optical_parallel").map(|ms| 1e3 / ms))
        else {
            eprintln!(
                "perf gate FAILED: {path} has no parseable headline throughput \
                 (frames_per_sec / optical_parallel) — regenerate it with \
                 `cargo run --release -p oisa_bench --bin perf_json`"
            );
            std::process::exit(1);
        };
        let mut ok = gate_metric("frames_per_sec", frames_per_sec, Some(base_fps));
        ok &= gate_metric(
            "frames_per_sec_batch",
            frames_per_sec_batch,
            json_f64(&baseline, "frames_per_sec_batch"),
        );
        if !ok {
            std::process::exit(1);
        }
        eprintln!("perf gate: OK (within {:.0}% of baseline)", GATE_TOLERANCE * 100.0);
    }
}
