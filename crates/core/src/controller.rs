//! Command decoder and timing controller (paper Fig. 2's `Ctrl Unit`).
//!
//! The controller sequences the accelerator through its four phases and
//! produces a [`Timeline`] — the latency side of every report in this
//! workspace. Durations come from the mapping plan and the device
//! constants; the controller itself adds a fixed decode overhead per
//! command, mirroring a small synthesized FSM.

use oisa_units::Second;
use serde::{Deserialize, Serialize};

use crate::mapping::MappingPlan;
use crate::{CoreError, Result};

/// One architecture command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Expose the pixel array (global shutter).
    CaptureFrame,
    /// Stream weight codes through the AWC row into the rings.
    MapWeights {
        /// AWC iterations this mapping needs.
        iterations: u32,
    },
    /// Run optical MAC cycles.
    Compute {
        /// Number of 55.8 ps cycles.
        cycles: u64,
    },
    /// Ship results through the output optical transmitter.
    Transmit {
        /// Result words to send.
        words: u64,
    },
}

impl Command {
    /// Opcode of this command in the binary encoding.
    #[must_use]
    pub fn opcode(&self) -> u8 {
        match self {
            Self::CaptureFrame => 0x01,
            Self::MapWeights { .. } => 0x02,
            Self::Compute { .. } => 0x03,
            Self::Transmit { .. } => 0x04,
        }
    }

    /// Encodes the command as `opcode · u64-operand` (9 bytes,
    /// little-endian) — the wire format of Fig. 2's command stream.
    #[must_use]
    pub fn encode(&self) -> [u8; 9] {
        let operand: u64 = match *self {
            Self::CaptureFrame => 0,
            Self::MapWeights { iterations } => u64::from(iterations),
            Self::Compute { cycles } => cycles,
            Self::Transmit { words } => words,
        };
        let mut out = [0u8; 9];
        out[0] = self.opcode();
        out[1..].copy_from_slice(&operand.to_le_bytes());
        out
    }

    /// Decodes one 9-byte command.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for unknown opcodes or
    /// out-of-range operands.
    pub fn decode(bytes: &[u8; 9]) -> Result<Self> {
        let operand = u64::from_le_bytes(bytes[1..].try_into().expect("8 bytes"));
        match bytes[0] {
            0x01 => Ok(Self::CaptureFrame),
            0x02 => {
                let iterations = u32::try_from(operand).map_err(|_| {
                    CoreError::InvalidParameter(format!(
                        "MapWeights iterations {operand} exceeds u32"
                    ))
                })?;
                Ok(Self::MapWeights { iterations })
            }
            0x03 => Ok(Self::Compute { cycles: operand }),
            0x04 => Ok(Self::Transmit { words: operand }),
            other => Err(CoreError::InvalidParameter(format!(
                "unknown opcode 0x{other:02x}"
            ))),
        }
    }
}

/// Decodes a byte stream of 9-byte commands (Fig. 2's `CMD Decoder`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameter`] for a stream whose length is
/// not a multiple of 9 or that contains an invalid command.
pub fn decode_program(stream: &[u8]) -> Result<Vec<Command>> {
    if !stream.len().is_multiple_of(9) {
        return Err(CoreError::InvalidParameter(format!(
            "command stream length {} is not a multiple of 9",
            stream.len()
        )));
    }
    stream
        .chunks_exact(9)
        .map(|chunk| Command::decode(chunk.try_into().expect("chunked by 9")))
        .collect()
}

/// Encodes a program into the byte stream form.
#[must_use]
pub fn encode_program(program: &[Command]) -> Vec<u8> {
    program.iter().flat_map(|c| c.encode()).collect()
}

/// Timing constants of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerTiming {
    /// One optical MAC cycle (paper: 55.8 ps architecture-wide).
    pub cycle: Second,
    /// One AWC tuning iteration (AWC settle; ring EO settle overlaps).
    pub tuning_iteration: Second,
    /// Exposure time of a capture.
    pub exposure: Second,
    /// Per-word optical transmit time.
    pub transmit_word: Second,
    /// Fixed decode overhead per command.
    pub decode: Second,
}

impl ControllerTiming {
    /// Paper constants: 55.8 ps cycles, 1 ns tuning iterations, 50 µs
    /// exposure, 100 ps per transmitted word, 1 ns decode.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cycle: Second::from_pico(55.8),
            tuning_iteration: Second::from_nano(1.0),
            exposure: Second::from_micro(50.0),
            transmit_word: Second::from_pico(100.0),
            decode: Second::from_nano(1.0),
        }
    }
}

/// Phase-by-phase latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Time spent exposing the sensor.
    pub capture: Second,
    /// Time spent mapping weights.
    pub mapping: Second,
    /// Time spent computing.
    pub compute: Second,
    /// Time spent transmitting outputs.
    pub transmit: Second,
    /// Controller decode overhead.
    pub control: Second,
}

impl Timeline {
    /// End-to-end latency.
    #[must_use]
    pub fn total(&self) -> Second {
        self.capture + self.mapping + self.compute + self.transmit + self.control
    }
}

/// The timing controller.
///
/// # Examples
///
/// ```
/// use oisa_core::controller::{Command, Controller, ControllerTiming};
///
/// # fn main() -> Result<(), oisa_core::CoreError> {
/// let ctrl = Controller::new(ControllerTiming::paper_default());
/// let timeline = ctrl.execute(&[
///     Command::CaptureFrame,
///     Command::MapWeights { iterations: 100 },
///     Command::Compute { cycles: 1000 },
///     Command::Transmit { words: 64 },
/// ])?;
/// assert!(timeline.total().get() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Controller {
    timing: ControllerTiming,
}

impl Controller {
    /// Builds a controller with the given timing constants.
    #[must_use]
    pub fn new(timing: ControllerTiming) -> Self {
        Self { timing }
    }

    /// Timing constants in use.
    #[must_use]
    pub fn timing(&self) -> &ControllerTiming {
        &self.timing
    }

    /// Executes a command program, returning the accumulated timeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for an empty program.
    pub fn execute(&self, program: &[Command]) -> Result<Timeline> {
        if program.is_empty() {
            return Err(CoreError::InvalidParameter("empty command program".into()));
        }
        let mut t = Timeline::default();
        for cmd in program {
            t.control += self.timing.decode;
            match *cmd {
                Command::CaptureFrame => t.capture += self.timing.exposure,
                Command::MapWeights { iterations } => {
                    t.mapping += self.timing.tuning_iteration * f64::from(iterations);
                }
                Command::Compute { cycles } => {
                    t.compute += self.timing.cycle * cycles as f64;
                }
                Command::Transmit { words } => {
                    t.transmit += self.timing.transmit_word * words as f64;
                }
            }
        }
        Ok(t)
    }

    /// Builds the canonical per-frame program for a mapping plan:
    /// capture, then per pass (map + compute), then transmit.
    #[must_use]
    pub fn frame_program(&self, plan: &MappingPlan, output_words: u64) -> Vec<Command> {
        let mut program = vec![Command::CaptureFrame];
        for _ in 0..plan.passes {
            program.push(Command::MapWeights {
                iterations: plan.tuning_iterations_per_pass as u32,
            });
            program.push(Command::Compute {
                cycles: plan.cycles_per_pass as u64,
            });
        }
        program.push(Command::Transmit {
            words: output_words,
        });
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ConvWorkload;
    use oisa_optics::opc::OpcConfig;

    #[test]
    fn empty_program_rejected() {
        let ctrl = Controller::new(ControllerTiming::paper_default());
        assert!(ctrl.execute(&[]).is_err());
    }

    #[test]
    fn compute_phase_uses_paper_cycle() {
        let ctrl = Controller::new(ControllerTiming::paper_default());
        let t = ctrl.execute(&[Command::Compute { cycles: 1000 }]).unwrap();
        assert!((t.compute.as_nano() - 55.8).abs() < 1e-9);
    }

    #[test]
    fn capture_dominates_frame_latency() {
        // At 1000 fps the 50 µs exposure dwarfs compute — the paper's
        // point that OPC throughput is not the bottleneck.
        let plan = MappingPlan::compute(
            &ConvWorkload::resnet18_first_layer(),
            &OpcConfig::paper_default(),
        )
        .unwrap();
        let ctrl = Controller::new(ControllerTiming::paper_default());
        let program = ctrl.frame_program(&plan, 61 * 61 * 64);
        let t = ctrl.execute(&program).unwrap();
        assert!(t.capture.get() > t.compute.get());
        assert!(t.total().get() < 1e-3, "fits a 1 ms frame budget");
    }

    #[test]
    fn frame_program_structure() {
        let plan = MappingPlan::compute(
            &ConvWorkload::resnet18_first_layer(),
            &OpcConfig::paper_default(),
        )
        .unwrap();
        let ctrl = Controller::new(ControllerTiming::paper_default());
        let program = ctrl.frame_program(&plan, 128);
        // capture + 3 × (map + compute) + transmit.
        assert_eq!(program.len(), 1 + 2 * plan.passes + 1);
        assert!(matches!(program[0], Command::CaptureFrame));
        assert!(matches!(program.last(), Some(Command::Transmit { .. })));
    }

    #[test]
    fn timeline_total_sums_phases() {
        let t = Timeline {
            capture: Second::from_micro(50.0),
            mapping: Second::from_nano(100.0),
            compute: Second::from_nano(10.0),
            transmit: Second::from_nano(5.0),
            control: Second::from_nano(4.0),
        };
        let total = t.total();
        assert!((total.as_micro() - 50.119).abs() < 1e-6);
    }

    #[test]
    fn command_encoding_round_trips() {
        let program = vec![
            Command::CaptureFrame,
            Command::MapWeights { iterations: 98 },
            Command::Compute { cycles: 11163 },
            Command::Transmit { words: 238144 },
        ];
        let stream = encode_program(&program);
        assert_eq!(stream.len(), 4 * 9);
        let decoded = decode_program(&stream).unwrap();
        assert_eq!(decoded, program);
    }

    #[test]
    fn decoder_rejects_malformed_streams() {
        assert!(decode_program(&[0x01, 0, 0]).is_err()); // not ×9
        let mut bad = Command::CaptureFrame.encode().to_vec();
        bad[0] = 0xFF;
        assert!(decode_program(&bad).is_err()); // unknown opcode
        let mut overflow = [0u8; 9];
        overflow[0] = 0x02; // MapWeights
        overflow[1..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Command::decode(&overflow).is_err()); // iterations > u32
    }

    #[test]
    fn decoded_program_executes_identically() {
        let plan = MappingPlan::compute(
            &ConvWorkload::resnet18_first_layer(),
            &OpcConfig::paper_default(),
        )
        .unwrap();
        let ctrl = Controller::new(ControllerTiming::paper_default());
        let program = ctrl.frame_program(&plan, 64);
        let round_tripped = decode_program(&encode_program(&program)).unwrap();
        assert_eq!(
            ctrl.execute(&program).unwrap(),
            ctrl.execute(&round_tripped).unwrap()
        );
    }

    #[test]
    fn decode_overhead_charged_per_command() {
        let ctrl = Controller::new(ControllerTiming::paper_default());
        let t = ctrl
            .execute(&[
                Command::Compute { cycles: 1 },
                Command::Compute { cycles: 1 },
            ])
            .unwrap();
        assert!((t.control.as_nano() - 2.0).abs() < 1e-9);
    }
}
