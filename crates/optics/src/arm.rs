//! One OPC arm: ten microrings, two waveguides, one balanced
//! photodetector.
//!
//! The arm is the unit of computation (paper Fig. 5(c)): the nine weights
//! of a 3×3 kernel occupy nine rings (the tenth is a spare / bias slot),
//! each ring weighting one WDM channel. Positive-sign rings sit on one
//! waveguide, negative-sign rings on the other; the BPD at the arm's end
//! subtracts the two accumulated powers, so the photocurrent *is* the
//! signed dot product.

use oisa_device::mr::{Microring, MrDesign};
use oisa_device::noise::{NoiseModel, NoiseStream};
use oisa_device::photodiode::{BalancedPhotodetector, PhotodiodeParams};
use oisa_device::waveguide::{ChannelPlan, LossBudget, OpticalPath};
use oisa_units::{Joule, Meter, Second, Watt};
use serde::{Deserialize, Serialize};

use crate::weights::{MappedWeight, WeightMapper};
use crate::{OpticsError, Result};

/// Number of microrings per arm (paper §III-B).
pub const RINGS_PER_ARM: usize = 10;

/// Arm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmConfig {
    /// Ring design used for every MR in the arm.
    pub ring: MrDesign,
    /// Detector at the arm output.
    pub detector: PhotodiodeParams,
    /// Loss budget for the waveguide run.
    pub losses: LossBudget,
    /// Physical arm length (sets propagation loss and time of flight).
    pub length: Meter,
    /// Per-channel optical input power at full activation.
    pub channel_power: Watt,
    /// Model inter-channel crosstalk: each ring's Lorentzian tail also
    /// attenuates its spectral neighbours. Costs one extra transmission
    /// evaluation per adjacent-channel pair.
    pub crosstalk: bool,
}

impl ArmConfig {
    /// Paper defaults: paper ring + detector + losses over a 500 µm arm
    /// with 200 µW per channel; crosstalk modelling on.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            ring: MrDesign::paper_default(),
            detector: PhotodiodeParams::paper_default(),
            losses: LossBudget::paper_default(),
            length: Meter::from_micro(500.0),
            channel_power: Watt::from_micro(200.0),
            crosstalk: true,
        }
    }

    /// Paper defaults with crosstalk disabled (ideal-isolation ablation).
    #[must_use]
    pub fn no_crosstalk() -> Self {
        Self {
            crosstalk: false,
            ..Self::paper_default()
        }
    }
}

/// Result of one arm-level MAC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacResult {
    /// The signed dot product, in weight·activation units (loss-
    /// normalised).
    pub value: f64,
    /// BPD difference current before normalisation, amperes.
    pub raw_current: f64,
    /// Optical + detection latency of the evaluation.
    pub latency: Second,
    /// Optical energy consumed by this arm for one symbol.
    pub optical_energy: Joule,
}

/// Immutable snapshot of everything an arm-level MAC consumes: the
/// mapped weights, the precomputed per-ring gains, the detector and the
/// full-scale / dwell constants.
///
/// A snapshot is what lets evaluation outlive fabric mutation: the
/// batched convolution engine snapshots every pass's arms before the
/// next pass re-tunes the same physical rings, and the parallel dense
/// path evaluates rows against snapshots instead of serialising on
/// [`Bank::load_arm`](crate::bank::Bank::load_arm). Both MAC entry
/// points are bit-identical to their [`Arm`] counterparts — they share
/// the same inner evaluation, not a re-implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmSnapshot {
    weights: Vec<MappedWeight>,
    ring_gain: Vec<f64>,
    detector: BalancedPhotodetector,
    per_channel_full: f64,
    channel_power: f64,
    dwell: Second,
}

impl ArmSnapshot {
    /// The weights captured by this snapshot.
    #[must_use]
    pub fn weights(&self) -> &[MappedWeight] {
        &self.weights
    }

    /// Fused fast-path MAC over counter-addressed noise — bit-identical
    /// to [`Arm::mac_indexed`] on the arm this snapshot was taken from.
    ///
    /// Activations must already be validated to `[0, 1]` by the caller.
    #[must_use]
    pub fn mac_indexed(&self, activations: &[f64], stream: &NoiseStream, base: u64) -> (f64, f64) {
        debug_assert!(activations.len() <= self.weights.len());
        mac_indexed_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.channel_power,
            self.dwell.get(),
            activations,
            stream,
            base,
        )
    }

    /// General MAC through any [`NoiseModel`] — bit-identical to
    /// [`Arm::mac`] on the arm this snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Same contract as [`Arm::mac`].
    pub fn mac<N: NoiseModel>(&self, activations: &[f64], noise: &mut N) -> Result<MacResult> {
        validate_activation_window(self.weights.len(), activations)?;
        Ok(mac_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.channel_power,
            self.dwell,
            activations,
            noise,
        ))
    }
}

/// A single arm with its loaded weights.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    config: ArmConfig,
    rings: Vec<Microring>,
    weights: Vec<MappedWeight>,
    plan: ChannelPlan,
    detector: BalancedPhotodetector,
    /// Cached waveguide transmission from input to detector.
    path_transmission: f64,
    /// Total tuning energy spent loading the current weights.
    tuning_energy: Joule,
    /// Worst-case tuning latency of the last load.
    tuning_latency: Second,
    /// Per-ring crosstalk × waveguide gain, precomputed at
    /// [`Arm::load_weights`] time (it depends only on the loaded weights
    /// and the channel plan, never on activations).
    ring_gain: Vec<f64>,
    /// Full-scale photocurrent of one channel at weight and activation 1
    /// (`P_in · T_path · R`), precomputed at construction.
    per_channel_full: f64,
    /// Optical dwell per symbol: time of flight plus detector settling.
    dwell: Second,
}

impl Arm {
    /// Builds an idle arm with all rings parked (weight 0).
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::Device`] when a sub-device rejects its
    /// parameters.
    pub fn new(config: ArmConfig) -> Result<Self> {
        // Spread the ten channels across the ring's free spectral range:
        // the spacing must exceed the worst-case weight detuning
        // (≈ 0.67 nm) plus guard band, or a fully-detuned ring parks on
        // its neighbour's channel.
        let plan = ChannelPlan::new(
            config.ring.resonance_wavelength,
            Meter::new(config.ring.free_spectral_range().get() / RINGS_PER_ARM as f64),
            RINGS_PER_ARM as u16,
        )?;
        let rings = (0..RINGS_PER_ARM)
            .map(|_| Microring::new(config.ring))
            .collect::<oisa_device::Result<Vec<_>>>()?;
        let detector = BalancedPhotodetector::new(config.detector)?;
        let path = OpticalPath::new(config.losses)?
            .with_length(config.length)
            .with_ring_passes((RINGS_PER_ARM - 1) as u32)
            .with_splitters(1);
        let path_transmission = path.transmission();
        let per_channel_full =
            config.channel_power.get() * path_transmission * config.detector.responsivity_a_per_w;
        let velocity = oisa_units::SPEED_OF_LIGHT_M_PER_S / config.ring.group_index;
        let dwell = Second::new(config.length.get() / velocity) + detector.settling_time();
        Ok(Self {
            config,
            rings,
            weights: Vec::new(),
            plan,
            detector,
            path_transmission,
            tuning_energy: Joule::ZERO,
            tuning_latency: Second::ZERO,
            ring_gain: Vec::new(),
            per_channel_full,
            dwell,
        })
    }

    /// Arm configuration.
    #[must_use]
    pub fn config(&self) -> &ArmConfig {
        &self.config
    }

    /// Currently loaded weights.
    #[must_use]
    pub fn weights(&self) -> &[MappedWeight] {
        &self.weights
    }

    /// Tuning energy spent by the last [`Arm::load_weights`].
    #[must_use]
    pub fn tuning_energy(&self) -> Joule {
        self.tuning_energy
    }

    /// Worst-case settling latency of the last load (rings tune in
    /// parallel).
    #[must_use]
    pub fn tuning_latency(&self) -> Second {
        self.tuning_latency
    }

    /// Static heater power holding the current weights.
    #[must_use]
    pub fn holding_power(&self) -> Watt {
        self.rings.iter().map(Microring::holding_power).sum()
    }

    /// Quantises `weights` through `mapper` and maps them onto the rings.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::CapacityExceeded`] when more than
    /// [`RINGS_PER_ARM`] weights are supplied, or a quantisation error.
    pub fn load_weights(&mut self, weights: &[f64], mapper: &WeightMapper) -> Result<()> {
        if weights.len() > RINGS_PER_ARM {
            return Err(OpticsError::CapacityExceeded {
                capacity: RINGS_PER_ARM,
                requested: weights.len(),
            });
        }
        let mapped = mapper.quantize_all(weights)?;
        let mut energy = Joule::ZERO;
        let mut latency = Second::ZERO;
        for (i, ring) in self.rings.iter_mut().enumerate() {
            let magnitude = mapped.get(i).map_or(0.0, |m| m.magnitude);
            // Ring transmission encodes the magnitude; parked rings
            // (weight 0) sit on resonance and block their channel.
            let floor = ring.design().intrinsic_loss;
            let target = floor + (0.95 - floor) * magnitude;
            let detuning = ring.detuning_for_transmission(target)?;
            let outcome = ring.apply_detuning(detuning);
            energy += outcome.energy;
            latency = latency.max(outcome.latency);
        }
        self.weights = mapped;
        self.tuning_energy = energy;
        self.tuning_latency = latency;
        // Crosstalk and waveguide attenuation depend only on the loaded
        // weights (ring detunings) and the channel spacing, so fold them
        // into one per-ring gain here instead of re-evaluating two
        // Lorentzian tails per channel on every MAC.
        let spacing = self.plan.spacing();
        self.ring_gain = (0..self.weights.len())
            .map(|i| {
                let mut xt = 1.0;
                if self.config.crosstalk {
                    if i > 0 {
                        xt *= self.rings[i - 1].crosstalk_transmission(spacing);
                    }
                    if i + 1 < self.weights.len() {
                        xt *= self.rings[i + 1].crosstalk_transmission(-spacing);
                    }
                }
                xt * self.path_transmission
            })
            .collect();
        Ok(())
    }

    /// Evaluates the signed dot product of the loaded weights with
    /// `activations` (normalised optical amplitudes in `[0, 1]`, one per
    /// loaded weight).
    ///
    /// The chain models: VCSEL RIN on each channel → ring transmission
    /// (with drift) → waveguide losses → accumulation on the +/−
    /// waveguides → BPD subtraction with detector noise → loss-normalised
    /// signed result. Crosstalk and waveguide attenuation come from the
    /// per-ring gains precomputed at [`Arm::load_weights`] time.
    ///
    /// # Errors
    ///
    /// Returns [`OpticsError::InvalidParameter`] when activation count
    /// exceeds the loaded weight count or values leave `[0, 1]`; all
    /// activations are validated up front, so the error names the first
    /// offending index and no partial evaluation happens.
    pub fn mac<N: NoiseModel>(&self, activations: &[f64], noise: &mut N) -> Result<MacResult> {
        self.validate_activations(activations)?;
        Ok(mac_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.config.channel_power.get(),
            self.dwell,
            activations,
            noise,
        ))
    }

    /// Captures the compute-relevant state of this arm as an immutable
    /// [`ArmSnapshot`]: the mapped weights, the precomputed per-ring
    /// gains and the detector / full-scale / dwell constants. Evaluating
    /// the snapshot is bit-identical to evaluating the arm, and stays
    /// valid after the arm is re-tuned with new weights.
    #[must_use]
    pub fn snapshot(&self) -> ArmSnapshot {
        ArmSnapshot {
            weights: self.weights.clone(),
            ring_gain: self.ring_gain.clone(),
            detector: self.detector,
            per_channel_full: self.per_channel_full,
            channel_power: self.config.channel_power.get(),
            dwell: self.dwell,
        }
    }

    /// Fused fast-path MAC for the accelerator's inner loop: draws are
    /// addressed on `stream` by explicit counters starting at `base`
    /// (channel `i` uses `base + 2i` / `base + 2i + 1`, the detector
    /// `base + 2m`), zero activations are skipped outright (they
    /// contribute exactly `+0.0` to either rail, and counter addressing
    /// means skipping consumes nothing), and no [`MacResult`] is built.
    ///
    /// Returns `(value, optical_energy_joules)`. Activations must
    /// already be validated to `[0, 1]` by the caller — the accelerator
    /// validates each encoded frame once instead of once per window.
    ///
    /// Bit-identical to [`Arm::mac`] driven by a
    /// [`oisa_device::noise::StreamCursor`] over the same stream and
    /// base counter 0.
    #[must_use]
    pub fn mac_indexed(&self, activations: &[f64], stream: &NoiseStream, base: u64) -> (f64, f64) {
        debug_assert!(activations.len() <= self.weights.len());
        mac_indexed_core(
            &self.weights,
            &self.ring_gain,
            &self.detector,
            self.per_channel_full,
            self.config.channel_power.get(),
            self.dwell.get(),
            activations,
            stream,
            base,
        )
    }

    /// Counter stride one MAC of `m` activations consumes on a stream:
    /// two draws per channel plus the detector draw.
    #[must_use]
    pub fn counter_stride(m: usize) -> u64 {
        2 * m as u64 + 1
    }

    /// Faithful port of the pre-optimisation MAC: validates inside the
    /// loop, re-derives both crosstalk Lorentzians per channel from ring
    /// state, recomputes the full-scale and time-of-flight terms per
    /// call. Kept as the wall-clock baseline for the performance
    /// benchmarks and as a physics cross-check (it produces the same
    /// values as [`Arm::mac`] given the same noise draws).
    ///
    /// # Errors
    ///
    /// Same contract as [`Arm::mac`], but the range error reports no
    /// index (the historical message).
    pub fn mac_reference<N: NoiseModel>(
        &self,
        activations: &[f64],
        noise: &mut N,
    ) -> Result<MacResult> {
        if activations.len() > self.weights.len() {
            return Err(OpticsError::InvalidParameter(format!(
                "{} activations for {} loaded weights",
                activations.len(),
                self.weights.len()
            )));
        }
        let mut p_pos = 0.0f64;
        let mut p_neg = 0.0f64;
        let p_in = self.config.channel_power.get();
        let spacing = self.plan.spacing();
        for (i, (a, w)) in activations.iter().zip(&self.weights).enumerate() {
            if !(0.0..=1.0).contains(a) {
                return Err(OpticsError::InvalidParameter(format!(
                    "activation {a} outside [0, 1]"
                )));
            }
            let launched = noise.vcsel(p_in * a);
            let t = noise.mr_transmission(w.magnitude);
            let mut xt = 1.0;
            if self.config.crosstalk {
                if i > 0 {
                    xt *= self.rings[i - 1].crosstalk_transmission(spacing);
                }
                if i + 1 < self.weights.len() {
                    xt *= self.rings[i + 1].crosstalk_transmission(-spacing);
                }
            }
            let arrived = launched * t * (xt * self.path_transmission);
            if w.negative {
                p_neg += arrived;
            } else {
                p_pos += arrived;
            }
        }
        let diff = self
            .detector
            .difference_current(Watt::new(p_pos), Watt::new(p_neg));
        let full_scale = self.config.channel_power.get()
            * self.path_transmission
            * self.config.detector.responsivity_a_per_w
            * activations.len().max(1) as f64;
        let noisy = noise.detector(diff.get(), full_scale);
        let per_channel_full = self.config.channel_power.get()
            * self.path_transmission
            * self.config.detector.responsivity_a_per_w;
        let value = noisy / per_channel_full;
        let latency = self.time_of_flight() + self.detector.settling_time();
        let optical_energy =
            Watt::new(p_pos + p_neg) * (self.time_of_flight() + self.detector.settling_time());
        Ok(MacResult {
            value,
            raw_current: noisy,
            latency,
            optical_energy,
        })
    }

    /// Checks activation count and range, reporting the first offending
    /// index.
    fn validate_activations(&self, activations: &[f64]) -> Result<()> {
        validate_activation_window(self.weights.len(), activations)
    }

    /// Optical time of flight along the arm (group velocity c/n_g).
    #[must_use]
    pub fn time_of_flight(&self) -> Second {
        let v = oisa_units::SPEED_OF_LIGHT_M_PER_S / self.config.ring.group_index;
        Second::new(self.config.length.get() / v)
    }

    /// The WDM channel plan used by this arm.
    #[must_use]
    pub fn channel_plan(&self) -> &ChannelPlan {
        &self.plan
    }
}

/// Checks activation count against `loaded` weights and the `[0, 1]`
/// range, reporting the first offending index — shared by [`Arm`] and
/// [`ArmSnapshot`] so both reject identically.
fn validate_activation_window(loaded: usize, activations: &[f64]) -> Result<()> {
    if activations.len() > loaded {
        return Err(OpticsError::InvalidParameter(format!(
            "{} activations for {loaded} loaded weights",
            activations.len(),
        )));
    }
    if let Some(i) = activations.iter().position(|a| !(0.0..=1.0).contains(a)) {
        return Err(OpticsError::InvalidParameter(format!(
            "activation {} at index {i} outside [0, 1]",
            activations[i]
        )));
    }
    Ok(())
}

/// The general MAC evaluation shared bit-for-bit by [`Arm::mac`] and
/// [`ArmSnapshot::mac`]: VCSEL RIN → ring transmission (with drift) →
/// precomputed per-ring gain → rail accumulation → BPD subtraction with
/// detector noise → loss-normalised signed result.
#[allow(clippy::too_many_arguments)]
fn mac_core<N: NoiseModel>(
    weights: &[MappedWeight],
    ring_gain: &[f64],
    detector: &BalancedPhotodetector,
    per_channel_full: f64,
    channel_power_w: f64,
    dwell: Second,
    activations: &[f64],
    noise: &mut N,
) -> MacResult {
    let mut p_pos = 0.0f64;
    let mut p_neg = 0.0f64;
    for (i, (a, w)) in activations.iter().zip(weights).enumerate() {
        let launched = noise.vcsel(channel_power_w * a);
        let t = noise.mr_transmission(w.magnitude);
        let arrived = launched * t * ring_gain[i];
        if w.negative {
            p_neg += arrived;
        } else {
            p_pos += arrived;
        }
    }
    let diff = detector.difference_current(Watt::new(p_pos), Watt::new(p_neg));
    // Full scale: all channels at activation 1 with weight magnitude 1
    // on one waveguide.
    let full_scale = per_channel_full * activations.len().max(1) as f64;
    let noisy = noise.detector(diff.get(), full_scale);
    // Loss-normalised value in weight·activation units.
    let value = noisy / per_channel_full;
    MacResult {
        value,
        raw_current: noisy,
        latency: dwell,
        optical_energy: Watt::new(p_pos + p_neg) * dwell,
    }
}

/// The fused counter-addressed MAC shared bit-for-bit by
/// [`Arm::mac_indexed`] and [`ArmSnapshot::mac_indexed`]: channel `i`
/// draws counters `base + 2i` / `base + 2i + 1`, the detector draws
/// `base + 2m`, zero activations are skipped outright.
#[allow(clippy::too_many_arguments)]
#[inline]
fn mac_indexed_core(
    weights: &[MappedWeight],
    ring_gain: &[f64],
    detector: &BalancedPhotodetector,
    per_channel_full: f64,
    channel_power_w: f64,
    dwell_s: f64,
    activations: &[f64],
    stream: &NoiseStream,
    base: u64,
) -> (f64, f64) {
    let mut p_pos = 0.0f64;
    let mut p_neg = 0.0f64;
    let mut counter = base;
    for ((&a, w), &gain) in activations.iter().zip(weights).zip(ring_gain) {
        if a == 0.0 {
            counter += 2;
            continue;
        }
        let launched = stream.vcsel_at(counter, channel_power_w * a);
        let t = stream.mr_transmission_at(counter + 1, w.magnitude);
        counter += 2;
        let arrived = launched * t * gain;
        if w.negative {
            p_neg += arrived;
        } else {
            p_pos += arrived;
        }
    }
    let diff = detector.difference_current(Watt::new(p_pos), Watt::new(p_neg));
    let full_scale = per_channel_full * activations.len().max(1) as f64;
    let noisy = stream.detector_at(base + 2 * activations.len() as u64, diff.get(), full_scale);
    (noisy / per_channel_full, (p_pos + p_neg) * dwell_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oisa_device::noise::{NoiseConfig, NoiseSource};
    use proptest::prelude::*;

    fn quiet() -> NoiseSource {
        NoiseSource::seeded(0, NoiseConfig::noiseless())
    }

    fn loaded_arm_with(config: ArmConfig, weights: &[f64], bits: u8) -> Arm {
        let mapper = WeightMapper::ideal(bits).unwrap();
        let mut arm = Arm::new(config).unwrap();
        arm.load_weights(weights, &mapper).unwrap();
        arm
    }

    fn loaded_arm(weights: &[f64], bits: u8) -> Arm {
        loaded_arm_with(ArmConfig::paper_default(), weights, bits)
    }

    #[test]
    fn mac_matches_exact_dot_product_noiselessly() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.0, 1.0];
        let arm = loaded_arm_with(ArmConfig::no_crosstalk(), &w, 4);
        let out = arm.mac(&a, &mut quiet()).unwrap();
        let exact: f64 = w.iter().zip(&a).map(|(w, a)| w * a).sum();
        // 4-bit quantisation bounds the per-element error to 1/30.
        assert!(
            (out.value - exact).abs() < 9.0 / 30.0 + 1e-6,
            "got {} exact {exact}",
            out.value
        );
    }

    #[test]
    fn positive_and_negative_weights_cancel() {
        let arm = loaded_arm_with(ArmConfig::no_crosstalk(), &[1.0, -1.0], 4);
        let out = arm.mac(&[1.0, 1.0], &mut quiet()).unwrap();
        assert!(out.value.abs() < 1e-9, "got {}", out.value);
    }

    #[test]
    fn crosstalk_shaves_a_few_percent() {
        let w = [0.8; 9];
        let a = [1.0; 9];
        let clean = loaded_arm_with(ArmConfig::no_crosstalk(), &w, 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        let with_xt = loaded_arm(&w, 4).mac(&a, &mut quiet()).unwrap().value;
        let loss = (clean - with_xt) / clean;
        assert!(loss > 0.0, "crosstalk must attenuate, got gain {loss}");
        assert!(
            loss < 0.15,
            "crosstalk loss {loss} too large for the paper channel plan"
        );
    }

    #[test]
    fn detuned_neighbours_leak_toward_next_channel() {
        // Weight detuning shifts a ring's resonance *toward* the next
        // channel, so fully-detuned neighbours attenuate the centre
        // channel more than parked ones — the physical reason the
        // channel plan spreads over the whole FSR.
        let a = [0.0, 1.0, 0.0];
        let parked = loaded_arm(&[0.0, 0.8, 0.0], 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        let detuned = loaded_arm(&[1.0, 0.8, 1.0], 4)
            .mac(&a, &mut quiet())
            .unwrap()
            .value;
        assert!(
            detuned < parked,
            "detuned neighbours should attenuate the centre channel more: {detuned} vs {parked}"
        );
        // But with the FSR-wide plan the effect stays small.
        assert!((parked - detuned) / parked < 0.05);
    }

    #[test]
    fn all_zero_weights_give_zero() {
        let arm = loaded_arm(&[0.0; 9], 4);
        let out = arm.mac(&[1.0; 9], &mut quiet()).unwrap();
        assert!(out.value.abs() < 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let mapper = WeightMapper::ideal(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        let too_many = vec![0.1; RINGS_PER_ARM + 1];
        assert!(matches!(
            arm.load_weights(&too_many, &mapper),
            Err(OpticsError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn activation_validation() {
        let arm = loaded_arm(&[0.5; 9], 4);
        assert!(arm.mac(&[1.5; 9], &mut quiet()).is_err());
        assert!(arm.mac(&[1.0; 10], &mut quiet()).is_err());
    }

    #[test]
    fn tuning_costs_accounted() {
        let arm = loaded_arm(&[0.9; 9], 4);
        assert!(arm.tuning_energy().get() > 0.0);
        assert!(arm.tuning_latency().get() > 0.0);
        assert!(arm.holding_power().get() > 0.0);
    }

    #[test]
    fn holding_power_within_architecture_budget() {
        // Full-magnitude weights are the worst case; the paper's power
        // budget requires an arm to hold well under 10 × 0.3 mW.
        let arm = loaded_arm(&[1.0; 9], 4);
        let p = arm.holding_power();
        assert!(p.as_milli() < 3.0, "arm holding power {p}");
    }

    #[test]
    fn latency_dominated_by_flight_plus_detector() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let out = arm.mac(&[1.0; 9], &mut quiet()).unwrap();
        // 500 µm at c/4.2 ≈ 7 ps, BPD ≈ 8.3 ps → ~15 ps.
        assert!(
            out.latency.as_pico() > 5.0 && out.latency.as_pico() < 60.0,
            "latency {}",
            out.latency
        );
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 1.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.0, 1.0];
        let arm = loaded_arm(&w, 4);
        let mut noisy = NoiseSource::seeded(42, NoiseConfig::paper_default());
        let exact: f64 = w.iter().zip(&a).map(|(w, a)| w * a).sum();
        let runs: Vec<f64> = (0..64)
            .map(|_| arm.mac(&a, &mut noisy).unwrap().value)
            .collect();
        let mean = runs.iter().sum::<f64>() / runs.len() as f64;
        assert!((mean - exact).abs() < 0.4, "mean {mean} vs exact {exact}");
        let spread = runs.iter().map(|r| (r - mean).abs()).fold(0.0f64, f64::max);
        assert!(spread > 0.0, "noise must perturb results");
        assert!(spread < 0.5, "noise out of calibration: {spread}");
    }

    #[test]
    fn indexed_reference_and_general_macs_are_bit_identical() {
        // Same stream, three evaluation strategies: the fused fast path
        // (explicit counters, zero-skip), the general path behind a
        // sequential cursor, and the pre-optimisation reference port.
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 0.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.022, 1.0]; // ternary-ish, with zeros
        let arm = loaded_arm(&w, 4);
        let source = NoiseSource::seeded(99, NoiseConfig::paper_default());
        let stream = source.stream(0, 3, 17);

        let (fast_value, fast_energy) = arm.mac_indexed(&a, &stream, 0);
        let general = arm.mac(&a, &mut stream.cursor()).unwrap();
        let reference = arm.mac_reference(&a, &mut stream.cursor()).unwrap();

        assert_eq!(fast_value, general.value);
        assert_eq!(fast_value, reference.value);
        assert_eq!(fast_energy, general.optical_energy.get());
        assert_eq!(fast_energy, reference.optical_energy.get());
        assert_eq!(general.raw_current, reference.raw_current);
    }

    #[test]
    fn snapshot_macs_bit_identical_to_arm() {
        let w = [0.5, -0.25, 1.0, 0.0, 0.75, -1.0, 0.25, 0.5, -0.5];
        let a = [1.0, 0.0, 0.5, 0.0, 1.0, 0.5, 0.0, 0.022, 1.0];
        let arm = loaded_arm(&w, 4);
        let snap = arm.snapshot();
        let source = NoiseSource::seeded(7, NoiseConfig::paper_default());
        let stream = source.stream(1, 2, 33);

        assert_eq!(
            arm.mac_indexed(&a, &stream, 5),
            snap.mac_indexed(&a, &stream, 5)
        );
        assert_eq!(
            arm.mac(&a, &mut stream.cursor()).unwrap(),
            snap.mac(&a, &mut stream.cursor()).unwrap()
        );
        assert_eq!(snap.weights(), arm.weights());
    }

    #[test]
    fn snapshot_outlives_arm_retuning() {
        let mapper = WeightMapper::ideal(4).unwrap();
        let mut arm = Arm::new(ArmConfig::paper_default()).unwrap();
        arm.load_weights(&[0.8; 9], &mapper).unwrap();
        let snap = arm.snapshot();
        let a = [1.0; 9];
        let before = snap.mac(&a, &mut quiet()).unwrap();
        // Re-tune the physical arm; the snapshot must keep replaying the
        // old weights.
        arm.load_weights(&[-0.8; 9], &mapper).unwrap();
        let after_snap = snap.mac(&a, &mut quiet()).unwrap();
        let after_arm = arm.mac(&a, &mut quiet()).unwrap();
        assert_eq!(before, after_snap);
        assert!(after_arm.value < 0.0 && after_snap.value > 0.0);
    }

    #[test]
    fn snapshot_validates_like_arm() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let snap = arm.snapshot();
        assert!(snap.mac(&[1.5; 9], &mut quiet()).is_err());
        assert!(snap.mac(&[1.0; 10], &mut quiet()).is_err());
    }

    #[test]
    fn validation_reports_offending_index() {
        let arm = loaded_arm(&[0.5; 9], 4);
        let mut acts = [0.5; 9];
        acts[6] = 1.5;
        let err = arm.mac(&acts, &mut quiet()).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("index 6"),
            "message must name the index: {msg}"
        );
        assert!(msg.contains("1.5"), "message must name the value: {msg}");
    }

    proptest! {
        #[test]
        fn mac_bounded_by_operand_count(
            seed in 0u64..100,
            n in 1usize..=9,
        ) {
            let mut src = NoiseSource::seeded(seed, NoiseConfig::noiseless());
            let weights: Vec<f64> = (0..n)
                .map(|i| ((seed as f64 + i as f64) * 0.37).sin())
                .collect();
            let activations: Vec<f64> = (0..n)
                .map(|i| (((seed + 3) as f64 + i as f64) * 0.21).sin().abs())
                .collect();
            let arm = loaded_arm(&weights, 4);
            let out = arm.mac(&activations, &mut src).unwrap();
            prop_assert!(out.value.abs() <= n as f64 + 1e-9);
        }
    }
}
