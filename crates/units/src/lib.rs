//! Physical-quantity newtypes for the OISA simulation stack.
//!
//! Every model in this workspace — microring resonators, VCSEL drivers,
//! pixel arrays, memory macros, the architecture simulator — exchanges
//! physical quantities. Using bare `f64` for volts, watts and seconds is a
//! classic source of silent unit bugs in device-to-architecture frameworks,
//! so this crate provides zero-cost newtypes with only the physically
//! meaningful arithmetic defined between them (e.g. `Volt * Ampere = Watt`,
//! `Watt * Second = Joule`).
//!
//! # Examples
//!
//! ```
//! use oisa_units::{Ampere, Joule, Second, Volt, Watt};
//!
//! let bias = Volt::new(0.8) * Ampere::from_milli(2.0); // dissipated power
//! assert_eq!(bias, Watt::from_milli(1.6));
//!
//! let energy: Joule = bias * Second::from_nano(10.0);
//! assert!((energy.as_pico() - 16.0).abs() < 1e-9);
//! ```

// No unsafe: this crate must stay entirely safe Rust. The SIMD layer
// (oisa_device/oisa_optics) is the only sanctioned unsafe in the tree.
#![forbid(unsafe_code)]

mod quantity;

pub use quantity::{
    Ampere, Celsius, Farad, Hertz, Joule, Kelvin, Meter, Ohm, Second, SquareMeter, Volt, Watt,
};

/// Speed of light in vacuum, in metres per second.
pub const SPEED_OF_LIGHT_M_PER_S: f64 = 299_792_458.0;

/// Elementary charge, in coulombs.
pub const ELEMENTARY_CHARGE_C: f64 = 1.602_176_634e-19;

/// Boltzmann constant, in joules per kelvin.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Converts an optical power ratio to decibels.
///
/// Returns negative infinity for a zero ratio, matching the physical
/// convention that zero transmitted power is infinitely attenuated.
///
/// # Examples
///
/// ```
/// use oisa_units::ratio_to_db;
/// assert!((ratio_to_db(0.5) - (-3.0103)).abs() < 1e-3);
/// ```
#[must_use]
pub fn ratio_to_db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to an optical power ratio.
///
/// # Examples
///
/// ```
/// use oisa_units::db_to_ratio;
/// assert!((db_to_ratio(-3.0103) - 0.5).abs() < 1e-4);
/// ```
#[must_use]
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a vacuum wavelength to optical frequency.
///
/// # Examples
///
/// ```
/// use oisa_units::{wavelength_to_frequency, Hertz, Meter};
/// let f = wavelength_to_frequency(Meter::from_nano(1550.0));
/// assert!((f.as_tera() - 193.41).abs() < 0.01);
/// ```
#[must_use]
pub fn wavelength_to_frequency(wavelength: Meter) -> Hertz {
    Hertz::new(SPEED_OF_LIGHT_M_PER_S / wavelength.get())
}

/// Converts an optical frequency to vacuum wavelength.
///
/// # Examples
///
/// ```
/// use oisa_units::{frequency_to_wavelength, Hertz};
/// let w = frequency_to_wavelength(Hertz::from_tera(193.41));
/// assert!((w.as_nano() - 1550.0).abs() < 0.1);
/// ```
#[must_use]
pub fn frequency_to_wavelength(frequency: Hertz) -> Meter {
    Meter::new(SPEED_OF_LIGHT_M_PER_S / frequency.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for r in [1.0, 0.5, 0.25, 1e-3, 7.3] {
            let db = ratio_to_db(r);
            assert!((db_to_ratio(db) - r).abs() < 1e-12 * r.max(1.0));
        }
    }

    #[test]
    fn zero_ratio_is_neg_infinite_db() {
        assert_eq!(ratio_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn wavelength_frequency_round_trip() {
        let w = Meter::from_nano(1310.0);
        let back = frequency_to_wavelength(wavelength_to_frequency(w));
        assert!((back.get() - w.get()).abs() < 1e-18);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // regression guard on typos
    fn physical_constants_sane() {
        assert!(SPEED_OF_LIGHT_M_PER_S > 2.9e8 && SPEED_OF_LIGHT_M_PER_S < 3.0e8);
        assert!(ELEMENTARY_CHARGE_C > 1.6e-19 && ELEMENTARY_CHARGE_C < 1.61e-19);
    }
}
