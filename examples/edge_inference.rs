//! Edge inference: train a small CNN on the digits stand-in, deploy its
//! first layer to OISA, and cross-check the behavioural deployment
//! against the physical optical path.
//!
//! ```sh
//! cargo run --release --example edge_inference
//! ```

use oisa::core::deploy::{deploy_first_layer, quantizer_for_bits, ternary_from_devices};
use oisa::core::{OisaAccelerator, OisaConfig};
use oisa::datasets::{DatasetSpec, SyntheticDataset};
use oisa::device::awc::AwcModel;
use oisa::nn::layer::Layer;
use oisa::nn::model::lenet;
use oisa::nn::quantize::QuantizedConv2d;
use oisa::nn::train::{Sgd, TrainConfig, Trainer};
use oisa::sensor::Frame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("OISA edge inference");
    println!("===================");

    // 1. Train a float LeNet on the MNIST stand-in.
    let spec = DatasetSpec::digits().with_counts(1200, 300);
    let ds = SyntheticDataset::generate(&spec, 11)?;
    let mut model = lenet(1, spec.img, spec.classes, 11)?;
    let mut trainer = Trainer::new(Sgd::new(0.08, 0.9), TrainConfig::default());
    for epoch in 0..6 {
        let mut start = 0;
        let mut loss_acc = 0.0;
        let mut batches = 0;
        while start < ds.train_labels.len() {
            let (x, y) = ds.train_batch(start, 32)?;
            loss_acc += trainer.train_batch(&mut model, &x, &y)?;
            batches += 1;
            start += 32;
        }
        println!("epoch {epoch}: mean loss {:.3}", loss_acc / batches as f32);
    }
    let float_acc = trainer.evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)?;
    println!("float baseline accuracy: {:.1}%", float_acc * 100.0);

    // Keep a copy of the trained first layer for the physical cross-check.
    let conv0 = model
        .first_conv_mut()
        .expect("lenet starts with a conv")
        .clone();

    // 2. Deploy the first layer at [3:2] (the paper's sweet spot).
    deploy_first_layer(&mut model, 3, AwcModel::paper_mismatch(), 0.02, 99)?;
    let oisa_acc = trainer.evaluate_batched(&mut model, &ds.test_images, &ds.test_labels, 64)?;
    println!("OISA [3:2] accuracy   : {:.1}%", oisa_acc * 100.0);

    // 3. Cross-check: one test image's first layer on the *physical*
    //    optical accelerator vs the behavioural wrapper.
    let img = spec.img;
    let sample: Vec<f64> = ds.test_images.as_slice()[..img * img]
        .iter()
        .map(|&v| f64::from(v.clamp(0.0, 1.0)))
        .collect();
    let frame = Frame::new(img, img, sample)?;
    // The physical path quantises the same way (paper-mismatch ladder).
    let mut cfg = OisaConfig::small_test();
    cfg.weight_bits = 3;
    cfg.awc_model = AwcModel::paper_mismatch();
    let mut accel = OisaAccelerator::new(cfg)?;
    let kernels: Vec<Vec<f32>> = (0..conv0.out_channels())
        .map(|oc| {
            (0..9)
                .map(|i| conv0.weights().as_slice()[oc * 9 + i])
                .collect()
        })
        .collect();
    let physical = accel.convolve_frame(&frame, &kernels, 3)?;

    let quantizer = quantizer_for_bits(3, AwcModel::paper_mismatch())?;
    let mut behavioural =
        QuantizedConv2d::new_per_channel(conv0, &quantizer, ternary_from_devices()?, 0.0, 0)?;
    let x = oisa::nn::Tensor::from_vec(
        vec![1, 1, img, img],
        frame.as_slice().iter().map(|&v| v as f32).collect(),
    )?;
    let y = behavioural.forward(&x, false)?;

    // Compare channel 0 (behavioural output is padded; compare the valid
    // interior that matches the physical valid-convolution output).
    let mut worst = 0.0f32;
    for oy in 0..physical.out_h {
        for ox in 0..physical.out_w {
            let phys = physical.output[0][oy * physical.out_w + ox];
            let behav = y.at4(0, 0, oy + 1, ox + 1);
            worst = worst.max((phys - behav).abs());
        }
    }
    println!("physical vs behavioural first layer: max |Δ| = {worst:.3}");
    println!(
        "physical path energy {:.3}, latency {:.3}",
        physical.energy.total(),
        physical.timeline.total()
    );
    Ok(())
}
