//! Good: every function that nests the two locks takes them in the
//! same global order (`queue` before `stats`), and the steal-loop
//! idiom uses a statement-scoped temporary — the guard drops at the
//! `;`, so it never holds across the next acquisition.

pub struct Shared {
    queue: std::sync::Mutex<Vec<u8>>,
    stats: std::sync::Mutex<u64>,
}

/// Takes `queue` then `stats` — the canonical order.
pub fn drain(s: &Shared) {
    let queue = s.queue.lock().expect("poisoned");
    let mut stats = s.stats.lock().expect("poisoned");
    *stats += queue.len() as u64;
}

/// Same order; `drop` releases `queue` before `stats` is touched.
pub fn report(s: &Shared) {
    let queue = s.queue.lock().expect("poisoned");
    let len = queue.len();
    drop(queue);
    let mut stats = s.stats.lock().expect("poisoned");
    *stats += len as u64;
}

/// Statement-scoped temporary: the guard lives only to the `;`.
pub fn steal(s: &Shared) -> Option<u8> {
    let item = s.queue.lock().expect("poisoned").pop();
    let mut stats = s.stats.lock().expect("poisoned");
    *stats += 1;
    item
}
